//! Classification of Boolean functions by satisfiability class.

use crate::cnf::Cnf;

/// The satisfiability class of a CNF formula, ordered from cheapest to most
/// expensive decision procedure.
///
/// The paper's Section 5 maps record operations onto these classes:
/// select/update/removal/renaming stay within two-variable Horn clauses
/// (hence [`SatClass::TwoSat`]); asymmetric concatenation produces
/// multi-variable Horn clauses ([`SatClass::Horn`], still linear-time);
/// symmetric concatenation and flag-conditioned conditionals require
/// general CNF ([`SatClass::General`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SatClass {
    /// No clauses: trivially satisfiable.
    Trivial,
    /// Contains the empty clause: trivially unsatisfiable.
    Unsat,
    /// Every clause has at most two literals.
    TwoSat,
    /// Every clause has at most one positive literal.
    Horn,
    /// Every clause has at most one negative literal (renamable to Horn by
    /// flipping all polarities; this is the "inverted flag" encoding the
    /// paper uses for asymmetric concatenation).
    DualHorn,
    /// None of the above: a general SAT instance.
    General,
}

impl SatClass {
    /// A short stable name, used as a metric key and in reports.
    pub fn name(self) -> &'static str {
        match self {
            SatClass::Trivial => "trivial",
            SatClass::Unsat => "unsat",
            SatClass::TwoSat => "2sat",
            SatClass::Horn => "horn",
            SatClass::DualHorn => "dual-horn",
            SatClass::General => "general",
        }
    }
}

impl std::fmt::Display for SatClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies `cnf` into the most specific [`SatClass`].
pub fn classify(cnf: &Cnf) -> SatClass {
    if cnf.is_empty() {
        return SatClass::Trivial;
    }
    let mut two = true;
    let mut horn = true;
    let mut dual = true;
    for c in cnf.clauses() {
        if c.is_empty() {
            return SatClass::Unsat;
        }
        if c.len() > 2 {
            two = false;
        }
        let pos = c.lits().iter().filter(|l| !l.is_neg()).count();
        if pos > 1 {
            horn = false;
        }
        if c.len() - pos > 1 {
            dual = false;
        }
        if !two && !horn && !dual {
            return SatClass::General;
        }
    }
    if two {
        SatClass::TwoSat
    } else if horn {
        SatClass::Horn
    } else if dual {
        SatClass::DualHorn
    } else {
        SatClass::General
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::{Flag, Lit};

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    #[test]
    fn empty_formula_is_trivial() {
        assert_eq!(classify(&Cnf::top()), SatClass::Trivial);
    }

    #[test]
    fn empty_clause_is_unsat() {
        assert_eq!(classify(&Cnf::bottom()), SatClass::Unsat);
    }

    #[test]
    fn binary_clauses_are_twosat() {
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.assert_lit(n(2));
        assert_eq!(classify(&b), SatClass::TwoSat);
    }

    #[test]
    fn wide_single_positive_is_horn() {
        let mut b = Cnf::top();
        b.add_lits(vec![n(0), n(1), p(2)]);
        assert_eq!(classify(&b), SatClass::Horn);
    }

    #[test]
    fn wide_single_negative_is_dual_horn() {
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1), n(2)]);
        assert_eq!(classify(&b), SatClass::DualHorn);
    }

    #[test]
    fn mixed_wide_clause_is_general() {
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1), n(2), n(3)]);
        assert_eq!(classify(&b), SatClass::General);
    }

    #[test]
    fn two_sat_wins_over_horn_for_binary_horn_clauses() {
        // Two-variable Horn clauses are both; the cheaper class is reported.
        let mut b = Cnf::top();
        b.imply(p(0), p(1)); // ¬f0 ∨ f1: binary and Horn
        assert_eq!(classify(&b), SatClass::TwoSat);
    }

    #[test]
    fn horn_and_general_mix() {
        let mut b = Cnf::top();
        b.add_lits(vec![n(0), n(1), p(2)]); // Horn, not 2-SAT
        b.add_lits(vec![p(0), p(1)]); // 2-SAT + dual-Horn, not Horn
                                      // Neither invariant holds across all clauses except... pos counts:
                                      // clause1 has 2 negatives (not dual), clause2 has 2 positives (not
                                      // horn), clause1 has 3 lits (not two-sat) => General.
        assert_eq!(classify(&b), SatClass::General);
    }
}
