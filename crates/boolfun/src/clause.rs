//! Disjunctive clauses.

use std::fmt;

use crate::lit::Lit;

/// A disjunction of literals, kept sorted and duplicate-free.
///
/// The empty clause is the contradiction `⊥`. A clause containing both a
/// literal and its negation is a tautology; [`Clause::new`] reports this so
/// callers can drop it instead of storing it.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Normalises `lits` into a clause: sorts, deduplicates, and returns
    /// `None` if the clause is a tautology (contains `l` and `¬l`).
    pub fn new(mut lits: Vec<Lit>) -> Option<Clause> {
        lits.sort_unstable();
        lits.dedup();
        // After sorting, `l` and `¬l` are adjacent (positive first).
        if lits.windows(2).any(|w| w[0].negate() == w[1]) {
            return None;
        }
        Some(Clause { lits })
    }

    /// The unit clause `{l}`.
    pub fn unit(l: Lit) -> Clause {
        Clause { lits: vec![l] }
    }

    /// The binary clause `{a, b}`; `None` if it is the tautology `a ∨ ¬a`.
    pub fn binary(a: Lit, b: Lit) -> Option<Clause> {
        Clause::new(vec![a, b])
    }

    /// The contradiction `⊥` (empty clause).
    pub fn empty() -> Clause {
        Clause { lits: Vec::new() }
    }

    /// Literals of this clause, in sorted order.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the empty (contradictory) clause.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether this clause contains the literal `l`.
    pub fn contains(&self, l: Lit) -> bool {
        self.lits.binary_search(&l).is_ok()
    }

    /// Whether every literal of `self` occurs in `other` (i.e. `self`
    /// subsumes `other`).
    pub fn subsumes(&self, other: &Clause) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut it = other.lits.iter();
        'outer: for l in &self.lits {
            for m in it.by_ref() {
                match m.cmp(l) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Resolves `self` (containing `pivot`) with `other` (containing
    /// `¬pivot`). Returns `None` if the resolvent is a tautology.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the pivot literals are not present.
    pub fn resolve(&self, other: &Clause, pivot: Lit) -> Option<Clause> {
        debug_assert!(self.contains(pivot), "pivot must occur in self");
        debug_assert!(other.contains(pivot.negate()), "¬pivot must occur in other");
        let mut lits = Vec::with_capacity(self.len() + other.len() - 2);
        lits.extend(self.lits.iter().copied().filter(|&l| l != pivot));
        lits.extend(other.lits.iter().copied().filter(|&l| l != pivot.negate()));
        Clause::new(lits)
    }

    /// Applies a flag-renaming to each literal, re-normalising the result.
    /// Returns `None` if renaming produced a tautology.
    pub fn rename(&self, mut f: impl FnMut(Lit) -> Lit) -> Option<Clause> {
        Clause::new(self.lits.iter().map(|&l| f(l)).collect())
    }

    /// Evaluates the clause under a total assignment
    /// (`assign[flag.index()] = value`).
    pub fn eval(&self, assign: &[bool]) -> bool {
        self.lits
            .iter()
            .any(|l| assign[l.flag().index()] != l.is_neg())
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊥");
        }
        let mut first = true;
        for l in &self.lits {
            if !first {
                write!(f, " ∨ ")?;
            }
            first = false;
            write!(f, "{l:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Flag;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    #[test]
    fn new_sorts_and_dedups() {
        let c = Clause::new(vec![p(2), p(0), p(2), n(1)]).unwrap();
        assert_eq!(c.lits(), &[p(0), p(1).negate(), p(2)]);
    }

    #[test]
    fn new_detects_tautology() {
        assert!(Clause::new(vec![p(0), n(0)]).is_none());
        assert!(Clause::new(vec![p(1), p(0), n(1)]).is_none());
    }

    #[test]
    fn subsumption() {
        let small = Clause::new(vec![p(0), p(2)]).unwrap();
        let big = Clause::new(vec![p(0), n(1), p(2)]).unwrap();
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(small.subsumes(&small));
        let other = Clause::new(vec![p(0), n(2)]).unwrap();
        assert!(!small.subsumes(&other));
    }

    #[test]
    fn resolution_produces_resolvent() {
        // (a ∨ b) ⊗_a (¬a ∨ c) = (b ∨ c)
        let c1 = Clause::new(vec![p(0), p(1)]).unwrap();
        let c2 = Clause::new(vec![n(0), p(2)]).unwrap();
        let r = c1.resolve(&c2, p(0)).unwrap();
        assert_eq!(r.lits(), &[p(1), p(2)]);
    }

    #[test]
    fn resolution_tautology_is_none() {
        // (a ∨ b) ⊗_a (¬a ∨ ¬b) = (b ∨ ¬b) — tautology
        let c1 = Clause::new(vec![p(0), p(1)]).unwrap();
        let c2 = Clause::new(vec![n(0), n(1)]).unwrap();
        assert!(c1.resolve(&c2, p(0)).is_none());
    }

    #[test]
    fn resolution_to_empty_clause() {
        let c1 = Clause::unit(p(0));
        let c2 = Clause::unit(n(0));
        let r = c1.resolve(&c2, p(0)).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn eval_under_assignment() {
        let c = Clause::new(vec![n(0), p(1)]).unwrap();
        assert!(c.eval(&[false, false]));
        assert!(c.eval(&[true, true]));
        assert!(!c.eval(&[true, false]));
    }
}
