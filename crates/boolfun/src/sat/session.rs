//! Incremental solving sessions.
//!
//! The inference discipline issues hundreds of SAT checks per definition
//! over β formulas that differ by a handful of clauses. A [`Session`]
//! owns persistent solver state across those checks: clauses live in a
//! flat u32-packed arena and are *retracted*, never removed, so each
//! engine can keep whatever warm state survives the delta —
//!
//! - CDCL guards every clause with a selector variable and solves under
//!   assumptions, keeping its learned-clause database, VSIDS activities
//!   and saved phases across checks ([`cdcl::Incremental`]);
//! - 2-SAT caches its SCC decomposition and repairs it on clause
//!   insertion, falling back to a full Tarjan pass only when a new edge
//!   can actually merge components ([`TwoEngine`]);
//! - Horn keeps its unit-propagation watch state and derived facts warm
//!   and only re-propagates from the new clauses ([`HornEngine`]).
//!
//! [`Session::sync`] diffs a [`Cnf`] against the previously synced
//! prefix (O(1) for pure appends via [`Cnf::sync_stamp`]), so callers
//! that rebuild their β each iteration still reuse solver state.
//!
//! Verdicts agree with the fresh [`crate::solve_budgeted`] path by
//! construction — the session classifies the *active* clause set with
//! the same rules and dispatches to the same decision procedures — and
//! proofs from incremental solves replay under `ROWPOLY_CHECK_PROOFS=1`
//! against the active clause set.

use std::collections::HashMap;

use crate::classify::SatClass;
use crate::clause::Clause;
use crate::cnf::Cnf;
use crate::db::ProjectStats;
use crate::lit::{Flag, Lit};
use crate::proof::{ClauseRef, DerivationStep, Proof, ProofChecker, UnsatProof};
use crate::sat::cdcl::{self, IncVerdict};
use crate::sat::twosat::ImplicationGraph;
use crate::sat::{check_proofs_enabled, horn, BudgetStop, Model, SatBudget, SatResult};

/// What a [`Session::sync`] call did to reconcile the session with the
/// given formula.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Clauses newly pushed into the session.
    pub appended: usize,
    /// Previously synced clauses retracted because the prefix diverged.
    pub retracted: usize,
    /// Whether the slow path (elementwise prefix diff) ran.
    pub reloaded: bool,
}

/// Aggregate clause-shape counts over the active set, enough to
/// reproduce [`crate::classify`] in O(1) per query.
#[derive(Clone, Copy, Default)]
struct ShapeTally {
    total: usize,
    empty: usize,
    over2: usize,
    non_horn: usize,
    non_dual: usize,
}

#[derive(Clone, Copy)]
struct Shape {
    len: usize,
    pos: usize,
}

impl ShapeTally {
    fn apply(&mut self, s: Shape, sign: isize) {
        let bump = |field: &mut usize, cond: bool| {
            if cond {
                *field = field.wrapping_add_signed(sign);
            }
        };
        bump(&mut self.total, true);
        bump(&mut self.empty, s.len == 0);
        bump(&mut self.over2, s.len > 2);
        bump(&mut self.non_horn, s.pos > 1);
        bump(&mut self.non_dual, s.len - s.pos > 1);
    }

    fn class(&self) -> SatClass {
        if self.total == 0 {
            SatClass::Trivial
        } else if self.empty > 0 {
            SatClass::Unsat
        } else if self.over2 == 0 {
            SatClass::TwoSat
        } else if self.non_horn == 0 {
            SatClass::Horn
        } else if self.non_dual == 0 {
            SatClass::DualHorn
        } else {
            SatClass::General
        }
    }
}

/// Spacing between topological keys assigned on a rebuild, leaving room
/// for midpoint-free O(1) insertions on either side.
const GAP: u64 = 1 << 32;
/// Keys start here so below-minimum placements have headroom.
const BASE: u64 = 1 << 48;
const UNPLACED: u64 = u64::MAX;

/// Incremental 2-SAT: the persistent implication graph plus a cached
/// SCC decomposition.
///
/// `comp` assigns every literal node its exact SCC id; `order[c]` is a
/// topological key such that every edge `u → v` satisfies
/// `comp[u] == comp[v]` or `order[comp[v]] < order[comp[u]]` (strict;
/// all placed keys are unique). Under that invariant a new edge that
/// also satisfies it cannot create a new SCC — a cycle through it would
/// need a return path along which keys never increase — so insertion is
/// O(1) and a full Tarjan rebuild is needed only when the check fails.
/// New singleton components are keyed outside the current `[min, max]`
/// range, which keeps placements unique without probing.
///
/// The model reads `f ↦ order[comp[f]] < order[comp[¬f]]`, which after
/// a rebuild (keys monotone in comp id) coincides with the fresh
/// solver's `comp[f] < comp[¬f]` rule. A contradiction
/// (`comp[f] == comp[¬f]`) can only appear through a rebuild — repairs
/// never merge components — so once found it is latched and feeding
/// stops; adding clauses cannot un-falsify a formula.
struct TwoEngine {
    graph: ImplicationGraph,
    comp: Vec<u32>,
    order: Vec<u64>,
    /// (min, max) of all placed keys; `None` before the first placement.
    bounds: Option<(u64, u64)>,
    contradiction: Option<Flag>,
    fed_slots: Vec<u32>,
}

impl TwoEngine {
    fn new() -> TwoEngine {
        TwoEngine {
            graph: ImplicationGraph::empty(),
            comp: Vec::new(),
            order: Vec::new(),
            bounds: None,
            contradiction: None,
            fed_slots: Vec::new(),
        }
    }

    fn place_low(&mut self) -> Option<u64> {
        match self.bounds {
            Some((lo, hi)) => {
                let v = lo.checked_sub(GAP)?;
                self.bounds = Some((v, hi));
                Some(v)
            }
            None => {
                self.bounds = Some((BASE, BASE));
                Some(BASE)
            }
        }
    }

    fn place_high(&mut self) -> Option<u64> {
        match self.bounds {
            Some((lo, hi)) => {
                let v = hi.checked_add(GAP)?;
                self.bounds = Some((lo, v));
                Some(v)
            }
            None => {
                self.bounds = Some((BASE, BASE));
                Some(BASE)
            }
        }
    }

    /// Repairs the SCC bookkeeping for freshly inserted edges. Returns
    /// `false` when a full rebuild is required instead.
    fn repair(&mut self, inserted: &[(usize, usize)]) -> bool {
        // New nodes become fresh singleton components, keyed lazily on
        // their first edge.
        let nodes = 2 * self.graph.nflags;
        while self.comp.len() < nodes {
            self.comp.push(self.order.len() as u32);
            self.order.push(UNPLACED);
        }
        for &(u, v) in inserted {
            let (cu, cv) = (self.comp[u] as usize, self.comp[v] as usize);
            if cu == cv {
                continue;
            }
            match (self.order[cu] == UNPLACED, self.order[cv] == UNPLACED) {
                (false, false) => {
                    if self.order[cv] >= self.order[cu] {
                        return false;
                    }
                }
                (true, true) => {
                    let (Some(lo), Some(hi)) = (self.place_low(), self.place_high()) else {
                        return false;
                    };
                    self.order[cv] = lo;
                    self.order[cu] = hi;
                }
                (false, true) => {
                    let Some(lo) = self.place_low() else {
                        return false;
                    };
                    self.order[cv] = lo;
                }
                (true, false) => {
                    let Some(hi) = self.place_high() else {
                        return false;
                    };
                    self.order[cu] = hi;
                }
            }
        }
        true
    }

    /// Full Tarjan pass: exact components, keys monotone in comp id,
    /// contradiction rescan.
    fn rebuild_sccs(&mut self) {
        self.comp = self.graph.tarjan();
        let ncomps = self.comp.iter().copied().max().map_or(0, |m| m as u64 + 1);
        self.order = (0..ncomps).map(|c| BASE + c * GAP).collect();
        self.bounds = (ncomps > 0).then(|| (BASE, BASE + (ncomps - 1) * GAP));
        self.contradiction = None;
        for i in 0..self.graph.nflags {
            let f = self.graph.flags[i];
            if self.comp[self.graph.code(Lit::pos(f))] == self.comp[self.graph.code(Lit::neg(f))] {
                self.contradiction = Some(f);
                break;
            }
        }
    }
}

/// Incremental Horn / dual-Horn: warm Dowling–Gallier propagation.
///
/// Horn propagation is monotone — adding clauses only ever derives more
/// facts — so the watch rows, truth assignment and derivation trail all
/// stay valid across feeds. A new clause counts as pending only the
/// body atoms not already true (and watches only those), then the queue
/// drains from where it left off. The minimal model is the least
/// fixpoint, which is order-independent, so it matches a fresh solve of
/// the same clause set exactly.
struct HornEngine {
    flip: bool,
    /// Per fed clause: head flag (if any) and body atoms still pending.
    rows: Vec<(Option<Flag>, usize)>,
    body_watch: HashMap<Flag, Vec<usize>>,
    truth: HashMap<Flag, bool>,
    reason: HashMap<Flag, usize>,
    derived: Vec<Flag>,
    queue: Vec<Flag>,
    qi: usize,
    conflict: Option<usize>,
    mentioned: Vec<Flag>,
    mentioned_set: std::collections::HashSet<Flag>,
    fed_slots: Vec<u32>,
}

impl HornEngine {
    fn new(flip: bool) -> HornEngine {
        HornEngine {
            flip,
            rows: Vec::new(),
            body_watch: HashMap::new(),
            truth: HashMap::new(),
            reason: HashMap::new(),
            derived: Vec::new(),
            queue: Vec::new(),
            qi: 0,
            conflict: None,
            mentioned: Vec::new(),
            mentioned_set: std::collections::HashSet::new(),
            fed_slots: Vec::new(),
        }
    }

    fn feed(&mut self, c: &Clause) {
        let ci = self.rows.len();
        let mut head: Option<Flag> = None;
        let mut pending = 0usize;
        for &raw in c.lits() {
            let l = if self.flip { raw.negate() } else { raw };
            if self.mentioned_set.insert(l.flag()) {
                self.mentioned.push(l.flag());
            }
            if l.is_neg() {
                if self.truth.get(&l.flag()) != Some(&true) {
                    pending += 1;
                    self.body_watch.entry(l.flag()).or_default().push(ci);
                }
            } else {
                assert!(
                    head.is_none(),
                    "Horn session given a clause with two positive literals: {c:?}"
                );
                head = Some(l.flag());
            }
        }
        if pending == 0 {
            match head {
                Some(f) => {
                    if self.truth.insert(f, true).is_none() {
                        self.reason.insert(f, ci);
                        self.queue.push(f);
                    }
                }
                None => self.conflict = Some(ci),
            }
        }
        self.rows.push((head, pending));
    }

    fn drain(&mut self, propagations: &mut u64) {
        self.drain_watchers(propagations);
        // On conflict, facts enqueued but not yet drained are still true
        // (truth and reason are set at enqueue time); the conflict trace
        // walks them, so record them in propagation order. Watchers stay
        // unfired — the engine is frozen once unsatisfiable.
        if self.conflict.is_some() {
            while self.qi < self.queue.len() {
                self.derived.push(self.queue[self.qi]);
                self.qi += 1;
            }
        }
    }

    fn drain_watchers(&mut self, propagations: &mut u64) {
        while self.conflict.is_none() && self.qi < self.queue.len() {
            let f = self.queue[self.qi];
            self.qi += 1;
            *propagations += 1;
            self.derived.push(f);
            // A fact fires its watchers exactly once; clauses fed later
            // see `truth` and never watch an already-true atom.
            let watchers = self.body_watch.remove(&f).unwrap_or_default();
            for ci in watchers {
                let row = &mut self.rows[ci];
                row.1 -= 1;
                if row.1 == 0 {
                    match row.0 {
                        Some(h) => {
                            if self.truth.insert(h, true).is_none() {
                                self.reason.insert(h, ci);
                                self.queue.push(h);
                            }
                        }
                        None => {
                            self.conflict = Some(ci);
                            break;
                        }
                    }
                }
            }
        }
    }

    fn model(&self) -> Model {
        let mut model = Model::new();
        for &f in &self.mentioned {
            let v = self.truth.get(&f).copied().unwrap_or(false);
            model.insert(f, v != self.flip);
        }
        model
    }
}

/// Incremental CDCL: the selector-guarded solver plus a fed-slot bitmap
/// (CDCL never rebuilds on retraction, so unlike the linear engines it
/// tracks feeds per slot, not as a prefix).
struct CdclEngine {
    inc: cdcl::Incremental,
    fed: Vec<bool>,
}

enum EngineState {
    None,
    Two(TwoEngine),
    Horn(HornEngine),
    Cdcl(CdclEngine),
}

/// Persistent solver state for one stream of related SAT checks — the
/// checks of one definition, or of one open document in the daemon.
///
/// Clauses are pushed into a flat arena of u32-packed literals and
/// retracted by slot id; [`Session::solve`] classifies the active set
/// and dispatches to a warm engine, rebuilding it only when the class
/// changes or a retraction invalidates fed state. [`Session::sync`]
/// reconciles the session with an externally maintained [`Cnf`],
/// reusing the unchanged prefix.
pub struct Session {
    /// Packed literal arena: [`Lit::code`]s, clause spans in `spans`.
    lits: Vec<u32>,
    /// slot → (start, len) into `lits`.
    spans: Vec<(u32, u32)>,
    active: Vec<bool>,
    n_active: usize,
    tally: ShapeTally,
    engine: EngineState,
    /// Slots mirroring the last-synced formula, in clause order.
    sync_slots: Vec<u32>,
    /// [`Cnf::sync_stamp`] observed at the last sync.
    sync_key: Option<(u64, u64)>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    pub fn new() -> Session {
        Session {
            lits: Vec::new(),
            spans: Vec::new(),
            active: Vec::new(),
            n_active: 0,
            tally: ShapeTally::default(),
            engine: EngineState::None,
            sync_slots: Vec::new(),
            sync_key: None,
        }
    }

    /// Clears every slot and all solver state, keeping the arena
    /// allocations. A reset session behaves like [`Session::new`];
    /// per-worker scratch uses this to recycle capacity across
    /// unrelated formula histories without unbounded slot growth.
    pub fn reset(&mut self) {
        self.lits.clear();
        self.spans.clear();
        self.active.clear();
        self.n_active = 0;
        self.tally = ShapeTally::default();
        self.engine = EngineState::None;
        self.sync_slots.clear();
        self.sync_key = None;
    }

    /// Pre-sizes the arena from projection statistics: the clause count
    /// after elimination is bounded by the surviving resolvents, and
    /// projection output is dominated by unit/binary clauses.
    pub fn reserve_from_stats(&mut self, stats: &ProjectStats) {
        let clauses = stats.resolvents.saturating_sub(stats.subsumed) + stats.fastpath + 8;
        self.spans.reserve(clauses);
        self.active.reserve(clauses);
        self.lits.reserve(2 * clauses);
    }

    /// Number of clauses currently active.
    pub fn active_len(&self) -> usize {
        self.n_active
    }

    /// Total slots ever pushed (active or retracted).
    pub fn slot_len(&self) -> usize {
        self.spans.len()
    }

    /// The [`SatClass`] of the active clause set, in O(1). Agrees with
    /// [`crate::classify`] on [`Session::active_cnf`].
    pub fn class(&self) -> SatClass {
        self.tally.class()
    }

    fn shape_at(&self, slot: u32) -> Shape {
        let (start, len) = self.spans[slot as usize];
        let lits = &self.lits[start as usize..(start + len) as usize];
        let pos = lits.iter().filter(|&&c| c & 1 == 0).count();
        Shape {
            len: len as usize,
            pos,
        }
    }

    fn clause_at(&self, slot: u32) -> Clause {
        let (start, len) = self.spans[slot as usize];
        let lits = self.lits[start as usize..(start + len) as usize]
            .iter()
            .map(|&c| Lit::from_code(c as usize))
            .collect();
        Clause::new(lits).expect("session arena holds well-formed clauses")
    }

    /// Adds a clause; returns its slot id (stable for the session's
    /// lifetime, usable with [`Session::retract`]).
    pub fn push(&mut self, c: &Clause) -> u32 {
        let slot = self.spans.len() as u32;
        let start = self.lits.len() as u32;
        for &l in c.lits() {
            self.lits.push(l.code() as u32);
        }
        self.spans.push((start, c.len() as u32));
        self.active.push(true);
        self.n_active += 1;
        self.tally.apply(self.shape_at(slot), 1);
        slot
    }

    /// Deactivates a clause. CDCL retracts by dropping the selector
    /// assumption (free); the linear engines notice the prefix break at
    /// the next solve and rebuild from the active set.
    pub fn retract(&mut self, slot: u32) {
        if !self.active[slot as usize] {
            return;
        }
        self.active[slot as usize] = false;
        self.n_active -= 1;
        self.tally.apply(self.shape_at(slot), -1);
    }

    fn active_slots(&self) -> Vec<u32> {
        (0..self.spans.len() as u32)
            .filter(|&s| self.active[s as usize])
            .collect()
    }

    fn clause_eq(&self, slot: u32, c: &Clause) -> bool {
        let (start, len) = self.spans[slot as usize];
        if len as usize != c.len() {
            return false;
        }
        self.lits[start as usize..(start + len) as usize]
            .iter()
            .zip(c.lits())
            .all(|(&code, &l)| code as usize == l.code())
    }

    /// The active clause set as a [`Cnf`] (clauses in slot order — the
    /// order proofs and cores index by).
    pub fn active_cnf(&self) -> Cnf {
        let mut cnf = Cnf::top();
        for slot in self.active_slots() {
            cnf.add_clause(self.clause_at(slot));
        }
        cnf
    }

    /// Reconciles the session with `cnf`: the unchanged prefix of
    /// previously synced clauses is kept (O(1) when `cnf` has only been
    /// appended to since the last sync, by [`Cnf::sync_stamp`]), the
    /// diverged suffix is retracted, and new clauses are pushed.
    pub fn sync(&mut self, cnf: &Cnf) -> SyncOutcome {
        let stamp = cnf.sync_stamp();
        let clauses = cnf.clauses();
        let mut out = SyncOutcome::default();
        let fast = self.sync_key == Some(stamp) && clauses.len() >= self.sync_slots.len();
        let keep = if fast {
            self.sync_slots.len()
        } else {
            out.reloaded = true;
            let mut k = 0;
            while k < self.sync_slots.len()
                && k < clauses.len()
                && self.clause_eq(self.sync_slots[k], &clauses[k])
            {
                k += 1;
            }
            for i in k..self.sync_slots.len() {
                self.retract(self.sync_slots[i]);
                out.retracted += 1;
            }
            self.sync_slots.truncate(k);
            k
        };
        for c in &clauses[keep..] {
            let slot = self.push(c);
            self.sync_slots.push(slot);
            out.appended += 1;
        }
        self.sync_key = Some(stamp);
        if rowpoly_obs::enabled() {
            if fast {
                rowpoly_obs::counter_add("sat.incr.reuse_hits", 1);
            } else {
                rowpoly_obs::counter_add("sat.incr.sync.reloads", 1);
            }
            rowpoly_obs::counter_add("sat.incr.sync.appended", out.appended as u64);
            rowpoly_obs::counter_add("sat.incr.sync.retracted", out.retracted as u64);
        }
        out
    }

    /// Decides satisfiability of the active clause set, reusing solver
    /// state from previous calls. Verdict-equivalent to
    /// `solve_budgeted(&self.active_cnf(), budget)`.
    pub fn solve(&mut self, budget: &SatBudget) -> Result<SatResult, BudgetStop> {
        if check_proofs_enabled() {
            let (res, proof) = self.solve_proved(budget)?;
            let cnf = self.active_cnf();
            let checked = ProofChecker::check(&cnf, &proof);
            rowpoly_obs::counter_add("proof.checked", 1);
            if let Err(e) = checked {
                rowpoly_obs::counter_add("proof.check_failures", 1);
                let verdict = if res.is_sat() { "SAT" } else { "UNSAT" };
                panic!(
                    "ROWPOLY_CHECK_PROOFS: bogus {verdict} verdict from incremental \
                     session ({e})\nformula: {cnf:?}"
                );
            }
            return Ok(res);
        }
        self.solve_inner(budget, false).map(|(r, _)| r)
    }

    /// [`Session::solve`] reduced to the verdict bit.
    pub fn check(&mut self, budget: &SatBudget) -> Result<bool, BudgetStop> {
        self.solve(budget).map(|r| r.is_sat())
    }

    /// [`Session::solve`] with a [`Proof`] witness valid against
    /// [`Session::active_cnf`].
    pub fn solve_proved(&mut self, budget: &SatBudget) -> Result<(SatResult, Proof), BudgetStop> {
        self.solve_inner(budget, true)
            .map(|(r, p)| (r, p.expect("proof requested from solve_inner")))
    }

    fn solve_inner(
        &mut self,
        budget: &SatBudget,
        want_proof: bool,
    ) -> Result<(SatResult, Option<Proof>), BudgetStop> {
        rowpoly_obs::counter_add("sat.incr.solves", 1);
        let class = self.class();
        match class {
            SatClass::Trivial => {
                return Ok((
                    SatResult::Sat(Model::new()),
                    want_proof.then(|| Proof::Sat(Model::new())),
                ));
            }
            SatClass::Unsat => {
                let slots = self.active_slots();
                let idx = slots
                    .iter()
                    .position(|&s| self.spans[s as usize].1 == 0)
                    .expect("Unsat class implies an active empty clause");
                return Ok((
                    SatResult::Unsat(Vec::new()),
                    want_proof.then(|| {
                        Proof::Unsat(UnsatProof {
                            core: vec![idx],
                            steps: Vec::new(),
                        })
                    }),
                ));
            }
            _ => {}
        }
        let slots = self.active_slots();
        let engine = std::mem::replace(&mut self.engine, EngineState::None);
        match class {
            SatClass::TwoSat => {
                let mut e = match engine {
                    EngineState::Two(e) if slots.starts_with(&e.fed_slots) => e,
                    old => {
                        self.note_engine_rebuild(&old);
                        TwoEngine::new()
                    }
                };
                let out = self.solve_two(&mut e, &slots, want_proof);
                self.engine = EngineState::Two(e);
                Ok(out)
            }
            SatClass::Horn | SatClass::DualHorn => {
                let flip = class == SatClass::DualHorn;
                let mut e = match engine {
                    EngineState::Horn(e) if e.flip == flip && slots.starts_with(&e.fed_slots) => e,
                    old => {
                        self.note_engine_rebuild(&old);
                        HornEngine::new(flip)
                    }
                };
                let out = self.solve_horn(&mut e, &slots, want_proof);
                self.engine = EngineState::Horn(e);
                Ok(out)
            }
            SatClass::General => {
                let mut e = match engine {
                    EngineState::Cdcl(e) => e,
                    old => {
                        self.note_engine_rebuild(&old);
                        CdclEngine {
                            inc: cdcl::Incremental::new(),
                            fed: Vec::new(),
                        }
                    }
                };
                let out = self.solve_cdcl(&mut e, &slots, want_proof, budget);
                self.engine = EngineState::Cdcl(e);
                out
            }
            SatClass::Trivial | SatClass::Unsat => unreachable!("handled above"),
        }
    }

    fn note_engine_rebuild(&self, old: &EngineState) {
        if rowpoly_obs::enabled() {
            match old {
                EngineState::None => {}
                EngineState::Cdcl(e) => {
                    rowpoly_obs::counter_add("sat.incr.rebuilds", 1);
                    rowpoly_obs::counter_add("sat.incr.learned.dropped", e.inc.learnt_len() as u64);
                }
                _ => rowpoly_obs::counter_add("sat.incr.rebuilds", 1),
            }
        }
    }

    fn solve_two(
        &self,
        e: &mut TwoEngine,
        slots: &[u32],
        want_proof: bool,
    ) -> (SatResult, Option<Proof>) {
        rowpoly_obs::counter_add("sat.twosat.solves", 1);
        if e.contradiction.is_none() && slots.len() > e.fed_slots.len() {
            let mut inserted = Vec::new();
            for &s in &slots[e.fed_slots.len()..] {
                let ci = e.fed_slots.len() as u32;
                let c = self.clause_at(s);
                e.graph
                    .add_clause_edges(&c, ci, &mut inserted)
                    .expect("session dispatch excludes empty clauses");
                e.fed_slots.push(s);
            }
            if e.repair(&inserted) {
                rowpoly_obs::counter_add("sat.incr.twosat.repairs", 1);
            } else {
                rowpoly_obs::counter_add("sat.incr.twosat.rebuilds", 1);
                e.rebuild_sccs();
            }
        }
        match e.contradiction {
            Some(f) => {
                let chain = e.graph.contradiction_chain(f, &e.comp);
                let proof = want_proof.then(|| {
                    Proof::Unsat(e.graph.contradiction_proof(&self.active_cnf(), f, &e.comp))
                });
                (SatResult::Unsat(chain), proof)
            }
            None => {
                let mut model = Model::new();
                for i in 0..e.graph.nflags {
                    let f = e.graph.flags[i];
                    let po = e.order[e.comp[e.graph.code(Lit::pos(f))] as usize];
                    let no = e.order[e.comp[e.graph.code(Lit::neg(f))] as usize];
                    model.insert(f, po < no);
                }
                let proof = want_proof.then(|| Proof::Sat(model.clone()));
                (SatResult::Sat(model), proof)
            }
        }
    }

    fn solve_horn(
        &self,
        e: &mut HornEngine,
        slots: &[u32],
        want_proof: bool,
    ) -> (SatResult, Option<Proof>) {
        let mut propagations = 0u64;
        if e.conflict.is_none() {
            for &s in &slots[e.fed_slots.len()..] {
                let c = self.clause_at(s);
                e.feed(&c);
                e.fed_slots.push(s);
                if e.conflict.is_some() {
                    break;
                }
            }
            e.drain(&mut propagations);
        }
        if rowpoly_obs::enabled() {
            let (solves, props) = if e.flip {
                ("sat.dual-horn.solves", "sat.dual-horn.propagations")
            } else {
                ("sat.horn.solves", "sat.horn.propagations")
            };
            rowpoly_obs::counter_add(solves, 1);
            rowpoly_obs::counter_add(props, propagations);
        }
        match e.conflict {
            Some(violated) => {
                let cnf = self.active_cnf();
                let chain = horn::conflict_chain(&cnf, violated, &e.reason, &e.derived, e.flip);
                let proof = want_proof.then(|| {
                    Proof::Unsat(horn::conflict_proof(
                        &cnf, violated, &e.reason, &e.derived, e.flip,
                    ))
                });
                (SatResult::Unsat(chain), proof)
            }
            None => {
                let model = e.model();
                let proof = want_proof.then(|| Proof::Sat(model.clone()));
                (SatResult::Sat(model), proof)
            }
        }
    }

    fn solve_cdcl(
        &self,
        e: &mut CdclEngine,
        slots: &[u32],
        want_proof: bool,
        budget: &SatBudget,
    ) -> Result<(SatResult, Option<Proof>), BudgetStop> {
        if e.fed.len() < self.spans.len() {
            e.fed.resize(self.spans.len(), false);
        }
        for &s in slots {
            if !e.fed[s as usize] {
                let c = self.clause_at(s);
                e.inc.add(c.lits(), s);
                e.fed[s as usize] = true;
            }
        }
        let verdict = e.inc.solve(&self.active, budget)?;
        if rowpoly_obs::enabled() {
            rowpoly_obs::counter_add("sat.incr.learned.kept", e.inc.learnt_len() as u64);
        }
        match verdict {
            IncVerdict::Sat(model) => {
                let proof = want_proof.then(|| Proof::Sat(model.clone()));
                Ok((SatResult::Sat(model), proof))
            }
            IncVerdict::Unsat(core_slots) => {
                let proof = want_proof.then(|| self.cdcl_unsat_proof(slots, &core_slots));
                Ok((SatResult::Unsat(Vec::new()), proof))
            }
        }
    }

    /// A checkable refutation from a failed-assumption core. The core —
    /// the slots named by the failed assumptions — is jointly unsat (the
    /// guarded clause database is satisfiable outright, so the final
    /// conflict can only rest on the assumptions analyzed). When the
    /// core is unit-refutable a single `Rup ⊥` step suffices; otherwise
    /// the core subformula is re-solved fresh with proof emission and
    /// the resulting derivation is remapped onto the active indices.
    fn cdcl_unsat_proof(&self, slots: &[u32], core_slots: &[u32]) -> Proof {
        let cnf = self.active_cnf();
        let rank: HashMap<u32, usize> = slots.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut core_active: Vec<usize> = core_slots.iter().map(|s| rank[s]).collect();
        core_active.sort_unstable();
        let candidate = Proof::Unsat(UnsatProof {
            core: core_active.clone(),
            steps: vec![DerivationStep::Rup {
                clause: Clause::empty(),
            }],
        });
        if ProofChecker::check(&cnf, &candidate).is_ok() {
            return candidate;
        }
        rowpoly_obs::counter_add("sat.incr.proof.fallbacks", 1);
        let mut sub = Cnf::top();
        for &i in &core_active {
            sub.add_clause(cnf.clauses()[i].clone());
        }
        let (res, proof) = crate::sat::solve_budgeted_proved(&sub, &SatBudget::unlimited())
            .expect("unlimited budget cannot stop");
        assert!(
            !res.is_sat(),
            "incremental failed-assumption core re-solved as SAT: session verdict unsound"
        );
        let Proof::Unsat(p) = proof else {
            unreachable!("unsat verdict carries an unsat proof")
        };
        let remap = |r: ClauseRef| match r {
            ClauseRef::Input(j) => ClauseRef::Input(core_active[j]),
            derived => derived,
        };
        Proof::Unsat(UnsatProof {
            core: p.core.iter().map(|&j| core_active[j]).collect(),
            steps: p
                .steps
                .into_iter()
                .map(|st| match st {
                    DerivationStep::Resolve {
                        left,
                        right,
                        pivot,
                        resolvent,
                    } => DerivationStep::Resolve {
                        left: remap(left),
                        right: remap(right),
                        pivot,
                        resolvent,
                    },
                    rup => rup,
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{check_model, solve_budgeted};

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }
    fn clause(lits: Vec<Lit>) -> Clause {
        Clause::new(lits).expect("test clause")
    }

    fn agree(session: &mut Session) {
        let budget = SatBudget::unlimited();
        let fresh = solve_budgeted(&session.active_cnf(), &budget).expect("fresh");
        let incr = session.solve(&budget).expect("incremental");
        assert_eq!(fresh.is_sat(), incr.is_sat(), "verdict diverged");
        if let SatResult::Sat(m) = &incr {
            assert!(check_model(&session.active_cnf(), m), "model invalid");
        }
    }

    #[test]
    fn class_tracks_pushes_and_retracts() {
        let mut s = Session::new();
        assert_eq!(s.class(), SatClass::Trivial);
        let a = s.push(&clause(vec![p(0), n(1)]));
        assert_eq!(s.class(), SatClass::TwoSat);
        let b = s.push(&clause(vec![p(0), p(1), p(2)]));
        assert_eq!(s.class(), SatClass::DualHorn);
        let c = s.push(&clause(vec![n(0), n(1), n(2)]));
        assert_eq!(s.class(), SatClass::General);
        s.retract(b);
        assert_eq!(s.class(), SatClass::Horn);
        s.retract(c);
        assert_eq!(s.class(), SatClass::TwoSat);
        s.retract(a);
        assert_eq!(s.class(), SatClass::Trivial);
    }

    #[test]
    fn twosat_incremental_matches_fresh_across_adds() {
        let mut s = Session::new();
        s.push(&clause(vec![n(0), p(1)]));
        agree(&mut s);
        s.push(&clause(vec![n(1), p(2)]));
        agree(&mut s);
        s.push(&clause(vec![p(0)]));
        agree(&mut s);
        // Close the contradiction cycle: f2 → ¬f0.
        s.push(&clause(vec![n(2), n(0)]));
        agree(&mut s);
        assert!(!s.check(&SatBudget::unlimited()).unwrap());
        // Retraction reopens it.
        s.retract(3);
        agree(&mut s);
        assert!(s.check(&SatBudget::unlimited()).unwrap());
    }

    #[test]
    fn horn_keeps_propagation_warm() {
        let mut s = Session::new();
        s.push(&clause(vec![p(0)]));
        s.push(&clause(vec![n(0), n(1), p(2)]));
        agree(&mut s);
        s.push(&clause(vec![p(1)]));
        agree(&mut s);
        s.push(&clause(vec![n(2)]));
        agree(&mut s);
        assert!(!s.check(&SatBudget::unlimited()).unwrap());
    }

    #[test]
    fn cdcl_retraction_via_assumptions() {
        let mut s = Session::new();
        // Pigeonhole 3→2 plus a side general clause; unsat.
        let v = |pigeon: u32, hole: u32| Flag(pigeon * 2 + hole);
        for pigeon in 0..3 {
            s.push(&clause(vec![
                Lit::pos(v(pigeon, 0)),
                Lit::pos(v(pigeon, 1)),
            ]));
        }
        let mut pair_slots = Vec::new();
        for hole in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    pair_slots
                        .push(s.push(&clause(vec![Lit::neg(v(p1, hole)), Lit::neg(v(p2, hole))])));
                }
            }
        }
        // Keep the instance in the general class throughout.
        s.push(&clause(vec![p(10), p(11), p(12)]));
        s.push(&clause(vec![n(10), n(11), n(12)]));
        agree(&mut s);
        assert!(!s.check(&SatBudget::unlimited()).unwrap());
        // Retract one at-most-one constraint: now satisfiable.
        s.retract(pair_slots[0]);
        agree(&mut s);
        // And make it unsat again with a fresh clause.
        let f = s.push(&clause(vec![Lit::neg(v(0, 0)), Lit::neg(v(1, 0))]));
        agree(&mut s);
        s.retract(f);
        agree(&mut s);
    }

    #[test]
    fn cdcl_unsat_core_names_active_slots_and_proof_replays() {
        let mut s = Session::new();
        s.push(&clause(vec![p(0), p(1), p(2)]));
        s.push(&clause(vec![n(0), n(1), n(2)]));
        s.push(&clause(vec![p(0), n(1)]));
        s.push(&clause(vec![p(1), n(2)]));
        s.push(&clause(vec![p(2), n(0)]));
        s.push(&clause(vec![n(0), p(1)]));
        s.push(&clause(vec![n(1), p(2)]));
        assert_eq!(s.class(), SatClass::General);
        // Force unsat: all-equal via the implications plus the two
        // covering clauses is still sat; pin both polarities down.
        s.push(&clause(vec![p(0), p(1)]));
        s.push(&clause(vec![n(2), n(0)]));
        let budget = SatBudget::unlimited();
        let (res, proof) = s.solve_proved(&budget).expect("solve");
        if !res.is_sat() {
            ProofChecker::check(&s.active_cnf(), &proof).expect("proof replays");
        }
        agree(&mut s);
    }

    #[test]
    fn sync_appends_and_reloads() {
        let mut s = Session::new();
        let mut cnf = Cnf::top();
        cnf.add_lits(vec![p(0), n(1)]);
        cnf.add_lits(vec![p(1)]);
        let o1 = s.sync(&cnf);
        assert_eq!((o1.appended, o1.retracted), (2, 0));
        assert!(o1.reloaded, "first sync has no recorded stamp");
        agree(&mut s);
        // Pure append: fast path.
        cnf.add_lits(vec![n(0), p(2)]);
        let o2 = s.sync(&cnf);
        assert_eq!((o2.appended, o2.retracted, o2.reloaded), (1, 0, false));
        agree(&mut s);
        // Structural change (normalize sorts): slow path, prefix rediff.
        cnf.normalize();
        let o3 = s.sync(&cnf);
        assert!(o3.reloaded);
        agree(&mut s);
        assert_eq!(s.active_len(), cnf.len());
        // A clone gets a fresh identity: divergent edits cannot alias.
        let mut clone = cnf.clone();
        clone.add_lits(vec![n(2)]);
        let o4 = s.sync(&clone);
        assert!(o4.reloaded);
        assert_eq!(o4.appended, 1);
        agree(&mut s);
    }

    #[test]
    fn empty_clause_roundtrip() {
        let mut s = Session::new();
        s.push(&clause(vec![p(0)]));
        let e = s.push(&Clause::empty());
        assert_eq!(s.class(), SatClass::Unsat);
        let (res, proof) = s.solve_proved(&SatBudget::unlimited()).expect("solve");
        assert!(!res.is_sat());
        ProofChecker::check(&s.active_cnf(), &proof).expect("empty-clause core replays");
        s.retract(e);
        agree(&mut s);
        assert!(s.check(&SatBudget::unlimited()).unwrap());
    }
}
