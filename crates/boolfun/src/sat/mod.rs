//! Satisfiability solvers for the Boolean-function domain.
//!
//! The paper classifies record operations by the class of Boolean formulas
//! their inference rules generate:
//!
//! * select / update / removal / renaming → two-variable Horn clauses,
//!   decidable in linear time by a **2-SAT** solver ([`twosat`]);
//! * asymmetric record concatenation → multi-variable Horn clauses,
//!   decidable in linear time by a **Horn-SAT** solver ([`horn`]);
//! * symmetric concatenation and `when N in x` conditionals → general CNF,
//!   requiring a full **SAT** solver ([`cdcl`]).
//!
//! [`solve`] dispatches on [`crate::classify`] so each program pays only
//! for the operations it uses.

pub mod cdcl;
pub mod horn;
pub mod session;
pub mod twosat;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use crate::classify::{classify, SatClass};
use crate::cnf::Cnf;
use crate::lit::{Flag, Lit};
use crate::proof::{Proof, ProofChecker, UnsatProof};

/// A cooperative resource budget for SAT search.
///
/// The linear solvers (2-SAT, Horn) terminate in time proportional to
/// the formula, so only the CDCL engine — reached by symmetric
/// concatenation and `when` conditionals — consults the budget: it
/// counts *search steps* (decisions plus unit propagations) and stops
/// early once `max_steps` is exceeded or `cancel` is raised. An early
/// stop is reported as [`BudgetStop`], never as an unsound
/// sat/unsat verdict.
#[derive(Clone, Debug, Default)]
pub struct SatBudget {
    /// Maximum CDCL search steps per solve (`None` = unlimited).
    pub max_steps: Option<u64>,
    /// Cooperative cancellation: when another thread sets the flag the
    /// solver stops at the next loop iteration.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SatBudget {
    /// A budget that never stops the solver.
    pub fn unlimited() -> SatBudget {
        SatBudget::default()
    }

    /// A pure step budget without a cancellation flag.
    pub fn steps(max: u64) -> SatBudget {
        SatBudget {
            max_steps: Some(max),
            cancel: None,
        }
    }

    /// Whether this budget can ever stop a solve.
    pub fn is_limited(&self) -> bool {
        self.max_steps.is_some() || self.cancel.is_some()
    }

    /// Whether the cancellation flag has been raised.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

/// Why a budgeted solve stopped before reaching a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetStop {
    /// The step budget ran out after `steps` search steps.
    Steps(u64),
    /// The cancellation flag was raised.
    Cancelled,
}

impl BudgetStop {
    /// Steps spent before stopping (0 for a cancellation).
    pub fn steps(self) -> u64 {
        match self {
            BudgetStop::Steps(n) => n,
            BudgetStop::Cancelled => 0,
        }
    }
}

impl std::fmt::Display for BudgetStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetStop::Steps(n) => write!(f, "SAT step budget exhausted after {n} steps"),
            BudgetStop::Cancelled => write!(f, "SAT solve cancelled"),
        }
    }
}

/// A satisfying assignment over the flags mentioned by a formula.
/// Unmentioned flags are unconstrained.
pub type Model = BTreeMap<Flag, bool>;

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; a model over the mentioned flags.
    Sat(Model),
    /// The formula is unsatisfiable. The payload is a best-effort
    /// explanation: a chain of literals that are successively forced,
    /// ending in a contradiction. The 2-SAT and Horn solvers produce the
    /// full implication path (this is what turns "unsatisfiable" into the
    /// paper's "path from an empty record to a field access" error
    /// message); the CDCL solver returns an empty chain.
    Unsat(Vec<Lit>),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat(_) => None,
        }
    }

    /// The conflict chain, if unsatisfiable.
    pub fn conflict(&self) -> Option<&[Lit]> {
        match self {
            SatResult::Sat(_) => None,
            SatResult::Unsat(chain) => Some(chain),
        }
    }
}

/// Decides satisfiability of `cnf`, dispatching to the cheapest solver
/// that is complete for its clause shape.
pub fn solve(cnf: &Cnf) -> SatResult {
    match solve_budgeted(cnf, &SatBudget::unlimited()) {
        Ok(r) => r,
        Err(stop) => unreachable!("unlimited budget stopped a solve: {stop}"),
    }
}

/// Harness override for [`check_proofs_enabled`]: `-1` defers to the
/// environment latch, `0`/`1` force the answer. Lets a benchmark toggle
/// checking within one process to measure its overhead, which the
/// read-once environment latch cannot do.
static CHECK_OVERRIDE: std::sync::atomic::AtomicI8 = std::sync::atomic::AtomicI8::new(-1);

/// Forces inline proof checking on or off for the rest of the process
/// (until the next call), overriding `ROWPOLY_CHECK_PROOFS`. Intended
/// for benchmark harnesses that measure checking overhead; ordinary
/// callers should use the environment variable.
pub fn set_check_proofs(enabled: bool) {
    CHECK_OVERRIDE.store(enabled as i8, std::sync::atomic::Ordering::Relaxed);
}

/// Whether `ROWPOLY_CHECK_PROOFS=1` is set: every verdict produced by
/// [`solve_budgeted`] (and everything layered on it) is then solved with
/// proof emission, checked inline by [`ProofChecker`], and a bogus
/// verdict panics — a standing self-test for the whole engine. The
/// environment is read once per process; [`set_check_proofs`] overrides
/// it.
pub fn check_proofs_enabled() -> bool {
    match CHECK_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        -1 => {
            static FLAG: OnceLock<bool> = OnceLock::new();
            *FLAG.get_or_init(|| {
                matches!(
                    std::env::var("ROWPOLY_CHECK_PROOFS").ok().as_deref(),
                    Some("1") | Some("true")
                )
            })
        }
        v => v != 0,
    }
}

/// [`solve`] under a [`SatBudget`]. Only the CDCL engine (general CNF)
/// can stop early; the linear solvers always run to completion.
pub fn solve_budgeted(cnf: &Cnf, budget: &SatBudget) -> Result<SatResult, BudgetStop> {
    if check_proofs_enabled() {
        let class = classify(cnf);
        let (res, proof) = solve_budgeted_proved(cnf, budget)?;
        let t0 = std::time::Instant::now();
        let checked = ProofChecker::check(cnf, &proof);
        if rowpoly_obs::enabled() {
            rowpoly_obs::hist_record(
                &format!("proof.check_ns.{}", class.name()),
                t0.elapsed().as_nanos() as u64,
            );
            rowpoly_obs::counter_add("proof.checked", 1);
        }
        if let Err(e) = checked {
            rowpoly_obs::counter_add("proof.check_failures", 1);
            let verdict = if res.is_sat() { "SAT" } else { "UNSAT" };
            panic!("ROWPOLY_CHECK_PROOFS: bogus {verdict} verdict ({e})\nformula: {cnf:?}");
        }
        return Ok(res);
    }
    let class = classify(cnf);
    if rowpoly_obs::enabled() {
        rowpoly_obs::counter_add(&format!("sat.dispatch.{}", class.name()), 1);
    }
    Ok(match class {
        SatClass::Trivial => SatResult::Sat(Model::new()),
        SatClass::Unsat => SatResult::Unsat(Vec::new()),
        SatClass::TwoSat => twosat::solve(cnf),
        SatClass::Horn => horn::solve(cnf),
        SatClass::DualHorn => horn::solve_dual(cnf),
        SatClass::General => cdcl::solve_budgeted(cnf, budget)?,
    })
}

/// [`solve`] returning the verdict together with its [`Proof`] witness.
pub fn solve_proved(cnf: &Cnf) -> (SatResult, Proof) {
    match solve_budgeted_proved(cnf, &SatBudget::unlimited()) {
        Ok(r) => r,
        Err(stop) => unreachable!("unlimited budget stopped a solve: {stop}"),
    }
}

/// [`solve_budgeted`] with proof emission: SAT verdicts carry the model
/// found, UNSAT verdicts carry an unsat core and a derivation of `⊥`.
/// Proof construction is confined to this entry point, so the default
/// (proof-free) solve paths pay nothing for it.
pub fn solve_budgeted_proved(
    cnf: &Cnf,
    budget: &SatBudget,
) -> Result<(SatResult, Proof), BudgetStop> {
    let class = classify(cnf);
    if rowpoly_obs::enabled() {
        rowpoly_obs::counter_add(&format!("sat.dispatch.{}", class.name()), 1);
    }
    let (res, proof) = match class {
        SatClass::Trivial => (SatResult::Sat(Model::new()), Proof::Sat(Model::new())),
        SatClass::Unsat => {
            let idx = cnf
                .clauses()
                .iter()
                .position(|c| c.is_empty())
                .expect("Unsat class implies an empty clause");
            (
                SatResult::Unsat(Vec::new()),
                Proof::Unsat(UnsatProof {
                    core: vec![idx],
                    steps: Vec::new(),
                }),
            )
        }
        SatClass::TwoSat => twosat::solve_proved(cnf),
        SatClass::Horn => horn::solve_proved(cnf),
        SatClass::DualHorn => horn::solve_dual_proved(cnf),
        SatClass::General => cdcl::solve_budgeted_proved(cnf, budget)?,
    };
    if rowpoly_obs::enabled() {
        match &proof {
            Proof::Sat(_) => rowpoly_obs::counter_add("proof.emitted.sat", 1),
            Proof::Unsat(p) => {
                rowpoly_obs::counter_add("proof.emitted.unsat", 1);
                rowpoly_obs::hist_record("proof.core_size", p.core_size() as u64);
                rowpoly_obs::hist_record("proof.derivation_len", p.derivation_len() as u64);
            }
        }
    }
    Ok((res, proof))
}

/// Solver selection for benchmarking individual engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Linear-time 2-SAT via strongly connected components.
    TwoSat,
    /// Linear-time Horn-SAT via positive unit propagation.
    Horn,
    /// Conflict-driven clause learning for general CNF.
    Cdcl,
    /// Class-based dispatch (the default).
    Auto,
}

/// Decides satisfiability with an explicitly chosen engine.
///
/// # Panics
///
/// Panics if the formula is outside the engine's complete fragment
/// (e.g. a 3-literal clause given to [`Engine::TwoSat`]).
pub fn solve_with(engine: Engine, cnf: &Cnf) -> SatResult {
    match engine {
        Engine::TwoSat => twosat::solve(cnf),
        Engine::Horn => horn::solve(cnf),
        Engine::Cdcl => cdcl::solve(cnf),
        Engine::Auto => solve(cnf),
    }
}

/// Verifies that a model satisfies the formula (test helper).
pub fn check_model(cnf: &Cnf, model: &Model) -> bool {
    cnf.clauses().iter().all(|c| {
        c.lits()
            .iter()
            .any(|l| model.get(&l.flag()).copied().unwrap_or(false) != l.is_neg())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    /// All engines agree with brute force on random small formulas.
    #[test]
    fn engines_agree_with_brute_force() {
        // Deterministic pseudo-random generator (LCG) to avoid an extra dep.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut rand = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _case in 0..300 {
            let nflags = 1 + rand(6) as u32;
            let nclauses = rand(12) as usize;
            let mut cnf = Cnf::top();
            for _ in 0..nclauses {
                let len = 1 + rand(3) as usize;
                let mut lits = Vec::new();
                for _ in 0..len {
                    let f = Flag(rand(nflags as u64) as u32);
                    lits.push(if rand(2) == 0 {
                        Lit::pos(f)
                    } else {
                        Lit::neg(f)
                    });
                }
                cnf.add_lits(lits);
            }
            let universe: Vec<Flag> = (0..nflags).map(Flag).collect();
            let brute_sat = !cnf.models(&universe).is_empty();
            let auto = solve(&cnf);
            assert_eq!(auto.is_sat(), brute_sat, "auto dispatch wrong on {cnf:?}");
            if let SatResult::Sat(m) = &auto {
                assert!(check_model(&cnf, m), "bad model for {cnf:?}: {m:?}");
            }
            let cdcl = cdcl::solve(&cnf);
            assert_eq!(cdcl.is_sat(), brute_sat, "cdcl wrong on {cnf:?}");
        }
    }

    /// Every proof emitted on random small formulas — spanning all
    /// dispatch classes — passes the checker, and UNSAT cores are
    /// genuinely unsatisfiable subsets.
    #[test]
    fn proofs_check_on_random_formulas() {
        let mut state: u64 = 0xDEADBEEFCAFEF00D;
        let mut rand = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _case in 0..400 {
            let nflags = 1 + rand(6) as u32;
            let nclauses = rand(12) as usize;
            let mut cnf = Cnf::top();
            for _ in 0..nclauses {
                let len = 1 + rand(3) as usize;
                let mut lits = Vec::new();
                for _ in 0..len {
                    let f = Flag(rand(nflags as u64) as u32);
                    lits.push(if rand(2) == 0 {
                        Lit::pos(f)
                    } else {
                        Lit::neg(f)
                    });
                }
                cnf.add_lits(lits);
            }
            let (res, proof) = solve_proved(&cnf);
            assert_eq!(res.is_sat(), proof.is_sat_witness(), "verdict/proof split");
            if let Err(e) = ProofChecker::check(&cnf, &proof) {
                panic!("proof rejected ({e}) on {cnf:?}\nproof: {proof:?}");
            }
            if let Some(p) = proof.unsat() {
                let sub = Cnf::from_clauses(p.core.iter().map(|&i| cnf.clauses()[i].clone()));
                assert!(
                    !sub.is_sat(),
                    "core of {cnf:?} is satisfiable: {:?}",
                    p.core
                );
                let min = crate::proof::minimize_core(&cnf, &p.core);
                let msub = Cnf::from_clauses(min.iter().map(|&i| cnf.clauses()[i].clone()));
                assert!(!msub.is_sat(), "minimized core is satisfiable");
                assert!(min.len() <= p.core.len());
            }
        }
    }

    #[test]
    fn dispatch_handles_each_class() {
        // 2-SAT shaped.
        let mut two = Cnf::top();
        two.imply(p(0), p(1));
        two.assert_lit(p(0));
        assert!(solve(&two).is_sat());

        // Horn shaped (3-literal clause, one positive).
        let mut horn = Cnf::top();
        horn.add_lits(vec![n(0), n(1), p(2)]);
        horn.assert_lit(p(0));
        horn.assert_lit(p(1));
        horn.assert_lit(n(2));
        assert!(!solve(&horn).is_sat());

        // General (two positive literals in a 3-clause plus pigeonhole-ish
        // constraints).
        let mut gen = Cnf::top();
        gen.add_lits(vec![p(0), p(1), p(2)]);
        gen.add_lits(vec![n(0), n(1)]);
        gen.add_lits(vec![n(1), n(2)]);
        gen.add_lits(vec![n(0), n(2)]);
        assert!(solve(&gen).is_sat());
    }
}
