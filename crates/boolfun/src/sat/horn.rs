//! Linear-time Horn-SAT by positive unit propagation (Dowling–Gallier).
//!
//! Asymmetric record concatenation generates multi-variable Horn clauses
//! when the meaning of flags is inverted (`¬f` = "field exists"), which the
//! paper notes keeps concatenation linear-time. This module decides Horn
//! formulas (at most one positive literal per clause) and, by polarity
//! flipping, dual-Horn formulas (at most one negative literal per clause).

use std::collections::{HashMap, HashSet};

use crate::clause::Clause;
use crate::cnf::Cnf;
use crate::lit::{Flag, Lit};
use crate::proof::{ClauseRef, DerivationStep, Proof, UnsatProof};
use crate::sat::{Model, SatResult};

/// Decides a Horn formula (every clause has at most one positive literal).
///
/// The computed model is the *minimal* one: exactly the facts forced by
/// unit propagation are true. On conflict, the returned chain lists the
/// facts derived on the way to the contradiction, in propagation order.
///
/// # Panics
///
/// Panics if a clause has more than one positive literal.
pub fn solve(cnf: &Cnf) -> SatResult {
    solve_impl(cnf, false)
}

/// Decides a dual-Horn formula (at most one negative literal per clause)
/// by flipping every polarity and running Horn propagation.
///
/// # Panics
///
/// Panics if a clause has more than one negative literal.
pub fn solve_dual(cnf: &Cnf) -> SatResult {
    solve_impl(cnf, true)
}

/// [`solve`] with a [`Proof`] witness: the minimal model on SAT, a
/// unit-resolution derivation of `⊥` on UNSAT.
pub(crate) fn solve_proved(cnf: &Cnf) -> (SatResult, Proof) {
    solve_proved_impl(cnf, false)
}

/// [`solve_dual`] with a [`Proof`] witness.
pub(crate) fn solve_dual_proved(cnf: &Cnf) -> (SatResult, Proof) {
    solve_proved_impl(cnf, true)
}

fn solve_impl(cnf: &Cnf, flip: bool) -> SatResult {
    let mut propagations = 0u64;
    let out = propagate(cnf, flip, &mut propagations);
    flush_obs(flip, propagations);
    match out {
        PropOutcome::Sat(m) => SatResult::Sat(m),
        PropOutcome::Empty(_) => SatResult::Unsat(Vec::new()),
        PropOutcome::Conflict {
            violated,
            reason,
            derived,
        } => SatResult::Unsat(conflict_chain(cnf, violated, &reason, &derived, flip)),
    }
}

fn solve_proved_impl(cnf: &Cnf, flip: bool) -> (SatResult, Proof) {
    let mut propagations = 0u64;
    let out = propagate(cnf, flip, &mut propagations);
    flush_obs(flip, propagations);
    match out {
        PropOutcome::Sat(m) => (SatResult::Sat(m.clone()), Proof::Sat(m)),
        PropOutcome::Empty(ci) => (
            SatResult::Unsat(Vec::new()),
            Proof::Unsat(UnsatProof {
                core: vec![ci],
                steps: Vec::new(),
            }),
        ),
        PropOutcome::Conflict {
            violated,
            reason,
            derived,
        } => {
            let chain = conflict_chain(cnf, violated, &reason, &derived, flip);
            let proof = conflict_proof(cnf, violated, &reason, &derived, flip);
            (SatResult::Unsat(chain), Proof::Unsat(proof))
        }
    }
}

fn flush_obs(flip: bool, propagations: u64) {
    if rowpoly_obs::enabled() {
        let (solves, props) = if flip {
            ("sat.dual-horn.solves", "sat.dual-horn.propagations")
        } else {
            ("sat.horn.solves", "sat.horn.propagations")
        };
        rowpoly_obs::counter_add(solves, 1);
        rowpoly_obs::counter_add(props, propagations);
    }
}

/// Outcome of a propagation run, with enough bookkeeping retained to
/// rebuild both the human-facing conflict chain and a checkable proof.
enum PropOutcome {
    Sat(Model),
    /// The input contains the empty clause (at this index).
    Empty(usize),
    Conflict {
        /// The all-negative clause whose body became fully true.
        violated: usize,
        /// reason[f] = clause index that forced f.
        reason: HashMap<Flag, usize>,
        /// Facts in propagation order.
        derived: Vec<Flag>,
    },
}

fn propagate(cnf: &Cnf, flip: bool, propagations: &mut u64) -> PropOutcome {
    let orient = |l: Lit| if flip { l.negate() } else { l };
    // Per clause: the head (positive literal, if any) and the number of
    // body atoms (negative literals) not yet satisfied.
    struct Row {
        head: Option<Flag>,
        pending: usize,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(cnf.len());
    // body_watch[f] = clauses whose body contains f.
    let mut body_watch: HashMap<Flag, Vec<usize>> = HashMap::new();
    let mut queue: Vec<Flag> = Vec::new();
    let mut truth: HashMap<Flag, bool> = HashMap::new();
    // reason[f] = clause index that forced f (for conflict chains).
    let mut reason: HashMap<Flag, usize> = HashMap::new();

    for (ci, c) in cnf.clauses().iter().enumerate() {
        if c.is_empty() {
            return PropOutcome::Empty(ci);
        }
        let mut head: Option<Flag> = None;
        let mut body = 0usize;
        for &raw in c.lits() {
            let l = orient(raw);
            if l.is_neg() {
                body += 1;
                body_watch.entry(l.flag()).or_default().push(ci);
            } else {
                assert!(
                    head.is_none(),
                    "Horn solver given a clause with two positive literals: {c:?}"
                );
                head = Some(l.flag());
            }
        }
        if body == 0 {
            // A fact. (`head` is `Some` because the clause is non-empty.)
            let f = head.expect("non-empty clause with no body has a head");
            if truth.insert(f, true).is_none() {
                reason.insert(f, ci);
                queue.push(f);
            }
        }
        rows.push(Row {
            head,
            pending: body,
        });
    }

    let mut derived: Vec<Flag> = Vec::new();
    let mut qi = 0;
    while qi < queue.len() {
        let f = queue[qi];
        qi += 1;
        *propagations += 1;
        derived.push(f);
        if let Some(clauses) = body_watch.get(&f) {
            for &ci in clauses {
                let row = &mut rows[ci];
                row.pending -= 1;
                if row.pending == 0 {
                    match row.head {
                        Some(h) => {
                            if truth.insert(h, true).is_none() {
                                reason.insert(h, ci);
                                queue.push(h);
                            }
                        }
                        None => {
                            // All-negative clause with all body atoms true:
                            // contradiction.
                            return PropOutcome::Conflict {
                                violated: ci,
                                reason,
                                derived,
                            };
                        }
                    }
                }
            }
        }
    }

    // Minimal model: derived facts true, every other mentioned flag false
    // (or flipped back, in the dual case).
    let mut model = Model::new();
    for f in cnf.flags() {
        let v = truth.get(&f).copied().unwrap_or(false);
        model.insert(f, v != flip);
    }
    PropOutcome::Sat(model)
}

/// Shared conflict traversal: walks reasons backwards from the violated
/// clause, returning the facts transitively responsible (discovery
/// order) and the clauses visited (the unsat core, discovery order).
fn trace_conflict(
    cnf: &Cnf,
    violated: usize,
    reason: &HashMap<Flag, usize>,
    flip: bool,
) -> (Vec<Flag>, Vec<usize>) {
    let mut needed: Vec<Flag> = Vec::new();
    let mut core: Vec<usize> = Vec::new();
    let mut stack: Vec<usize> = vec![violated];
    let mut seen_clauses = HashSet::new();
    let mut seen_flags = HashSet::new();
    while let Some(ci) = stack.pop() {
        if !seen_clauses.insert(ci) {
            continue;
        }
        core.push(ci);
        let c: &Clause = &cnf.clauses()[ci];
        for &raw in c.lits() {
            let l = if flip { raw.negate() } else { raw };
            if l.is_neg() && seen_flags.insert(l.flag()) {
                needed.push(l.flag());
                if let Some(&rc) = reason.get(&l.flag()) {
                    stack.push(rc);
                }
            }
        }
    }
    (needed, core)
}

/// Walks reasons backwards from the violated clause, producing the forced
/// literals in derivation order.
pub(crate) fn conflict_chain(
    cnf: &Cnf,
    violated: usize,
    reason: &HashMap<Flag, usize>,
    derived: &[Flag],
    flip: bool,
) -> Vec<Lit> {
    let (needed, _core) = trace_conflict(cnf, violated, reason, flip);
    // Order by derivation order for a readable chain.
    let mut chain: Vec<Lit> = derived
        .iter()
        .filter(|f| needed.contains(f))
        .map(|&f| Lit::new(f, flip))
        .collect();
    if chain.is_empty() {
        // Conflict from facts alone; report the violated clause's atoms.
        chain = cnf.clauses()[violated].lits().to_vec();
    }
    chain
}

/// Unit-resolution refutation mirroring the propagation that found the
/// conflict. Each fact `f` in the responsible set gets the unit clause
/// `{head(f)}` derived by resolving its reason clause against the units
/// of its body atoms (in propagation order, so every body unit already
/// exists); the violated clause then resolves against its body units
/// down to `⊥`. The core is exactly the reason clauses the traversal
/// visits — the same set the conflict chain reports on.
pub(crate) fn conflict_proof(
    cnf: &Cnf,
    violated: usize,
    reason: &HashMap<Flag, usize>,
    derived: &[Flag],
    flip: bool,
) -> UnsatProof {
    let (needed, mut core) = trace_conflict(cnf, violated, reason, flip);
    let needed: HashSet<Flag> = needed.into_iter().collect();
    let mut steps: Vec<DerivationStep> = Vec::new();
    // unit_ref[f] = the clause {head raw literal of f} in the derivation.
    let mut unit_ref: HashMap<Flag, ClauseRef> = HashMap::new();
    for &f in derived.iter().filter(|f| needed.contains(f)) {
        let rc = reason[&f];
        let r = resolve_body_away(cnf, rc, flip, &unit_ref, &mut steps);
        unit_ref.insert(f, r);
    }
    resolve_body_away(cnf, violated, flip, &unit_ref, &mut steps);
    core.sort_unstable();
    UnsatProof { core, steps }
}

/// Resolves every (oriented-)negative literal of clause `ci` against the
/// corresponding fact's unit clause, leaving `{head}` for a rule clause
/// and `⊥` for the violated all-negative clause. Returns a reference to
/// the final clause.
fn resolve_body_away(
    cnf: &Cnf,
    ci: usize,
    flip: bool,
    unit_ref: &HashMap<Flag, ClauseRef>,
    steps: &mut Vec<DerivationStep>,
) -> ClauseRef {
    let clause = &cnf.clauses()[ci];
    let mut cur_ref = ClauseRef::Input(ci);
    let mut cur = clause.clone();
    for &raw in clause.lits() {
        let oriented = if flip { raw.negate() } else { raw };
        if !oriented.is_neg() {
            continue; // the head survives
        }
        let g = oriented.flag();
        // The unit clause is {pivot}; `cur` still carries ¬pivot (= raw).
        let pivot = raw.negate();
        let unit = Clause::unit(pivot);
        let resolvent = unit
            .resolve(&cur, pivot)
            .expect("unit resolution cannot produce a tautology");
        steps.push(DerivationStep::Resolve {
            left: unit_ref[&g],
            right: cur_ref,
            pivot,
            resolvent: resolvent.clone(),
        });
        cur_ref = ClauseRef::Derived(steps.len() - 1);
        cur = resolvent;
    }
    cur_ref
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::check_model;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    #[test]
    fn facts_propagate_through_rules() {
        // f0, f1, (f0 ∧ f1 → f2), ¬f2 ∨ ¬f3-free: sat with f2 true.
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.assert_lit(p(1));
        b.add_lits(vec![n(0), n(1), p(2)]);
        match solve(&b) {
            SatResult::Sat(m) => {
                assert!(check_model(&b, &m));
                assert!(m[&Flag(2)]);
            }
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }

    #[test]
    fn minimal_model_leaves_unforced_false() {
        let mut b = Cnf::top();
        b.add_lits(vec![n(0), p(1)]); // f0 → f1, f0 not forced
        match solve(&b) {
            SatResult::Sat(m) => {
                assert!(!m[&Flag(0)]);
                assert!(!m[&Flag(1)]);
            }
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }

    #[test]
    fn goal_clause_conflict() {
        // f0, f0→f1, f1→f2, goal ¬f2: unsat, chain mentions f0..f2.
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.add_lits(vec![n(0), p(1)]);
        b.add_lits(vec![n(1), p(2)]);
        b.assert_lit(n(2));
        match solve(&b) {
            SatResult::Unsat(chain) => {
                let flags: Vec<Flag> = chain.iter().map(|l| l.flag()).collect();
                assert!(flags.contains(&Flag(0)));
                assert!(flags.contains(&Flag(2)));
            }
            SatResult::Sat(_) => panic!("should be unsat"),
        }
    }

    #[test]
    fn wide_bodies_require_all_atoms() {
        // f0 ∧ f1 ∧ f2 → ⊥ but only f0, f1 are facts: sat.
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.assert_lit(p(1));
        b.add_lits(vec![n(0), n(1), n(2)]);
        assert!(solve(&b).is_sat());
    }

    #[test]
    fn dual_horn_by_flipping() {
        // (f0 ∨ f1 ∨ ¬f2) ∧ ¬f0 ∧ ¬f1 ∧ f2 — dual-Horn, unsat.
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1), n(2)]);
        b.assert_lit(n(0));
        b.assert_lit(n(1));
        b.assert_lit(p(2));
        assert!(!solve_dual(&b).is_sat());

        // Drop the f2 fact: sat.
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1), n(2)]);
        b.assert_lit(n(0));
        b.assert_lit(n(1));
        match solve_dual(&b) {
            SatResult::Sat(m) => assert!(check_model(&b, &m)),
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }

    /// The inverted-flag encoding of asymmetric concatenation from
    /// Section 5: (f1a ∧ f2a → fa) with inverted meaning — still Horn and
    /// solvable in linear time.
    #[test]
    fn asymmetric_concat_clause_shape() {
        let mut b = Cnf::top();
        // fa → f1a ∨ f2a in the original polarity becomes, inverted,
        // ¬f1a' ∧ ¬f2a' → ¬fa', i.e. clause (f1a' ∨ f2a' ∨ ¬fa')… kept
        // here in its Horn form after inversion: (¬f1a ∨ ¬f2a ∨ fa).
        b.add_lits(vec![n(0), n(1), p(2)]);
        assert_eq!(crate::classify(&b), crate::SatClass::Horn);
        assert!(solve(&b).is_sat());
    }
}
