//! Linear-time 2-SAT via strongly connected components.
//!
//! The inference rules for the core record operations (empty record,
//! select, update) generate only atoms and two-variable Horn clauses, so
//! satisfiability of the resulting Boolean function is a 2-SAT instance
//! decidable in linear time (Aspvall–Plass–Tarjan). Beyond the verdict,
//! this solver extracts the *implication path* witnessing a contradiction,
//! which the type checker turns into the "path from an empty record to a
//! field access" diagnostic promised by the paper's Observation 1.

use std::collections::BTreeMap;

use crate::clause::Clause;
use crate::cnf::Cnf;
use crate::lit::{Flag, Lit};
use crate::proof::{ClauseRef, DerivationStep, Proof, UnsatProof};
use crate::sat::{Model, SatResult};

/// Decides a 2-SAT instance.
///
/// Flags are remapped to a dense index first, so the cost is proportional
/// to the formula, not to the global flag space (inference sessions
/// allocate flags monotonically, so late formulas mention late flags).
///
/// # Panics
///
/// Panics if any clause has more than two literals; callers must dispatch
/// through [`crate::classify`] or guarantee the shape.
pub fn solve(cnf: &Cnf) -> SatResult {
    rowpoly_obs::counter_add("sat.twosat.solves", 1);
    let graph = match ImplicationGraph::build(cnf) {
        Ok(g) => g,
        Err(_empty) => return SatResult::Unsat(Vec::new()),
    };
    let comp = graph.tarjan();
    if rowpoly_obs::enabled() {
        rowpoly_obs::counter_add("sat.twosat.literal_nodes", (2 * graph.nflags) as u64);
        let sccs = comp.iter().copied().max().map_or(0, |m| m as u64 + 1);
        rowpoly_obs::counter_add("sat.twosat.sccs", sccs);
    }
    match graph.verdict(&comp) {
        Verdict::Contradiction(f) => SatResult::Unsat(graph.contradiction_chain(f, &comp)),
        Verdict::Model(model) => SatResult::Sat(model),
    }
}

/// [`solve`] with a [`Proof`] witness: the model on SAT, a resolution
/// chain along the contradictory implication paths on UNSAT.
pub(crate) fn solve_proved(cnf: &Cnf) -> (SatResult, Proof) {
    rowpoly_obs::counter_add("sat.twosat.solves", 1);
    let graph = match ImplicationGraph::build(cnf) {
        Ok(g) => g,
        Err(empty_idx) => {
            let proof = Proof::Unsat(UnsatProof {
                core: vec![empty_idx],
                steps: Vec::new(),
            });
            return (SatResult::Unsat(Vec::new()), proof);
        }
    };
    let comp = graph.tarjan();
    match graph.verdict(&comp) {
        Verdict::Contradiction(f) => {
            let chain = graph.contradiction_chain(f, &comp);
            let proof = graph.contradiction_proof(cnf, f, &comp);
            (SatResult::Unsat(chain), Proof::Unsat(proof))
        }
        Verdict::Model(model) => (SatResult::Sat(model.clone()), Proof::Sat(model)),
    }
}

pub(crate) enum Verdict {
    Contradiction(Flag),
    Model(Model),
}

pub(crate) struct ImplicationGraph {
    pub(crate) nflags: usize,
    /// Dense index → sparse flag.
    pub(crate) flags: Vec<Flag>,
    /// Sparse flag → dense index.
    dense: std::collections::HashMap<Flag, usize>,
    /// Adjacency: edges[dense lit code] = successors (sparse literal,
    /// index of the input clause the edge encodes). The edge `a → b`
    /// stands for the clause `{¬a, b}` (a unit `{l}` yields `¬l → l`),
    /// which is what lets an implication path replay as a chain of
    /// resolutions in [`ImplicationGraph::contradiction_proof`].
    edges: Vec<Vec<(Lit, u32)>>,
}

impl ImplicationGraph {
    /// Dense code of a (sparse) literal.
    pub(crate) fn code(&self, l: Lit) -> usize {
        self.dense[&l.flag()] << 1 | l.is_neg() as usize
    }

    /// A graph over no flags, grown clause by clause via
    /// [`ImplicationGraph::add_clause_edges`].
    pub(crate) fn empty() -> ImplicationGraph {
        ImplicationGraph {
            nflags: 0,
            flags: Vec::new(),
            dense: std::collections::HashMap::new(),
            edges: Vec::new(),
        }
    }

    /// Dense index of `f`, allocating a node pair on first mention.
    pub(crate) fn ensure_flag(&mut self, f: Flag) -> usize {
        if let Some(&i) = self.dense.get(&f) {
            return i;
        }
        let i = self.nflags;
        self.nflags += 1;
        self.flags.push(f);
        self.dense.insert(f, i);
        self.edges.push(Vec::new());
        self.edges.push(Vec::new());
        i
    }

    /// Inserts the implication edges for one clause (allocating nodes
    /// for unseen flags) and reports them as dense `(from, to)` node
    /// pairs so an incremental caller can repair its SCC bookkeeping.
    /// `Err(())` flags an empty clause — an immediate contradiction the
    /// graph cannot encode.
    #[allow(clippy::result_unit_err)]
    pub(crate) fn add_clause_edges(
        &mut self,
        c: &Clause,
        ci: u32,
        inserted: &mut Vec<(usize, usize)>,
    ) -> Result<(), ()> {
        match c.lits() {
            [] => Err(()),
            &[l] => {
                // Unit clause l: edge ¬l → l.
                self.ensure_flag(l.flag());
                let from = self.code(l.negate());
                self.edges[from].push((l, ci));
                inserted.push((from, self.code(l)));
                Ok(())
            }
            &[a, b] => {
                self.ensure_flag(a.flag());
                self.ensure_flag(b.flag());
                let from_a = self.code(a.negate());
                self.edges[from_a].push((b, ci));
                inserted.push((from_a, self.code(b)));
                let from_b = self.code(b.negate());
                self.edges[from_b].push((a, ci));
                inserted.push((from_b, self.code(a)));
                Ok(())
            }
            _ => panic!("2-SAT solver given a clause with >2 literals: {c:?}"),
        }
    }

    /// Builds the implication graph; returns `Err` with the clause index
    /// for an immediate contradiction (empty clause).
    pub(crate) fn build(cnf: &Cnf) -> Result<ImplicationGraph, usize> {
        let flags: Vec<Flag> = cnf.flags().into_iter().collect();
        let dense: std::collections::HashMap<Flag, usize> =
            flags.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let nflags = flags.len();
        let mut g = ImplicationGraph {
            nflags,
            flags,
            dense,
            edges: vec![Vec::new(); 2 * nflags],
        };
        let mut inserted = Vec::new();
        for (ci, c) in cnf.clauses().iter().enumerate() {
            if g.add_clause_edges(c, ci as u32, &mut inserted).is_err() {
                return Err(ci);
            }
        }
        Ok(g)
    }

    /// Reads the verdict off the component assignment: a contradiction
    /// flag if some literal shares a component with its negation, else
    /// the model `l ↦ comp[l] < comp[¬l]` (components are numbered in
    /// completion order, sinks first).
    pub(crate) fn verdict(&self, comp: &[u32]) -> Verdict {
        for flag_idx in 0..self.nflags {
            let f = self.flags[flag_idx];
            let (pc, nc) = (comp[self.code(Lit::pos(f))], comp[self.code(Lit::neg(f))]);
            if pc == nc {
                return Verdict::Contradiction(f);
            }
        }
        let mut model = Model::new();
        for flag_idx in 0..self.nflags {
            let f = self.flags[flag_idx];
            model.insert(
                f,
                comp[self.code(Lit::pos(f))] < comp[self.code(Lit::neg(f))],
            );
        }
        Verdict::Model(model)
    }

    /// Iterative Tarjan SCC; returns component ids in completion order
    /// (component 0 completes first, i.e. is a sink).
    pub(crate) fn tarjan(&self) -> Vec<u32> {
        const UNVISITED: u32 = u32::MAX;
        let n = self.edges.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![UNVISITED; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0u32;
        let mut next_comp = 0u32;
        // Explicit DFS stack: (node, next child position).
        let mut call: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            call.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut child)) = call.last_mut() {
                if *child < self.edges[v].len() {
                    let w = self.code(self.edges[v][*child].0);
                    *child += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }
        comp
    }

    /// For a flag whose literals share a component, extracts the cyclic
    /// implication chain `f → … → ¬f → … → f` as a literal sequence.
    pub(crate) fn contradiction_chain(&self, f: Flag, comp: &[u32]) -> Vec<Lit> {
        let pos = Lit::pos(f);
        let neg = Lit::neg(f);
        let there = self
            .path_within(pos, neg, comp)
            .map(|p| p.0)
            .unwrap_or_default();
        let back = self
            .path_within(neg, pos, comp)
            .map(|p| p.0)
            .unwrap_or_default();
        let mut chain = there;
        // Avoid repeating the pivot literal between the two halves.
        chain.extend(back.into_iter().skip(1));
        chain
    }

    /// Resolution refutation along the two contradictory implication
    /// paths: the path `f → … → ¬f` chain-resolves its edge clauses into
    /// the unit `{¬f}`, the reverse path into `{f}`, and one final
    /// resolution yields `⊥`. The core is exactly the edge clauses on
    /// the two paths.
    pub(crate) fn contradiction_proof(&self, cnf: &Cnf, f: Flag, comp: &[u32]) -> UnsatProof {
        let pos = Lit::pos(f);
        let neg = Lit::neg(f);
        let (there_nodes, there_clauses) = self
            .path_within(pos, neg, comp)
            .expect("pos and neg share a strongly connected component");
        let (back_nodes, back_clauses) = self
            .path_within(neg, pos, comp)
            .expect("pos and neg share a strongly connected component");
        let mut steps: Vec<DerivationStep> = Vec::new();
        let neg_unit = chain_resolve(cnf, &there_nodes, &there_clauses, &mut steps);
        let pos_unit = chain_resolve(cnf, &back_nodes, &back_clauses, &mut steps);
        steps.push(DerivationStep::Resolve {
            left: pos_unit,
            right: neg_unit,
            pivot: pos,
            resolvent: Clause::empty(),
        });
        let mut core: Vec<usize> = there_clauses
            .iter()
            .chain(&back_clauses)
            .map(|&c| c as usize)
            .collect();
        core.sort_unstable();
        core.dedup();
        UnsatProof { core, steps }
    }

    /// BFS from `from` to `to` restricted to `from`'s component. Returns
    /// the node sequence (length k+1) and the input clause index of each
    /// edge along it (length k).
    fn path_within(&self, from: Lit, to: Lit, comp: &[u32]) -> Option<(Vec<Lit>, Vec<u32>)> {
        let cid = comp[self.code(from)];
        // prev[node] = (predecessor, clause of the edge predecessor→node).
        let mut prev: BTreeMap<usize, (Lit, u32)> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        prev.insert(self.code(from), (from, u32::MAX));
        while let Some(v) = queue.pop_front() {
            if v == to {
                let mut path = vec![to];
                let mut clauses = Vec::new();
                let mut cur = to;
                while cur != from {
                    let (pred, ci) = prev[&self.code(cur)];
                    clauses.push(ci);
                    cur = pred;
                    path.push(cur);
                }
                path.reverse();
                clauses.reverse();
                return Some((path, clauses));
            }
            for &(w, ci) in &self.edges[self.code(v)] {
                if comp[self.code(w)] == cid && !prev.contains_key(&self.code(w)) {
                    prev.insert(self.code(w), (v, ci));
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

/// Chain-resolves the edge clauses of the implication path
/// `nodes[0] → … → nodes[k]` into the unit clause `{¬nodes[0]}`,
/// appending the steps and returning a reference to the final clause.
///
/// Invariant: edge `i` (clause `clauses[i]`) is `{¬nodes[i], nodes[i+1]}`
/// — or the unit `{nodes[i+1]}` when `nodes[i] = ¬nodes[i+1]` — so the
/// running resolvent after edge `i` is `{¬nodes[0], nodes[i+1]}`, which
/// collapses to `{¬nodes[0]}` at the path's end (where
/// `nodes[k] = ¬nodes[0]`) or as soon as a unit edge clause strikes the
/// intermediate literal out.
fn chain_resolve(
    cnf: &Cnf,
    nodes: &[Lit],
    clauses: &[u32],
    steps: &mut Vec<DerivationStep>,
) -> ClauseRef {
    let goal = Clause::unit(nodes[0].negate());
    let first = clauses[0] as usize;
    let mut cur_ref = ClauseRef::Input(first);
    let mut cur = cnf.clauses()[first].clone();
    for i in 1..clauses.len() {
        if cur == goal {
            break;
        }
        let pivot = nodes[i];
        debug_assert!(cur.contains(pivot), "running resolvent carries the pivot");
        let right = clauses[i] as usize;
        let resolvent = cur
            .resolve(&cnf.clauses()[right], pivot)
            .expect("2-SAT path resolution cannot produce a tautology");
        steps.push(DerivationStep::Resolve {
            left: cur_ref,
            right: ClauseRef::Input(right),
            pivot,
            resolvent: resolvent.clone(),
        });
        cur_ref = ClauseRef::Derived(steps.len() - 1);
        cur = resolvent;
    }
    debug_assert_eq!(cur, goal, "path chain resolves to the unit {goal:?}");
    cur_ref
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::check_model;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    #[test]
    fn satisfiable_chain() {
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), p(2));
        b.assert_lit(p(0));
        match solve(&b) {
            SatResult::Sat(m) => {
                assert!(check_model(&b, &m));
                assert_eq!(m.get(&Flag(0)), Some(&true));
                assert_eq!(m.get(&Flag(2)), Some(&true));
            }
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }

    #[test]
    fn contradiction_has_chain_through_both_polarities() {
        // f0 → f1, f1 → ¬f0, f0: forces f0 and ¬f0.
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), n(0));
        b.assert_lit(p(0));
        match solve(&b) {
            SatResult::Unsat(chain) => {
                assert!(!chain.is_empty());
                let flags: Vec<Flag> = chain.iter().map(|l| l.flag()).collect();
                assert!(flags.contains(&Flag(0)));
            }
            SatResult::Sat(_) => panic!("should be unsat"),
        }
    }

    #[test]
    fn pure_negative_units_are_fine() {
        let mut b = Cnf::top();
        b.assert_lit(n(0));
        b.assert_lit(n(1));
        b.imply(p(0), p(1));
        assert!(solve(&b).is_sat());
    }

    #[test]
    fn two_units_conflict() {
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.assert_lit(n(0));
        match solve(&b) {
            SatResult::Unsat(chain) => assert!(!chain.is_empty()),
            SatResult::Sat(_) => panic!("should be unsat"),
        }
    }

    #[test]
    fn long_implication_cycle_is_sat() {
        let mut b = Cnf::top();
        for i in 0..100 {
            b.imply(p(i), p((i + 1) % 100));
        }
        assert!(solve(&b).is_sat());
    }

    #[test]
    fn model_respects_equivalences() {
        let mut b = Cnf::top();
        b.iff(p(0), p(1));
        b.iff(p(1), n(2));
        b.assert_lit(p(2));
        match solve(&b) {
            SatResult::Sat(m) => {
                assert!(check_model(&b, &m));
                assert_eq!(m[&Flag(0)], m[&Flag(1)]);
                assert_eq!(m[&Flag(1)], !m[&Flag(2)]);
                assert!(m[&Flag(2)]);
            }
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }
}
