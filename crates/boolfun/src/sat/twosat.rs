//! Linear-time 2-SAT via strongly connected components.
//!
//! The inference rules for the core record operations (empty record,
//! select, update) generate only atoms and two-variable Horn clauses, so
//! satisfiability of the resulting Boolean function is a 2-SAT instance
//! decidable in linear time (Aspvall–Plass–Tarjan). Beyond the verdict,
//! this solver extracts the *implication path* witnessing a contradiction,
//! which the type checker turns into the "path from an empty record to a
//! field access" diagnostic promised by the paper's Observation 1.

use std::collections::BTreeMap;

use crate::cnf::Cnf;
use crate::lit::{Flag, Lit};
use crate::sat::{Model, SatResult};

/// Decides a 2-SAT instance.
///
/// Flags are remapped to a dense index first, so the cost is proportional
/// to the formula, not to the global flag space (inference sessions
/// allocate flags monotonically, so late formulas mention late flags).
///
/// # Panics
///
/// Panics if any clause has more than two literals; callers must dispatch
/// through [`crate::classify`] or guarantee the shape.
pub fn solve(cnf: &Cnf) -> SatResult {
    rowpoly_obs::counter_add("sat.twosat.solves", 1);
    let graph = match ImplicationGraph::build(cnf) {
        Ok(g) => g,
        Err(unsat) => return unsat,
    };
    let comp = graph.tarjan();
    if rowpoly_obs::enabled() {
        rowpoly_obs::counter_add("sat.twosat.literal_nodes", (2 * graph.nflags) as u64);
        let sccs = comp.iter().copied().max().map_or(0, |m| m as u64 + 1);
        rowpoly_obs::counter_add("sat.twosat.sccs", sccs);
    }
    // Unsat iff some flag and its negation share a component.
    for flag_idx in 0..graph.nflags {
        let f = graph.flags[flag_idx];
        let (pc, nc) = (comp[graph.code(Lit::pos(f))], comp[graph.code(Lit::neg(f))]);
        if pc == nc {
            let chain = graph.contradiction_chain(f, &comp);
            return SatResult::Unsat(chain);
        }
    }
    // Model: l true iff comp[l] < comp[¬l] (components numbered in
    // completion order, sinks first).
    let mut model = Model::new();
    for flag_idx in 0..graph.nflags {
        let f = graph.flags[flag_idx];
        model.insert(
            f,
            comp[graph.code(Lit::pos(f))] < comp[graph.code(Lit::neg(f))],
        );
    }
    SatResult::Sat(model)
}

struct ImplicationGraph {
    nflags: usize,
    /// Dense index → sparse flag.
    flags: Vec<Flag>,
    /// Sparse flag → dense index.
    dense: std::collections::HashMap<Flag, usize>,
    /// Adjacency: edges[dense lit code] = successors (sparse literals).
    edges: Vec<Vec<Lit>>,
}

impl ImplicationGraph {
    /// Dense code of a (sparse) literal.
    fn code(&self, l: Lit) -> usize {
        self.dense[&l.flag()] << 1 | l.is_neg() as usize
    }

    /// Builds the implication graph; returns `Err` for an immediate
    /// contradiction (empty clause).
    fn build(cnf: &Cnf) -> Result<ImplicationGraph, SatResult> {
        let flags: Vec<Flag> = cnf.flags().into_iter().collect();
        let dense: std::collections::HashMap<Flag, usize> =
            flags.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let nflags = flags.len();
        let mut g = ImplicationGraph {
            nflags,
            flags,
            dense,
            edges: vec![Vec::new(); 2 * nflags],
        };
        for c in cnf.clauses() {
            match c.lits() {
                [] => return Err(SatResult::Unsat(Vec::new())),
                &[l] => {
                    // Unit clause l: edge ¬l → l.
                    let from = g.code(l.negate());
                    g.edges[from].push(l);
                }
                &[a, b] => {
                    let from_a = g.code(a.negate());
                    g.edges[from_a].push(b);
                    let from_b = g.code(b.negate());
                    g.edges[from_b].push(a);
                }
                _ => panic!("2-SAT solver given a clause with >2 literals: {c:?}"),
            }
        }
        Ok(g)
    }

    /// Iterative Tarjan SCC; returns component ids in completion order
    /// (component 0 completes first, i.e. is a sink).
    fn tarjan(&self) -> Vec<u32> {
        const UNVISITED: u32 = u32::MAX;
        let n = self.edges.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![UNVISITED; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0u32;
        let mut next_comp = 0u32;
        // Explicit DFS stack: (node, next child position).
        let mut call: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            call.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut child)) = call.last_mut() {
                if *child < self.edges[v].len() {
                    let w = self.code(self.edges[v][*child]);
                    *child += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }
        comp
    }

    /// For a flag whose literals share a component, extracts the cyclic
    /// implication chain `f → … → ¬f → … → f` as a literal sequence.
    fn contradiction_chain(&self, f: Flag, comp: &[u32]) -> Vec<Lit> {
        let pos = Lit::pos(f);
        let neg = Lit::neg(f);
        let there = self.path_within(pos, neg, comp).unwrap_or_default();
        let back = self.path_within(neg, pos, comp).unwrap_or_default();
        let mut chain = there;
        // Avoid repeating the pivot literal between the two halves.
        chain.extend(back.into_iter().skip(1));
        chain
    }

    /// BFS from `from` to `to` restricted to `from`'s component.
    fn path_within(&self, from: Lit, to: Lit, comp: &[u32]) -> Option<Vec<Lit>> {
        let cid = comp[self.code(from)];
        let mut prev: BTreeMap<usize, Lit> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        prev.insert(self.code(from), from);
        while let Some(v) = queue.pop_front() {
            if v == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = prev[&self.code(cur)];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &w in &self.edges[self.code(v)] {
                if comp[self.code(w)] == cid && !prev.contains_key(&self.code(w)) {
                    prev.insert(self.code(w), v);
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::check_model;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    #[test]
    fn satisfiable_chain() {
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), p(2));
        b.assert_lit(p(0));
        match solve(&b) {
            SatResult::Sat(m) => {
                assert!(check_model(&b, &m));
                assert_eq!(m.get(&Flag(0)), Some(&true));
                assert_eq!(m.get(&Flag(2)), Some(&true));
            }
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }

    #[test]
    fn contradiction_has_chain_through_both_polarities() {
        // f0 → f1, f1 → ¬f0, f0: forces f0 and ¬f0.
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), n(0));
        b.assert_lit(p(0));
        match solve(&b) {
            SatResult::Unsat(chain) => {
                assert!(!chain.is_empty());
                let flags: Vec<Flag> = chain.iter().map(|l| l.flag()).collect();
                assert!(flags.contains(&Flag(0)));
            }
            SatResult::Sat(_) => panic!("should be unsat"),
        }
    }

    #[test]
    fn pure_negative_units_are_fine() {
        let mut b = Cnf::top();
        b.assert_lit(n(0));
        b.assert_lit(n(1));
        b.imply(p(0), p(1));
        assert!(solve(&b).is_sat());
    }

    #[test]
    fn two_units_conflict() {
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.assert_lit(n(0));
        match solve(&b) {
            SatResult::Unsat(chain) => assert!(!chain.is_empty()),
            SatResult::Sat(_) => panic!("should be unsat"),
        }
    }

    #[test]
    fn long_implication_cycle_is_sat() {
        let mut b = Cnf::top();
        for i in 0..100 {
            b.imply(p(i), p((i + 1) % 100));
        }
        assert!(solve(&b).is_sat());
    }

    #[test]
    fn model_respects_equivalences() {
        let mut b = Cnf::top();
        b.iff(p(0), p(1));
        b.iff(p(1), n(2));
        b.assert_lit(p(2));
        match solve(&b) {
            SatResult::Sat(m) => {
                assert!(check_model(&b, &m));
                assert_eq!(m[&Flag(0)], m[&Flag(1)]);
                assert_eq!(m[&Flag(1)], !m[&Flag(2)]);
                assert!(m[&Flag(2)]);
            }
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }
}
