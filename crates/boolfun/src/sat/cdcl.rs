//! Conflict-driven clause learning for general CNF.
//!
//! Symmetric record concatenation and flag-conditioned conditionals
//! (`when N in x then … else …`) generate clauses outside the Horn
//! fragment, so the paper's classification calls for a generic SAT solver.
//! This is a self-contained CDCL implementation with two-watched-literal
//! propagation, VSIDS-style activities with phase saving, first-UIP clause
//! learning, non-chronological backjumping and Luby restarts.

use std::collections::HashMap;

use crate::clause::Clause;
use crate::cnf::Cnf;
use crate::lit::{Flag, Lit};
use crate::proof::{DerivationStep, Proof, UnsatProof};
use crate::sat::{BudgetStop, Model, SatBudget, SatResult};

/// Decides satisfiability of an arbitrary CNF formula.
pub fn solve(cnf: &Cnf) -> SatResult {
    match solve_budgeted(cnf, &SatBudget::unlimited()) {
        Ok(r) => r,
        Err(stop) => unreachable!("unlimited budget stopped a solve: {stop}"),
    }
}

/// [`solve`] under a [`SatBudget`]: the search loop charges one step
/// per decision and per propagated literal, and stops with
/// [`BudgetStop`] once the budget is exceeded or the cancellation flag
/// is raised. Early stops report no sat/unsat verdict at all, so a
/// caller can degrade to a "timeout" outcome without risking
/// unsoundness.
pub fn solve_budgeted(cnf: &Cnf, budget: &SatBudget) -> Result<SatResult, BudgetStop> {
    let dense = Dense::new(cnf);
    let mut solver = Solver::new(&dense);
    let outcome = solver.run(budget, &[]);
    flush_obs(&solver, outcome.is_err());
    match outcome? {
        Some(assign) => Ok(SatResult::Sat(extract_model(cnf, &dense, &assign))),
        None => Ok(SatResult::Unsat(Vec::new())),
    }
}

/// [`solve_budgeted`] with a [`Proof`] witness. SAT verdicts carry the
/// model; UNSAT verdicts carry the learnt clauses as a reverse-unit-
/// propagation (RUP) derivation ending in `⊥` — each learnt clause is
/// RUP with respect to the input plus the clauses learnt before it, and
/// the final level-0 conflict makes `⊥` itself RUP. The core is the
/// whole input (CDCL formulas here are small and rare — symmetric
/// concatenation and `when` conditionals); the diagnostic path tightens
/// it with [`crate::proof::minimize_core`].
pub(crate) fn solve_budgeted_proved(
    cnf: &Cnf,
    budget: &SatBudget,
) -> Result<(SatResult, Proof), BudgetStop> {
    if let Some(idx) = cnf.clauses().iter().position(|c| c.is_empty()) {
        return Ok((
            SatResult::Unsat(Vec::new()),
            Proof::Unsat(UnsatProof {
                core: vec![idx],
                steps: Vec::new(),
            }),
        ));
    }
    let dense = Dense::new(cnf);
    let mut solver = Solver::new(&dense);
    solver.proof_log = Some(Vec::new());
    let outcome = solver.run(budget, &[]);
    flush_obs(&solver, outcome.is_err());
    match outcome? {
        Some(assign) => {
            let model = extract_model(cnf, &dense, &assign);
            Ok((SatResult::Sat(model.clone()), Proof::Sat(model)))
        }
        None => {
            let learnt = solver.proof_log.take().unwrap_or_default();
            let mut steps: Vec<DerivationStep> = learnt
                .iter()
                .map(|c| DerivationStep::Rup {
                    clause: Clause::new(
                        c.iter()
                            .map(|&l| Lit::new(dense.flags[l.var()], l.is_neg()))
                            .collect(),
                    )
                    .expect("learnt clauses carry no complementary pair"),
                })
                .collect();
            steps.push(DerivationStep::Rup {
                clause: Clause::empty(),
            });
            let core: Vec<usize> = (0..cnf.len()).collect();
            Ok((
                SatResult::Unsat(Vec::new()),
                Proof::Unsat(UnsatProof { core, steps }),
            ))
        }
    }
}

fn extract_model(cnf: &Cnf, dense: &Dense, assign: &[Val]) -> Model {
    let mut model = Model::new();
    for (i, &v) in assign.iter().enumerate() {
        model.insert(dense.flags[i], v == Val::True);
    }
    // Flags mentioned only in dropped tautologies stay default.
    for f in cnf.flags() {
        model.entry(f).or_insert(false);
    }
    model
}

fn flush_obs(solver: &Solver, budget_stopped: bool) {
    if rowpoly_obs::enabled() {
        rowpoly_obs::counter_add("sat.cdcl.solves", 1);
        rowpoly_obs::counter_add("sat.cdcl.decisions", solver.search.decisions);
        rowpoly_obs::counter_add("sat.cdcl.propagations", solver.search.propagations);
        rowpoly_obs::counter_add("sat.cdcl.learned_clauses", solver.search.learned);
        rowpoly_obs::counter_add("sat.cdcl.restarts", solver.search.restarts);
        if budget_stopped {
            rowpoly_obs::counter_add("sat.cdcl.budget_stops", 1);
        }
    }
}

/// Dense variable numbering: maps sparse [`Flag`]s to `0..n`.
struct Dense {
    flags: Vec<Flag>,
    clauses: Vec<Vec<DLit>>,
    has_empty: bool,
}

/// A literal over dense variable indices, encoded `var << 1 | neg`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct DLit(u32);

impl DLit {
    fn new(var: usize, neg: bool) -> DLit {
        DLit((var as u32) << 1 | neg as u32)
    }
    fn var(self) -> usize {
        (self.0 >> 1) as usize
    }
    fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }
    fn negate(self) -> DLit {
        DLit(self.0 ^ 1)
    }
    fn code(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Val {
    True,
    False,
    Undef,
}

impl Dense {
    fn new(cnf: &Cnf) -> Dense {
        let mut map: HashMap<Flag, usize> = HashMap::new();
        let mut flags: Vec<Flag> = Vec::new();
        let mut clauses = Vec::with_capacity(cnf.len());
        let mut has_empty = false;
        for c in cnf.clauses() {
            if c.is_empty() {
                has_empty = true;
                continue;
            }
            let mut dc = Vec::with_capacity(c.len());
            for &l in c.lits() {
                let var = *map.entry(l.flag()).or_insert_with(|| {
                    flags.push(l.flag());
                    flags.len() - 1
                });
                dc.push(DLit::new(var, l.is_neg()));
            }
            clauses.push(dc);
        }
        Dense {
            flags,
            clauses,
            has_empty,
        }
    }
}

const NO_REASON: u32 = u32::MAX;

/// Search statistics accumulated locally (no locks on the hot path) and
/// flushed to the observability layer once per [`solve`] call.
#[derive(Clone, Copy, Default)]
struct SearchStats {
    decisions: u64,
    propagations: u64,
    learned: u64,
    restarts: u64,
}

struct Solver {
    nvars: usize,
    /// Clause database; learnt clauses appended after the originals.
    clauses: Vec<Vec<DLit>>,
    /// watches[lit.code()] = clause indices watching `lit`.
    watches: Vec<Vec<u32>>,
    assign: Vec<Val>,
    /// Saved phase for decision heuristics.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<DLit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    unsat: bool,
    search: SearchStats,
    /// Whether a variable may be picked by [`Solver::decide`]. All real
    /// variables are; the selector variables of [`Incremental`] clauses
    /// are not — they only enter the trail as assumptions or by
    /// propagation, so a retracted clause's selector stays free.
    decidable: Vec<bool>,
    /// Set by [`Solver::run`] when a solve under assumptions failed
    /// because an assumption was already false: the subset of assumption
    /// literals (plus the failed one) whose conjunction is inconsistent
    /// with the clause database (MiniSat's `analyzeFinal`).
    failed_assumps: Option<Vec<DLit>>,
    /// When `Some`, every learnt clause is appended in learning order —
    /// the raw material for a RUP derivation (see
    /// [`solve_budgeted_proved`]). `None` on the default path, so proof
    /// recording costs nothing unless asked for.
    proof_log: Option<Vec<Vec<DLit>>>,
}

impl Solver {
    fn new(dense: &Dense) -> Solver {
        let nvars = dense.flags.len();
        let mut s = Solver {
            nvars,
            clauses: Vec::with_capacity(dense.clauses.len()),
            watches: vec![Vec::new(); 2 * nvars],
            assign: vec![Val::Undef; nvars],
            phase: vec![false; nvars],
            level: vec![0; nvars],
            reason: vec![NO_REASON; nvars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: vec![0.0; nvars],
            act_inc: 1.0,
            unsat: dense.has_empty,
            search: SearchStats::default(),
            decidable: vec![true; nvars],
            failed_assumps: None,
            proof_log: None,
        };
        for c in &dense.clauses {
            s.add_clause(c.clone());
            if s.unsat {
                break;
            }
        }
        s
    }

    /// A solver over zero variables and clauses, grown incrementally via
    /// [`Solver::new_var`] by the [`Incremental`] wrapper.
    fn empty() -> Solver {
        Solver {
            nvars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            unsat: false,
            search: SearchStats::default(),
            decidable: Vec::new(),
            failed_assumps: None,
            proof_log: None,
        }
    }

    fn new_var(&mut self, decidable: bool) -> usize {
        let v = self.nvars;
        self.nvars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(Val::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.decidable.push(decidable);
        v
    }

    fn value(&self, l: DLit) -> Val {
        match self.assign[l.var()] {
            Val::Undef => Val::Undef,
            Val::True => {
                if l.is_neg() {
                    Val::False
                } else {
                    Val::True
                }
            }
            Val::False => {
                if l.is_neg() {
                    Val::True
                } else {
                    Val::False
                }
            }
        }
    }

    fn add_clause(&mut self, c: Vec<DLit>) {
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], NO_REASON) {
                    self.unsat = true;
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[c[0].negate().code()].push(ci);
                self.watches[c[1].negate().code()].push(ci);
                self.clauses.push(c);
            }
        }
    }

    /// Assigns `l` true with the given reason. Returns false on conflict
    /// with an existing assignment.
    fn enqueue(&mut self, l: DLit, reason: u32) -> bool {
        match self.value(l) {
            Val::True => true,
            Val::False => false,
            Val::Undef => {
                self.assign[l.var()] = if l.is_neg() { Val::False } else { Val::True };
                self.phase[l.var()] = !l.is_neg();
                self.level[l.var()] = self.trail_lim.len() as u32;
                self.reason[l.var()] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            self.search.propagations += 1;
            // Clauses watching ¬l (i.e. registered under watches[l.code()]
            // with our convention: we store under negate().code() at add
            // time, so the list keyed by l.code() holds clauses where a
            // watched literal just became false).
            let watch_list = std::mem::take(&mut self.watches[l.code()]);
            let mut keep = Vec::with_capacity(watch_list.len());
            let mut conflict: Option<u32> = None;
            for (pos, &ci) in watch_list.iter().enumerate() {
                let false_lit = l.negate();
                {
                    // Normalise: watched literals are clause[0], clause[1].
                    let clause = &mut self.clauses[ci as usize];
                    if clause[0] == false_lit {
                        clause.swap(0, 1);
                    }
                    debug_assert_eq!(clause[1], false_lit);
                }
                // Clause already satisfied by the other watch?
                let first = self.clauses[ci as usize][0];
                if self.value(first) == Val::True {
                    keep.push(ci);
                    continue;
                }
                // Find a new literal to watch.
                let len = self.clauses[ci as usize].len();
                let mut moved = false;
                for k in 2..len {
                    let cand = self.clauses[ci as usize][k];
                    if self.value(cand) != Val::False {
                        self.clauses[ci as usize].swap(1, k);
                        self.watches[cand.negate().code()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // No new watch: clause is unit (or conflicting) on `first`.
                keep.push(ci);
                if !self.enqueue(first, ci) {
                    conflict = Some(ci);
                    keep.extend_from_slice(&watch_list[pos + 1..]);
                    break;
                }
            }
            drop(watch_list);
            let slot = &mut self.watches[l.code()];
            // Clauses added during propagation (new watches) must survive.
            keep.append(slot);
            *slot = keep;
            if conflict.is_some() {
                self.prop_head = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.act_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    ///
    /// Relies on the invariant that a reason clause keeps its propagated
    /// literal at position 0: propagation enqueues `clause[0]`, learnt
    /// clauses are stored with the asserting literal first, and the
    /// watched-literal bookkeeping never moves a *true* literal out of
    /// position 0 while its variable is assigned.
    fn analyze(&mut self, conflict: u32) -> (Vec<DLit>, u32) {
        let current_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<DLit> = Vec::new();
        let mut seen = vec![false; self.nvars];
        let mut open_paths = 0usize;
        let mut trail_pos = self.trail.len();
        let mut clause_idx = conflict;
        let mut pivot: Option<DLit> = None;

        loop {
            // Walk the clause's literals; skip the propagated literal of a
            // reason clause (position 0) since it is the pivot itself.
            let start = pivot.is_some() as usize;
            for j in start..self.clauses[clause_idx as usize].len() {
                let q = self.clauses[clause_idx as usize][j];
                let v = q.var();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= current_level {
                        open_paths += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next marked literal on the trail, scanning backwards.
            loop {
                trail_pos -= 1;
                if seen[self.trail[trail_pos].var()] {
                    break;
                }
            }
            let p = self.trail[trail_pos];
            seen[p.var()] = false;
            open_paths -= 1;
            pivot = Some(p);
            if open_paths == 0 {
                break;
            }
            clause_idx = self.reason[p.var()];
            debug_assert_ne!(clause_idx, NO_REASON, "non-UIP literal has a reason");
        }

        let uip = pivot.expect("conflict analysis found a UIP").negate();
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(uip);
        clause.extend(learnt);
        // Backjump level: highest level among the non-asserting literals.
        let back = clause[1..]
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        // Place a literal of the backjump level second (watch invariant).
        if clause.len() > 1 {
            let k = 1 + clause[1..]
                .iter()
                .position(|l| self.level[l.var()] == back)
                .expect("literal at backjump level");
            clause.swap(1, k);
        }
        (clause, back)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("level to cancel");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail entry");
                self.assign[l.var()] = Val::Undef;
                self.reason[l.var()] = NO_REASON;
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        self.prop_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<DLit> {
        let mut best: Option<usize> = None;
        for v in 0..self.nvars {
            if self.assign[v] == Val::Undef
                && self.decidable[v]
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| DLit::new(v, !self.phase[v]))
    }

    /// Steps spent so far: decisions plus propagated literals.
    fn steps(&self) -> u64 {
        self.search.decisions + self.search.propagations
    }

    /// A jointly-inconsistent subset of the planted assumptions, given
    /// that assumption `p` is false under the current trail (MiniSat's
    /// `analyzeFinal`): walk the trail backwards from the top, expanding
    /// reason clauses; decisions reached this way are assumptions (the
    /// only decisions below the assumption levels) and join the core.
    fn analyze_final(&mut self, p: DLit) -> Vec<DLit> {
        let mut out = vec![p];
        if self.trail_lim.is_empty() {
            return out;
        }
        let mut seen = vec![false; self.nvars];
        seen[p.var()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i].var();
            if !seen[x] {
                continue;
            }
            let r = self.reason[x];
            if r == NO_REASON {
                if self.level[x] > 0 {
                    out.push(self.trail[i]);
                }
            } else {
                for &q in &self.clauses[r as usize][1..] {
                    if self.level[q.var()] > 0 {
                        seen[q.var()] = true;
                    }
                }
            }
            seen[x] = false;
        }
        out
    }

    fn run(
        &mut self,
        budget: &SatBudget,
        assumps: &[DLit],
    ) -> Result<Option<Vec<Val>>, BudgetStop> {
        self.failed_assumps = None;
        if self.unsat {
            return Ok(None);
        }
        debug_assert!(self.trail_lim.is_empty(), "run starts at decision level 0");
        let base_steps = self.steps();
        if self.propagate().is_some() {
            self.unsat = true;
            return Ok(None);
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_count = 0u32;
        loop {
            if let Some(max) = budget.max_steps {
                if self.steps() - base_steps > max {
                    return Err(BudgetStop::Steps(self.steps() - base_steps));
                }
            }
            if budget.cancelled() {
                return Err(BudgetStop::Cancelled);
            }
            if let Some(conflict) = self.propagate() {
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return Ok(None);
                }
                conflicts_since_restart += 1;
                self.search.learned += 1;
                let (clause, back) = self.analyze(conflict);
                if let Some(log) = &mut self.proof_log {
                    log.push(clause.clone());
                }
                self.cancel_until(back);
                self.act_inc /= 0.95;
                let asserting = clause[0];
                if clause.len() == 1 {
                    self.cancel_until(0);
                    if !self.enqueue(asserting, NO_REASON) {
                        self.unsat = true;
                        return Ok(None);
                    }
                } else {
                    let ci = self.clauses.len() as u32;
                    self.watches[clause[0].negate().code()].push(ci);
                    self.watches[clause[1].negate().code()].push(ci);
                    self.clauses.push(clause);
                    if !self.enqueue(asserting, ci) {
                        self.unsat = true;
                        return Ok(None);
                    }
                }
            } else if self.trail_lim.len() < assumps.len() {
                // Plant the next assumption as its own decision level
                // (an already-true assumption still claims a level so
                // `trail_lim.len()` tracks how many have been placed —
                // restarts cancel to 0 and replant automatically).
                let a = assumps[self.trail_lim.len()];
                match self.value(a) {
                    Val::True => self.trail_lim.push(self.trail.len()),
                    Val::False => {
                        self.failed_assumps = Some(self.analyze_final(a));
                        self.cancel_until(0);
                        return Ok(None);
                    }
                    Val::Undef => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(a, NO_REASON);
                        debug_assert!(ok, "unassigned assumption cannot conflict");
                    }
                }
            } else if conflicts_since_restart >= 64 * luby(restart_count) {
                conflicts_since_restart = 0;
                restart_count += 1;
                self.search.restarts += 1;
                self.cancel_until(0);
            } else {
                match self.decide() {
                    None => return Ok(Some(self.assign.clone())),
                    Some(d) => {
                        self.search.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(d, NO_REASON);
                        debug_assert!(ok, "decision on unassigned var cannot conflict");
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence 1,1,2,1,1,2,4,…
fn luby(i: u32) -> u64 {
    let mut k = 1u32;
    while (1u64 << k) - 1 < (i as u64) + 1 {
        k += 1;
    }
    let mut i = i as u64;
    let mut kk = k;
    loop {
        if (1u64 << kk) - 1 == i + 1 {
            return 1u64 << (kk - 1);
        }
        kk -= 1;
        if i + 1 >= 1u64 << kk {
            i -= (1u64 << kk) - 1;
        }
    }
}

/// Outcome of an [`Incremental`] solve.
pub(crate) enum IncVerdict {
    Sat(Model),
    /// Unsatisfiable under the active assumptions. Carries the session
    /// slot ids of a jointly-inconsistent subset of the active clauses
    /// (the failed-assumption core), or every active slot when the
    /// conflict was independent of the assumptions.
    Unsat(Vec<u32>),
}

/// Persistent CDCL state for [`crate::sat::session::Session`].
///
/// Each clause `C` is added once, guarded by a fresh *selector*
/// variable `s`: the stored clause is `C ∨ ¬s`. A solve assumes `s`
/// true for exactly the active clauses, so retraction is free (stop
/// assuming `s`) and the learned-clause database, VSIDS activities and
/// saved phases all survive across solves. Selectors are never decision
/// candidates, so a retracted clause's selector stays unassigned and
/// its guard keeps the clause inert.
///
/// Because the guarded database is satisfiable outright (set every
/// selector false), nothing is ever forced at decision level 0: failed-
/// assumption cores from [`Solver::analyze_final`] therefore name a
/// genuinely inconsistent subset of the active clauses, and clause
/// insertion never sees a falsified watch.
pub(crate) struct Incremental {
    s: Solver,
    var_of: HashMap<Flag, usize>,
    /// Solver var → source flag; `None` for selector variables.
    vflags: Vec<Option<Flag>>,
    /// Fed clauses in feed order: (session slot id, selector var).
    fed: Vec<(u32, usize)>,
}

impl Incremental {
    pub(crate) fn new() -> Incremental {
        Incremental {
            s: Solver::empty(),
            var_of: HashMap::new(),
            vflags: Vec::new(),
            fed: Vec::new(),
        }
    }

    /// Learnt clauses currently retained in the database.
    pub(crate) fn learnt_len(&self) -> usize {
        self.s.clauses.len() - self.fed.len()
    }

    /// Adds a clause under a fresh selector. `slot` is the session's id
    /// for it, echoed back in [`IncVerdict::Unsat`] cores.
    pub(crate) fn add(&mut self, lits: &[Lit], slot: u32) {
        self.s.cancel_until(0);
        let sel = self.s.new_var(false);
        self.vflags.push(None);
        let mut c: Vec<DLit> = Vec::with_capacity(lits.len() + 1);
        for &l in lits {
            let var = match self.var_of.get(&l.flag()) {
                Some(&v) => v,
                None => {
                    let v = self.s.new_var(true);
                    self.vflags.push(Some(l.flag()));
                    self.var_of.insert(l.flag(), v);
                    v
                }
            };
            c.push(DLit::new(var, l.is_neg()));
        }
        c.push(DLit::new(sel, true));
        // Watch two non-false literals; ¬sel is always unassigned so at
        // least one exists even if level 0 ever pins real variables.
        let mut w = 0;
        for k in 0..c.len() {
            if self.s.value(c[k]) != Val::False {
                c.swap(w, k);
                w += 1;
                if w == 2 {
                    break;
                }
            }
        }
        let ci = self.s.clauses.len() as u32;
        if w >= 2 {
            self.s.watches[c[0].negate().code()].push(ci);
            self.s.watches[c[1].negate().code()].push(ci);
            self.s.clauses.push(c);
        } else {
            // All but one literal false at level 0: unit on c[0].
            let unit = c[0];
            self.s.clauses.push(c);
            if !self.s.enqueue(unit, ci) {
                self.s.unsat = true;
            }
        }
        self.fed.push((slot, sel));
    }

    /// Solves the conjunction of the clauses whose slot is marked in
    /// `active` (indexed by slot id), reusing all prior solver state.
    pub(crate) fn solve(
        &mut self,
        active: &[bool],
        budget: &SatBudget,
    ) -> Result<IncVerdict, BudgetStop> {
        self.s.cancel_until(0);
        let assumps: Vec<DLit> = self
            .fed
            .iter()
            .filter(|&&(slot, _)| active[slot as usize])
            .map(|&(_, sel)| DLit::new(sel, false))
            .collect();
        let base = self.s.search;
        let outcome = self.s.run(budget, &assumps);
        self.flush_incr_obs(&base, outcome.is_err());
        match outcome? {
            Some(assign) => {
                let mut model = Model::new();
                for (v, flag) in self.vflags.iter().enumerate() {
                    if let Some(f) = flag {
                        model.insert(*f, assign[v] == Val::True);
                    }
                }
                Ok(IncVerdict::Sat(model))
            }
            None => {
                let slots = match self.s.failed_assumps.take() {
                    Some(failed) => {
                        let sel_slot: HashMap<usize, u32> =
                            self.fed.iter().map(|&(slot, sel)| (sel, slot)).collect();
                        let mut out: Vec<u32> = failed
                            .iter()
                            .filter_map(|l| sel_slot.get(&l.var()).copied())
                            .collect();
                        out.sort_unstable();
                        out.dedup();
                        out
                    }
                    None => self
                        .fed
                        .iter()
                        .map(|&(slot, _)| slot)
                        .filter(|&slot| active[slot as usize])
                        .collect(),
                };
                Ok(IncVerdict::Unsat(slots))
            }
        }
    }

    fn flush_incr_obs(&self, base: &SearchStats, budget_stopped: bool) {
        if rowpoly_obs::enabled() {
            let d = &self.s.search;
            rowpoly_obs::counter_add("sat.cdcl.solves", 1);
            rowpoly_obs::counter_add("sat.cdcl.decisions", d.decisions - base.decisions);
            rowpoly_obs::counter_add("sat.cdcl.propagations", d.propagations - base.propagations);
            rowpoly_obs::counter_add("sat.cdcl.learned_clauses", d.learned - base.learned);
            rowpoly_obs::counter_add("sat.cdcl.restarts", d.restarts - base.restarts);
            if budget_stopped {
                rowpoly_obs::counter_add("sat.cdcl.budget_stops", 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Lit;
    use crate::sat::check_model;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn simple_sat_and_unsat() {
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1)]);
        b.add_lits(vec![n(0), p(1)]);
        b.add_lits(vec![p(0), n(1)]);
        match solve(&b) {
            SatResult::Sat(m) => assert!(check_model(&b, &m)),
            SatResult::Unsat(_) => panic!("should be sat"),
        }
        b.add_lits(vec![n(0), n(1)]);
        assert!(!solve(&b).is_sat());
    }

    /// Pigeonhole PHP(3,2): 3 pigeons into 2 holes is unsat and requires
    /// real search (non-Horn, non-2-SAT after mixing).
    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // var p*2 + h: pigeon p in hole h.
        let v = |pigeon: u32, hole: u32| Flag(pigeon * 2 + hole);
        let mut b = Cnf::top();
        for pigeon in 0..3 {
            b.add_lits(vec![Lit::pos(v(pigeon, 0)), Lit::pos(v(pigeon, 1))]);
        }
        for hole in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    b.add_lits(vec![Lit::neg(v(p1, hole)), Lit::neg(v(p2, hole))]);
                }
            }
        }
        assert!(!solve(&b).is_sat());
    }

    #[test]
    fn pigeonhole_3_into_3_is_sat() {
        let v = |pigeon: u32, hole: u32| Flag(pigeon * 3 + hole);
        let mut b = Cnf::top();
        for pigeon in 0..3 {
            b.add_lits(vec![
                Lit::pos(v(pigeon, 0)),
                Lit::pos(v(pigeon, 1)),
                Lit::pos(v(pigeon, 2)),
            ]);
        }
        for hole in 0..3 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    b.add_lits(vec![Lit::neg(v(p1, hole)), Lit::neg(v(p2, hole))]);
                }
            }
        }
        match solve(&b) {
            SatResult::Sat(m) => assert!(check_model(&b, &m)),
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }

    /// Random 3-SAT near the phase transition, cross-checked against brute
    /// force.
    #[test]
    fn random_3sat_agrees_with_brute_force() {
        let mut state: u64 = 42;
        let mut rand = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _case in 0..120 {
            let nvars = 4 + rand(5) as u32; // 4..8 vars
            let nclauses = (nvars as f64 * 4.2) as usize;
            let mut b = Cnf::top();
            for _ in 0..nclauses {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let f = Flag(rand(nvars as u64) as u32);
                    lits.push(if rand(2) == 0 {
                        Lit::pos(f)
                    } else {
                        Lit::neg(f)
                    });
                }
                b.add_lits(lits);
            }
            let universe: Vec<Flag> = (0..nvars).map(Flag).collect();
            let brute = !b.models(&universe).is_empty();
            let got = solve(&b);
            assert_eq!(got.is_sat(), brute, "cdcl disagrees on {b:?}");
            if let SatResult::Sat(m) = got {
                assert!(check_model(&b, &m));
            }
        }
    }

    /// Pigeonhole PHP(3,2) needs real search, so a tiny step budget
    /// stops it; an ample budget reaches the same verdict as the
    /// unbudgeted solver.
    #[test]
    fn budget_stops_search_and_ample_budget_agrees() {
        let v = |pigeon: u32, hole: u32| Flag(pigeon * 2 + hole);
        let mut b = Cnf::top();
        for pigeon in 0..3 {
            b.add_lits(vec![Lit::pos(v(pigeon, 0)), Lit::pos(v(pigeon, 1))]);
        }
        for hole in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    b.add_lits(vec![Lit::neg(v(p1, hole)), Lit::neg(v(p2, hole))]);
                }
            }
        }
        match solve_budgeted(&b, &SatBudget::steps(0)) {
            Err(BudgetStop::Steps(n)) => assert!(n > 0, "stop reports steps spent"),
            other => panic!("budget 0 should stop the search, got {other:?}"),
        }
        match solve_budgeted(&b, &SatBudget::steps(1_000_000)) {
            Ok(r) => assert!(!r.is_sat(), "PHP(3,2) is unsat"),
            Err(stop) => panic!("ample budget stopped: {stop}"),
        }
    }

    #[test]
    fn cancellation_flag_stops_search() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1), p(2)]);
        b.add_lits(vec![n(0), n(1)]);
        let cancel = Arc::new(AtomicBool::new(true));
        let budget = SatBudget {
            max_steps: None,
            cancel: Some(cancel),
        };
        assert_eq!(solve_budgeted(&b, &budget), Err(BudgetStop::Cancelled));
    }

    #[test]
    fn unit_clauses_only() {
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.assert_lit(n(1));
        match solve(&b) {
            SatResult::Sat(m) => {
                assert!(m[&Flag(0)]);
                assert!(!m[&Flag(1)]);
            }
            SatResult::Unsat(_) => panic!("should be sat"),
        }
    }
}
