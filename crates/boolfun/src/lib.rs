//! Boolean function domain for flow-sensitive record-field inference.
//!
//! This crate implements the Boolean-function half of the reduced cardinal
//! power domain `PR ⋉ B` of Simon, *Optimal Inference of Fields in
//! Row-Polymorphic Records* (PLDI 2014). A Boolean function β over
//! propositional *flag* variables describes which record fields exist; the
//! type-term half lives in `rowpoly-types`.
//!
//! The crate provides:
//!
//! * [`Flag`], [`Lit`], [`Clause`], [`Cnf`] — CNF-represented Boolean
//!   functions with the operations the inference rules need: conjunction,
//!   sequence (bi-)implications, assertion of literals.
//! * [`Cnf::expand`] — the *expansion* operation of Definition 2, which
//!   replicates the flow of a type variable's flags onto the flags of the
//!   type it is substituted with (with contra-variant polarity).
//! * [`Cnf::project_out`] — existential quantifier elimination by
//!   resolution, used to drop *stale* flags (Section 6 of the paper shows
//!   this is required for the correctness of expansion). Runs on an
//!   occurrence-indexed clause database with a binary-implication fast
//!   path and inline, signature-filtered subsumption; each call reports
//!   its work as a [`ProjectStats`].
//! * [`sat`] — three from-scratch satisfiability solvers matching the
//!   complexity classes the paper identifies: a linear-time 2-SAT solver
//!   (select/update generate only two-variable Horn clauses), a linear-time
//!   Horn-SAT solver (asymmetric record concatenation), and a CDCL solver
//!   for general CNF (symmetric concatenation, `when`-conditionals).
//! * [`classify`] — classifies a formula into the cheapest applicable
//!   solver class.
//!
//! # Example
//!
//! ```
//! use rowpoly_boolfun::{Cnf, FlagAlloc, Lit};
//!
//! let mut flags = FlagAlloc::new();
//! let (fa, fb) = (flags.fresh(), flags.fresh());
//! let mut beta = Cnf::top();
//! beta.imply(Lit::pos(fa), Lit::pos(fb)); // fa -> fb
//! beta.assert_lit(Lit::pos(fa));
//! assert!(beta.is_sat());
//! beta.assert_lit(Lit::neg(fb));
//! assert!(!beta.is_sat());
//! ```

mod classify;
mod clause;
mod cnf;
mod db;
mod expand;
mod lit;
mod project;
pub mod proof;
pub mod sat;

pub use classify::{classify, SatClass};
pub use clause::Clause;
pub use cnf::Cnf;
pub use db::ProjectStats;
pub use lit::{Flag, FlagAlloc, FlagSet, Lit};
pub use proof::{
    minimize_core, ClauseRef, DerivationStep, Proof, ProofChecker, ProofError, UnsatProof,
};
pub use sat::session::{Session, SyncOutcome};
pub use sat::{
    check_proofs_enabled, set_check_proofs, solve, solve_budgeted, solve_budgeted_proved,
    solve_proved, BudgetStop, SatBudget, SatResult,
};
