//! Machine-checkable verdict witnesses: models, resolution derivations,
//! and unsat cores.
//!
//! Every satisfiability verdict the crate produces can carry a [`Proof`]:
//! a SAT answer ships the model that was found, an UNSAT answer ships an
//! [`UnsatProof`] — the subset of input clauses actually used (the *unsat
//! core*) plus a step-by-step derivation of the empty clause from them.
//! [`ProofChecker`] replays a proof against the original formula with no
//! knowledge of any solver's internals, so a verdict is trusted exactly
//! when its evidence checks out (the same self-auditing discipline DRAT
//! checkers bring to industrial SAT solving).
//!
//! Two derivation step shapes cover the three solver families:
//!
//! * [`DerivationStep::Resolve`] — an explicit binary resolution. The
//!   2-SAT solver's implication paths and the Horn solver's unit
//!   propagations both translate directly into chains of resolutions,
//!   so their proofs replay without any search.
//! * [`DerivationStep::Rup`] — a *reverse unit propagation* step, the
//!   clause-learning-friendly format: the step's clause is valid if
//!   asserting its negation and unit-propagating over the core plus the
//!   previously derived clauses yields a conflict. CDCL learnt clauses
//!   are RUP by construction.
//!
//! A proof is accepted when its final derived clause is the empty clause
//! `⊥` (or the core itself contains `⊥`). Cores do not have to be
//! minimal to be *valid*; [`minimize_core`] shrinks one by deletion
//! before it reaches user-facing diagnostics.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::clause::Clause;
use crate::cnf::Cnf;
use crate::lit::{Flag, Lit};
use crate::sat::{self, Model};

/// Reference to a clause inside a derivation: either one of the input
/// formula's clauses (by index into [`Cnf::clauses`]) or a clause derived
/// by an earlier step (by step index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClauseRef {
    /// `Input(i)` is `cnf.clauses()[i]`; it must be listed in the core.
    Input(usize),
    /// `Derived(i)` is the clause established by derivation step `i`.
    Derived(usize),
}

/// One step of an UNSAT derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DerivationStep {
    /// Binary resolution: `left` contains `pivot`, `right` contains
    /// `¬pivot`, and `resolvent` is (subsumed by) their resolvent.
    Resolve {
        left: ClauseRef,
        right: ClauseRef,
        pivot: Lit,
        resolvent: Clause,
    },
    /// Reverse unit propagation: asserting the negation of `clause` and
    /// unit-propagating over the core and all previously derived clauses
    /// reaches a conflict.
    Rup { clause: Clause },
}

impl DerivationStep {
    /// The clause this step establishes.
    pub fn clause(&self) -> &Clause {
        match self {
            DerivationStep::Resolve { resolvent, .. } => resolvent,
            DerivationStep::Rup { clause } => clause,
        }
    }
}

/// A refutation: an unsat core plus a derivation of `⊥` from it.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct UnsatProof {
    /// Indices of the input clauses the derivation draws from.
    pub core: Vec<usize>,
    /// Derivation of the empty clause; empty iff the core itself
    /// contains `⊥`.
    pub steps: Vec<DerivationStep>,
}

impl UnsatProof {
    /// Number of input clauses cited by the core.
    pub fn core_size(&self) -> usize {
        self.core.len()
    }

    /// Number of derivation steps.
    pub fn derivation_len(&self) -> usize {
        self.steps.len()
    }

    /// The flags mentioned by the core clauses of `cnf`.
    pub fn core_flags(&self, cnf: &Cnf) -> Vec<Flag> {
        let mut flags: Vec<Flag> = self
            .core
            .iter()
            .filter_map(|&i| cnf.clauses().get(i))
            .flat_map(|c| c.lits().iter().map(|l| l.flag()))
            .collect();
        flags.sort_unstable();
        flags.dedup();
        flags
    }
}

/// Evidence for a satisfiability verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Proof {
    /// Witness for SAT: a model over the mentioned flags (flags absent
    /// from the map are `false`).
    Sat(Model),
    /// Witness for UNSAT: a core and a derivation of `⊥`.
    Unsat(UnsatProof),
}

impl Proof {
    /// Whether this proof witnesses satisfiability.
    pub fn is_sat_witness(&self) -> bool {
        matches!(self, Proof::Sat(_))
    }

    /// The refutation, if this is an UNSAT proof.
    pub fn unsat(&self) -> Option<&UnsatProof> {
        match self {
            Proof::Sat(_) => None,
            Proof::Unsat(p) => Some(p),
        }
    }
}

/// Why a proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// A SAT model leaves input clause `clause` unsatisfied.
    FalsifiedClause { clause: usize },
    /// A core index is out of bounds for the formula.
    BadCoreIndex { index: usize },
    /// A step references a clause that does not exist (input outside the
    /// core or the formula, or a derived index at or beyond the step).
    BadClauseRef { step: usize },
    /// A resolution step's pivot does not occur with the required
    /// polarities, or the resolvent is a tautology.
    BadResolution { step: usize },
    /// A resolution step records a resolvent the replay does not confirm.
    WrongResolvent { step: usize },
    /// A RUP step's clause is not confirmed by unit propagation.
    RupNotConfirmed { step: usize },
    /// The derivation never reaches the empty clause.
    NoEmptyClause,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::FalsifiedClause { clause } => {
                write!(f, "model falsifies input clause #{clause}")
            }
            ProofError::BadCoreIndex { index } => {
                write!(f, "core cites input clause #{index}, which does not exist")
            }
            ProofError::BadClauseRef { step } => {
                write!(f, "derivation step {step} references an unknown clause")
            }
            ProofError::BadResolution { step } => {
                write!(f, "derivation step {step} is not a valid resolution")
            }
            ProofError::WrongResolvent { step } => {
                write!(
                    f,
                    "derivation step {step} records a resolvent the replay refutes"
                )
            }
            ProofError::RupNotConfirmed { step } => {
                write!(
                    f,
                    "derivation step {step} is not confirmed by unit propagation"
                )
            }
            ProofError::NoEmptyClause => {
                write!(f, "derivation never derives the empty clause")
            }
        }
    }
}

impl std::error::Error for ProofError {}

/// Validates proofs against the formulas they claim to witness.
///
/// The checker is deliberately independent of the solvers: it knows only
/// [`Clause::resolve`], clause evaluation, and unit propagation. Its
/// invariants are:
///
/// 1. a SAT proof's model satisfies every input clause (absent flags
///    read as `false`, matching every solver's model convention);
/// 2. an UNSAT proof's core cites only existing input clauses, every
///    `Input` reference in a step is cited by the core, and every
///    `Derived` reference points strictly backwards;
/// 3. each `Resolve` step replays: the recomputed resolvent subsumes the
///    recorded one (recording a weakened resolvent is sound);
/// 4. each `Rup` step confirms: negating its clause and unit-propagating
///    over core + earlier derivations conflicts;
/// 5. the derivation reaches `⊥` (trivially so if the core contains an
///    empty input clause).
pub struct ProofChecker;

impl ProofChecker {
    /// Checks `proof` against `cnf`.
    pub fn check(cnf: &Cnf, proof: &Proof) -> Result<(), ProofError> {
        match proof {
            Proof::Sat(model) => Self::check_model(cnf, model),
            Proof::Unsat(p) => Self::check_unsat(cnf, p),
        }
    }

    fn check_model(cnf: &Cnf, model: &Model) -> Result<(), ProofError> {
        for (i, c) in cnf.clauses().iter().enumerate() {
            let sat = c
                .lits()
                .iter()
                .any(|l| model.get(&l.flag()).copied().unwrap_or(false) != l.is_neg());
            if !sat {
                return Err(ProofError::FalsifiedClause { clause: i });
            }
        }
        Ok(())
    }

    fn check_unsat(cnf: &Cnf, proof: &UnsatProof) -> Result<(), ProofError> {
        let clauses = cnf.clauses();
        let mut core_set: HashSet<usize> = HashSet::with_capacity(proof.core.len());
        for &i in &proof.core {
            if i >= clauses.len() {
                return Err(ProofError::BadCoreIndex { index: i });
            }
            core_set.insert(i);
        }
        // A core containing ⊥ refutes the formula with no derivation.
        if proof.core.iter().any(|&i| clauses[i].is_empty()) {
            return Ok(());
        }
        let mut derived: Vec<&Clause> = Vec::with_capacity(proof.steps.len());
        let mut reached_empty = false;
        for (si, step) in proof.steps.iter().enumerate() {
            match step {
                DerivationStep::Resolve {
                    left,
                    right,
                    pivot,
                    resolvent,
                } => {
                    let lc = Self::deref(clauses, &core_set, &derived, *left)
                        .ok_or(ProofError::BadClauseRef { step: si })?;
                    let rc = Self::deref(clauses, &core_set, &derived, *right)
                        .ok_or(ProofError::BadClauseRef { step: si })?;
                    if !lc.contains(*pivot) || !rc.contains(pivot.negate()) {
                        return Err(ProofError::BadResolution { step: si });
                    }
                    let computed = lc
                        .resolve(rc, *pivot)
                        .ok_or(ProofError::BadResolution { step: si })?;
                    if !computed.subsumes(resolvent) {
                        return Err(ProofError::WrongResolvent { step: si });
                    }
                }
                DerivationStep::Rup { clause } => {
                    let pool: Vec<&Clause> = core_set
                        .iter()
                        .map(|&i| &clauses[i])
                        .chain(derived.iter().copied())
                        .collect();
                    if !rup_confirms(&pool, clause) {
                        return Err(ProofError::RupNotConfirmed { step: si });
                    }
                }
            }
            let c = step.clause();
            if c.is_empty() {
                reached_empty = true;
            }
            derived.push(c);
        }
        if reached_empty {
            Ok(())
        } else {
            Err(ProofError::NoEmptyClause)
        }
    }

    fn deref<'a>(
        clauses: &'a [Clause],
        core: &HashSet<usize>,
        derived: &[&'a Clause],
        r: ClauseRef,
    ) -> Option<&'a Clause> {
        match r {
            ClauseRef::Input(i) => {
                if core.contains(&i) {
                    clauses.get(i)
                } else {
                    None
                }
            }
            ClauseRef::Derived(i) => derived.get(i).copied(),
        }
    }
}

/// Reverse-unit-propagation check: asserting `¬target` and propagating
/// units over `pool` must reach a conflict. Quadratic-per-round scan —
/// proofs in this pipeline are small, and the checker optimises for
/// obviousness over speed.
fn rup_confirms(pool: &[&Clause], target: &Clause) -> bool {
    // assign[f] = forced truth value of flag f.
    let mut assign: HashMap<Flag, bool> = HashMap::new();
    for &l in target.lits() {
        // ¬target: every literal of the target is false.
        assign.insert(l.flag(), l.is_neg());
    }
    loop {
        let mut progress = false;
        for c in pool {
            let mut unassigned: Option<Lit> = None;
            let mut satisfied = false;
            let mut open = 0usize;
            for &l in c.lits() {
                match assign.get(&l.flag()) {
                    Some(&v) => {
                        if v != l.is_neg() {
                            satisfied = true;
                            break;
                        }
                    }
                    None => {
                        open += 1;
                        unassigned = Some(l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match (open, unassigned) {
                (0, _) => return true, // all literals false: conflict
                (1, Some(l)) => {
                    assign.insert(l.flag(), !l.is_neg());
                    progress = true;
                }
                _ => {}
            }
        }
        if !progress {
            return false;
        }
    }
}

/// Deletion-based core minimization: drops each cited clause in turn and
/// keeps the deletion when the rest is still unsatisfiable. The result
/// is a *minimal* core (no single clause can be removed), though not
/// necessarily a minimum one. Each trial re-solves the candidate subset
/// with the class-dispatched solver, so minimization is meant for the
/// diagnostic path, not for every verdict.
pub fn minimize_core(cnf: &Cnf, core: &[usize]) -> Vec<usize> {
    let clauses = cnf.clauses();
    let mut kept: Vec<usize> = core
        .iter()
        .copied()
        .filter(|&i| i < clauses.len())
        .collect();
    let mut solves = 0u64;
    let mut dropped = 0u64;
    let mut i = 0;
    while i < kept.len() {
        let candidate = Cnf::from_clauses(
            kept.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &ci)| clauses[ci].clone()),
        );
        solves += 1;
        if candidate.is_sat() {
            i += 1;
        } else {
            kept.remove(i);
            dropped += 1;
        }
    }
    if rowpoly_obs::enabled() {
        rowpoly_obs::counter_add("proof.minimize.calls", 1);
        rowpoly_obs::counter_add("proof.minimize.solves", solves);
        rowpoly_obs::counter_add("proof.minimize.dropped", dropped);
        rowpoly_obs::hist_record("proof.minimized_core_size", kept.len() as u64);
    }
    kept
}

/// Convenience: solve with a proof, check the proof, and return both.
/// Panics on a bogus verdict — the backing assertion for
/// `ROWPOLY_CHECK_PROOFS=1`.
pub fn solve_checked(cnf: &Cnf) -> (sat::SatResult, Proof) {
    let (res, proof) = sat::solve_proved(cnf);
    if let Err(e) = ProofChecker::check(cnf, &proof) {
        panic!("solver returned an uncheckable verdict: {e}\nformula: {cnf:?}");
    }
    (res, proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::FlagAlloc;
    use crate::sat::SatResult;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    #[test]
    fn sat_proof_checks_model() {
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.assert_lit(p(0));
        let mut m = Model::new();
        m.insert(Flag(0), true);
        m.insert(Flag(1), true);
        assert_eq!(ProofChecker::check(&b, &Proof::Sat(m)), Ok(()));
        let mut bad = Model::new();
        bad.insert(Flag(0), true);
        bad.insert(Flag(1), false);
        assert!(matches!(
            ProofChecker::check(&b, &Proof::Sat(bad)),
            Err(ProofError::FalsifiedClause { .. })
        ));
    }

    #[test]
    fn resolution_derivation_replays() {
        // {f0} {¬f0 ∨ f1} {¬f1}: resolve to ⊥.
        let mut b = Cnf::top();
        b.assert_lit(p(0)); // 0
        b.imply(p(0), p(1)); // 1: ¬f0 ∨ f1
        b.assert_lit(n(1)); // 2
        let proof = Proof::Unsat(UnsatProof {
            core: vec![0, 1, 2],
            steps: vec![
                DerivationStep::Resolve {
                    left: ClauseRef::Input(0),
                    right: ClauseRef::Input(1),
                    pivot: p(0),
                    resolvent: Clause::unit(p(1)),
                },
                DerivationStep::Resolve {
                    left: ClauseRef::Derived(0),
                    right: ClauseRef::Input(2),
                    pivot: p(1),
                    resolvent: Clause::empty(),
                },
            ],
        });
        assert_eq!(ProofChecker::check(&b, &proof), Ok(()));
    }

    #[test]
    fn wrong_resolvent_is_rejected() {
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.imply(p(0), p(1));
        let proof = Proof::Unsat(UnsatProof {
            core: vec![0, 1],
            steps: vec![DerivationStep::Resolve {
                left: ClauseRef::Input(0),
                right: ClauseRef::Input(1),
                pivot: p(0),
                resolvent: Clause::empty(), // actual resolvent is {f1}
            }],
        });
        assert!(matches!(
            ProofChecker::check(&b, &proof),
            Err(ProofError::WrongResolvent { .. })
        ));
    }

    #[test]
    fn rup_step_confirms_by_propagation() {
        // {f0} {¬f0 ∨ f1} {¬f1}: the empty clause is RUP directly.
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.imply(p(0), p(1));
        b.assert_lit(n(1));
        let proof = Proof::Unsat(UnsatProof {
            core: vec![0, 1, 2],
            steps: vec![DerivationStep::Rup {
                clause: Clause::empty(),
            }],
        });
        assert_eq!(ProofChecker::check(&b, &proof), Ok(()));
    }

    #[test]
    fn rup_on_satisfiable_core_is_rejected() {
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        let proof = Proof::Unsat(UnsatProof {
            core: vec![0],
            steps: vec![DerivationStep::Rup {
                clause: Clause::empty(),
            }],
        });
        assert!(matches!(
            ProofChecker::check(&b, &proof),
            Err(ProofError::RupNotConfirmed { .. })
        ));
    }

    #[test]
    fn input_refs_outside_the_core_are_rejected() {
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.assert_lit(n(0));
        let proof = Proof::Unsat(UnsatProof {
            core: vec![0], // cites only clause 0, but the step uses 1
            steps: vec![DerivationStep::Resolve {
                left: ClauseRef::Input(0),
                right: ClauseRef::Input(1),
                pivot: p(0),
                resolvent: Clause::empty(),
            }],
        });
        assert!(matches!(
            ProofChecker::check(&b, &proof),
            Err(ProofError::BadClauseRef { .. })
        ));
    }

    #[test]
    fn empty_core_clause_is_trivially_valid() {
        let b = Cnf::bottom();
        let proof = Proof::Unsat(UnsatProof {
            core: vec![0],
            steps: vec![],
        });
        assert_eq!(ProofChecker::check(&b, &proof), Ok(()));
    }

    #[test]
    fn derivation_without_empty_clause_is_rejected() {
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.imply(p(0), p(1));
        b.assert_lit(n(1));
        let proof = Proof::Unsat(UnsatProof {
            core: vec![0, 1, 2],
            steps: vec![DerivationStep::Resolve {
                left: ClauseRef::Input(0),
                right: ClauseRef::Input(1),
                pivot: p(0),
                resolvent: Clause::unit(p(1)),
            }],
        });
        assert_eq!(
            ProofChecker::check(&b, &proof),
            Err(ProofError::NoEmptyClause)
        );
    }

    #[test]
    fn minimize_core_drops_irrelevant_clauses() {
        // f0, ¬f0 conflict; f2 → f3 is noise.
        let mut b = Cnf::top();
        b.assert_lit(p(0)); // 0
        b.imply(p(2), p(3)); // 1
        b.assert_lit(n(0)); // 2
        b.assert_lit(p(2)); // 3
        let min = minimize_core(&b, &[0, 1, 2, 3]);
        assert_eq!(min, vec![0, 2]);
    }

    #[test]
    fn minimized_core_is_still_unsat() {
        let mut flags = FlagAlloc::new();
        let fs: Vec<Flag> = (0..6).map(|_| flags.fresh()).collect();
        let mut b = Cnf::top();
        for w in fs.windows(2) {
            b.imply(Lit::pos(w[0]), Lit::pos(w[1]));
        }
        b.assert_lit(Lit::pos(fs[0]));
        b.assert_lit(Lit::neg(fs[5]));
        // Add irrelevant clauses.
        b.imply(Lit::neg(fs[2]), Lit::pos(fs[4]));
        let all: Vec<usize> = (0..b.len()).collect();
        let min = minimize_core(&b, &all);
        assert!(min.len() < b.len());
        let sub = Cnf::from_clauses(min.iter().map(|&i| b.clauses()[i].clone()));
        assert!(!sub.is_sat());
    }

    #[test]
    fn solve_checked_round_trips_both_verdicts() {
        let mut sat = Cnf::top();
        sat.imply(p(0), p(1));
        let (r, proof) = solve_checked(&sat);
        assert!(r.is_sat());
        assert!(proof.is_sat_witness());

        let mut unsat = Cnf::top();
        unsat.assert_lit(p(0));
        unsat.assert_lit(n(0));
        let (r, proof) = solve_checked(&unsat);
        assert!(matches!(r, SatResult::Unsat(_)));
        assert!(proof.unsat().is_some());
    }
}
