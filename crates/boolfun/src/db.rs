//! Indexed clause database backing existential projection.
//!
//! [`Cnf::project_out`](crate::Cnf::project_out) used to partition the
//! *entire* clause vector for every eliminated flag and re-sort it
//! afterwards, making elimination cost `O(flags × clauses)` even though
//! the clauses touching any one flag are a handful. [`ClauseDb`] is the
//! replacement: a slotted clause store with literal→clause occurrence
//! lists (so `eliminate(f)` touches only the clauses mentioning `f`),
//! tombstone deletion (occurrence lists are pruned lazily), 64-bit
//! literal-hash signatures (so subsumption checks run only against
//! candidates whose signature bits are compatible), and incrementally
//! maintained live-occurrence counts (so the elimination *order* can
//! stay greedy as counts change, instead of being frozen up front).
//!
//! Elimination itself is class-aware: when every clause touching the
//! pivot is a binary implication or a unit — the dominant case, since
//! select/update/removal/renaming only ever emit two-variable Horn
//! clauses (paper, Section 5) — the pivot is spliced out of the
//! implication graph directly (predecessor → successor edges, with
//! tautologies dropped and duplicates subsumed away). Only the genuine
//! CNF fragment produced by symmetric concatenation and `when` falls
//! back to general Davis–Putnam resolution.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::clause::Clause;
use crate::lit::{Flag, Lit};

/// Multiply-shift hasher for literal codes. The occurrence map is keyed
/// by [`Lit`] (one dense `u32`), gets hit on every insert/remove on the
/// hottest inference path, and needs no DoS resistance — SipHash is
/// pure overhead here.
#[derive(Default)]
struct LitHasher(u64);

impl Hasher for LitHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    }
    fn write_u32(&mut self, i: u32) {
        self.0 = u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type LitMap<V> = HashMap<Lit, V, BuildHasherDefault<LitHasher>>;

/// Counters describing the work of one projection call.
///
/// Returned by the `project_*` family on [`crate::Cnf`]; the inference
/// engine folds these into its phase statistics and the observability
/// layer (see `docs/OBSERVABILITY.md`, `project.*` counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProjectStats {
    /// Flags actually eliminated (mentioned by at least one clause).
    pub eliminated: usize,
    /// Eliminations where every touched clause was binary or unit,
    /// handled by implication-graph splicing.
    pub fastpath: usize,
    /// Eliminations that fell back to general Davis–Putnam resolution.
    pub fallback: usize,
    /// Non-tautological resolvents generated.
    pub resolvents: usize,
    /// Clauses discarded by forward or backward subsumption.
    pub subsumed: usize,
    /// Candidate clause pairs examined by the subsumption filter.
    pub sig_checks: usize,
    /// Candidates rejected by the signature test alone (no literal
    /// comparison needed).
    pub sig_pruned: usize,
}

impl ProjectStats {
    /// Accumulates another call's counters into this one.
    pub fn merge(&mut self, other: &ProjectStats) {
        self.eliminated += other.eliminated;
        self.fastpath += other.fastpath;
        self.fallback += other.fallback;
        self.resolvents += other.resolvents;
        self.subsumed += other.subsumed;
        self.sig_checks += other.sig_checks;
        self.sig_pruned += other.sig_pruned;
    }
}

/// One literal's occurrence list. `slots` may retain ids of tombstoned
/// clauses (pruned lazily as the list is walked); `live` is kept exact.
#[derive(Default)]
struct Occ {
    slots: Vec<u32>,
    live: u32,
}

/// Signature bit of a literal: a 64-bit one-hot hash. A clause's
/// signature is the OR of its literals' bits, so `D ⊆ C` implies
/// `sig(D) & !sig(C) == 0` — the contrapositive rejects most
/// subsumption candidates without touching their literals.
fn sig_bit(l: Lit) -> u64 {
    // SplitMix64-style finalizer over the literal code.
    let mut x = (l.code() as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    1u64 << ((x >> 58) & 63)
}

fn sig_of(c: &Clause) -> u64 {
    c.lits().iter().map(|&l| sig_bit(l)).fold(0, |a, b| a | b)
}

/// The occurrence-indexed clause store. Lives for the duration of one
/// projection call: built from a CNF's clauses, driven through a
/// sequence of [`ClauseDb::eliminate`] steps, then drained back into a
/// clause vector.
pub(crate) struct ClauseDb {
    slots: Vec<Option<Clause>>,
    sigs: Vec<u64>,
    occ: LitMap<Occ>,
    /// Set once the empty clause is derived; the database then denotes
    /// `⊥` and all further work is skipped.
    unsat: bool,
    /// When tracing, `origins[slot]` is the sorted set of *pre-projection*
    /// clause ids (indices into the caller's clause vector) whose
    /// conjunction entails the clause in that slot. Initial clauses carry
    /// their own id; a resolvent carries the union of its parents'
    /// origins; subsumption only ever drops clauses, so the invariant is
    /// preserved without touching the survivors. Empty and unused when
    /// tracing is off.
    origins: Vec<Vec<u32>>,
    /// Origins of the derived empty clause, when `unsat` and tracing.
    unsat_origins: Vec<u32>,
    tracing: bool,
    pub(crate) stats: ProjectStats,
}

impl ClauseDb {
    /// Builds the index. The initial clauses are attached without
    /// subsumption checks — they come from a normalised CNF (no exact
    /// duplicates), and a redundant weaker clause is only a size cost,
    /// not a correctness one. Subsumption runs where it pays: against
    /// the resolvents [`ClauseDb::eliminate`] inserts.
    ///
    /// The projection engine partitions and attaches in one pass (see
    /// `Cnf::eliminate_where`), so this constructor is test scaffolding.
    #[cfg(test)]
    pub(crate) fn new(clauses: impl IntoIterator<Item = Clause>) -> ClauseDb {
        let mut db = ClauseDb::empty();
        for c in clauses {
            if c.is_empty() {
                db.unsat = true;
                break;
            }
            db.attach(c);
        }
        db
    }

    /// An empty database; clauses are added with [`ClauseDb::attach`].
    pub(crate) fn empty() -> ClauseDb {
        ClauseDb {
            slots: Vec::new(),
            sigs: Vec::new(),
            occ: LitMap::default(),
            unsat: false,
            origins: Vec::new(),
            unsat_origins: Vec::new(),
            tracing: false,
            stats: ProjectStats::default(),
        }
    }

    /// An empty database with origin tracing enabled: every stored
    /// clause remembers which pre-projection clauses entail it, so a
    /// post-projection unsat core can be mapped back to input clause
    /// ids. Initial clauses go in via [`ClauseDb::attach_traced`].
    pub(crate) fn traced() -> ClauseDb {
        let mut db = ClauseDb::empty();
        db.tracing = true;
        db
    }

    /// Whether the database has derived the empty clause.
    pub(crate) fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// Number of live clauses mentioning `f` (either sign).
    pub(crate) fn occurrences(&self, f: Flag) -> usize {
        self.live(Lit::pos(f)) + self.live(Lit::neg(f))
    }

    /// The flags mentioned by at least one live clause, ascending.
    /// (The engine collects its worklist during the partition scan
    /// instead; this view is kept for the index-consistency tests.)
    #[cfg(test)]
    pub(crate) fn mentioned_flags(&self) -> Vec<Flag> {
        let mut flags: Vec<Flag> = self
            .occ
            .iter()
            .filter(|(_, o)| o.live > 0)
            .map(|(l, _)| l.flag())
            .collect();
        flags.sort_unstable();
        flags.dedup();
        flags
    }

    fn live(&self, l: Lit) -> usize {
        self.occ.get(&l).map_or(0, |o| o.live as usize)
    }

    /// Inserts a clause, discarding it if an existing clause subsumes
    /// it and deleting existing clauses it subsumes. Subsumption
    /// candidates are drawn from the occurrence lists of the clause's
    /// own literals and filtered by signature before any literal-level
    /// comparison.
    #[cfg(test)]
    pub(crate) fn insert(&mut self, c: Clause) {
        self.insert_with(c, Vec::new());
    }

    /// [`ClauseDb::insert`] carrying the clause's origin set (ignored
    /// unless tracing). A clause dropped by forward subsumption sheds
    /// its origins — the surviving subsumer is entailed by its own.
    fn insert_with(&mut self, c: Clause, org: Vec<u32>) {
        if self.unsat {
            return;
        }
        if c.is_empty() {
            // ⊥ subsumes the whole database.
            self.unsat = true;
            self.unsat_origins = org;
            return;
        }
        let sig = sig_of(&c);
        // Forward: a subsumer's literals all occur in `c`, so it is
        // registered under at least one (in fact, every one) of them.
        let (mut checks, mut pruned) = (0usize, 0usize);
        let mut subsumed_by_existing = false;
        'fwd: for &l in c.lits() {
            let Some(o) = self.occ.get(&l) else { continue };
            for &s in &o.slots {
                let s = s as usize;
                let Some(existing) = &self.slots[s] else {
                    continue;
                };
                checks += 1;
                if self.sigs[s] & !sig != 0 {
                    pruned += 1;
                    continue;
                }
                if existing.subsumes(&c) {
                    subsumed_by_existing = true;
                    break 'fwd;
                }
            }
        }
        if subsumed_by_existing {
            self.stats.sig_checks += checks;
            self.stats.sig_pruned += pruned;
            self.stats.subsumed += 1;
            return;
        }
        // Backward: every clause `c` subsumes contains each of `c`'s
        // literals, so the rarest one's occurrence list covers all
        // candidates.
        let anchor = c
            .lits()
            .iter()
            .copied()
            .min_by_key(|&l| self.live(l))
            .expect("non-empty clause");
        let mut victims: Vec<u32> = Vec::new();
        if let Some(o) = self.occ.get(&anchor) {
            for &s in &o.slots {
                let si = s as usize;
                let Some(existing) = &self.slots[si] else {
                    continue;
                };
                checks += 1;
                if sig & !self.sigs[si] != 0 {
                    pruned += 1;
                    continue;
                }
                if c.subsumes(existing) {
                    victims.push(s);
                }
            }
        }
        self.stats.sig_checks += checks;
        self.stats.sig_pruned += pruned;
        for s in victims {
            self.remove(s as usize);
            self.stats.subsumed += 1;
        }
        self.attach_with(c, org);
    }

    /// Registers a clause in the slot table and occurrence lists with no
    /// subsumption checks. See [`ClauseDb::new`] for why the initial set
    /// is attached rather than inserted.
    pub(crate) fn attach(&mut self, c: Clause) {
        self.attach_with(c, Vec::new());
    }

    /// [`ClauseDb::attach`] for an initial clause under tracing: its
    /// origin set is the singleton of its own pre-projection id.
    pub(crate) fn attach_traced(&mut self, c: Clause, origin: u32) {
        self.attach_with(c, vec![origin]);
    }

    fn attach_with(&mut self, c: Clause, org: Vec<u32>) {
        let id = self.slots.len() as u32;
        for &l in c.lits() {
            let o = self.occ.entry(l).or_default();
            o.slots.push(id);
            o.live += 1;
        }
        self.sigs.push(sig_of(&c));
        self.slots.push(Some(c));
        if self.tracing {
            self.origins.push(org);
        }
    }

    /// Tombstones a slot, keeping occurrence counts exact. The slot id
    /// stays in the occurrence lists until they are next walked.
    fn remove(&mut self, slot: usize) -> Option<(Clause, Vec<u32>)> {
        let c = self.slots[slot].take()?;
        for &l in c.lits() {
            if let Some(o) = self.occ.get_mut(&l) {
                o.live -= 1;
            }
        }
        let org = if self.tracing {
            std::mem::take(&mut self.origins[slot])
        } else {
            Vec::new()
        };
        Some((c, org))
    }

    /// Detaches (removes and returns) every live clause containing `l`
    /// together with its origin set (empty unless tracing), compacting
    /// the occurrence list on the way.
    fn detach(&mut self, l: Lit) -> Vec<(Clause, Vec<u32>)> {
        let slots = match self.occ.get_mut(&l) {
            Some(o) => std::mem::take(&mut o.slots),
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(slots.len());
        for s in slots {
            if let Some(pair) = self.remove(s as usize) {
                out.push(pair);
            }
        }
        out
    }

    /// Union of two sorted origin sets; empty (no allocation) unless
    /// tracing.
    fn union_origins(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        if !self.tracing {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }

    /// Eliminates `f` by resolution: every clause mentioning `f` is
    /// replaced by the non-tautological resolvents of its positive and
    /// negative occurrences (`∃f.β`). Touches only the indexed
    /// occurrences of `f` — never the rest of the database.
    pub(crate) fn eliminate(&mut self, f: Flag) {
        if self.unsat {
            return;
        }
        let pos = self.detach(Lit::pos(f));
        let neg = self.detach(Lit::neg(f));
        if pos.is_empty() && neg.is_empty() {
            return;
        }
        self.stats.eliminated += 1;
        // Class check: with only binary implications and units the
        // pivot can be spliced out of the implication graph; wider
        // clauses (symmetric concat, `when` guards) need general
        // resolution.
        let binary_only = pos.iter().chain(&neg).all(|(c, _)| c.len() <= 2);
        if binary_only {
            self.stats.fastpath += 1;
        } else {
            self.stats.fallback += 1;
        }
        if pos.is_empty() || neg.is_empty() {
            // Pure literal: ∃f picks the satisfying polarity and the
            // detached clauses vanish.
            return;
        }
        if binary_only {
            // (x ∨ f) ⊗ (y ∨ ¬f) = (x ∨ y): splice predecessors onto
            // successors. `None` encodes a unit occurrence of the pivot.
            let other = |c: &Clause, pivot: Lit| -> Option<Lit> {
                c.lits().iter().copied().find(|&l| l != pivot)
            };
            for (pc, porg) in &pos {
                let p = other(pc, Lit::pos(f));
                for (sc, sorg) in &neg {
                    let s = other(sc, Lit::neg(f));
                    match (p, s) {
                        (None, None) => {
                            self.stats.resolvents += 1;
                            self.unsat = true;
                            self.unsat_origins = self.union_origins(porg, sorg);
                            return;
                        }
                        (Some(x), None) | (None, Some(x)) => {
                            self.stats.resolvents += 1;
                            let org = self.union_origins(porg, sorg);
                            self.insert_with(Clause::unit(x), org);
                        }
                        (Some(x), Some(y)) if x == y => {
                            self.stats.resolvents += 1;
                            let org = self.union_origins(porg, sorg);
                            self.insert_with(Clause::unit(x), org);
                        }
                        (Some(x), Some(y)) => {
                            if x != y.negate() {
                                self.stats.resolvents += 1;
                                let c = Clause::binary(x, y).expect("x ≠ ¬y");
                                let org = self.union_origins(porg, sorg);
                                self.insert_with(c, org);
                            }
                        }
                    }
                    if self.unsat {
                        return;
                    }
                }
            }
        } else {
            for (p, porg) in &pos {
                for (n, norg) in &neg {
                    if let Some(r) = p.resolve(n, Lit::pos(f)) {
                        self.stats.resolvents += 1;
                        let org = self.union_origins(porg, norg);
                        self.insert_with(r, org);
                    }
                    if self.unsat {
                        return;
                    }
                }
            }
        }
    }

    /// Drains the live clauses out of the database.
    pub(crate) fn into_clauses(self) -> Vec<Clause> {
        if self.unsat {
            return vec![Clause::empty()];
        }
        self.slots.into_iter().flatten().collect()
    }

    /// Drains the live clauses together with their origin sets. On an
    /// unsat database the single empty clause carries the origins of the
    /// conflict, so the caller's unsat core is already a subset of the
    /// *input* clause ids.
    pub(crate) fn into_clauses_traced(self) -> (Vec<Clause>, Vec<Vec<u32>>) {
        debug_assert!(self.tracing, "into_clauses_traced on an untraced db");
        if self.unsat {
            return (vec![Clause::empty()], vec![self.unsat_origins]);
        }
        let mut clauses = Vec::new();
        let mut origins = Vec::new();
        for (slot, org) in self.slots.into_iter().zip(self.origins) {
            if let Some(c) = slot {
                clauses.push(c);
                origins.push(org);
            }
        }
        (clauses, origins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }
    fn clause(lits: &[Lit]) -> Clause {
        Clause::new(lits.to_vec()).expect("not a tautology")
    }

    #[test]
    fn build_attaches_without_subsumption() {
        // The initial set is attached verbatim; redundancy is tolerated.
        let db = ClauseDb::new(vec![clause(&[p(0), p(1), p(2)]), clause(&[p(0), p(1)])]);
        assert_eq!(db.stats.subsumed, 0);
        assert_eq!(db.clone_clauses().len(), 2);
    }

    #[test]
    fn insert_dedupes_and_subsumes() {
        let mut db = ClauseDb::new(vec![clause(&[p(0), p(1), p(2)])]);
        // Forward: a duplicate of an existing clause is dropped.
        db.insert(clause(&[p(0), p(1), p(2)]));
        assert_eq!(db.stats.subsumed, 1);
        // Backward: a stronger clause evicts the weaker wide one.
        db.insert(clause(&[p(0), p(1)]));
        assert_eq!(db.clone_clauses(), vec![clause(&[p(0), p(1)])]);
        assert_eq!(db.stats.subsumed, 2);
        // Backward: a stronger clause evicts the weaker one.
        db.insert(clause(&[p(0)]));
        assert_eq!(db.stats.subsumed, 3);
        assert_eq!(db.clone_clauses(), vec![clause(&[p(0)])]);
    }

    #[test]
    fn eliminate_splices_binary_chain() {
        let mut db = ClauseDb::new(vec![clause(&[n(0), p(1)]), clause(&[n(1), p(2)])]);
        db.eliminate(Flag(1));
        assert_eq!(db.stats.fastpath, 1);
        assert_eq!(db.stats.fallback, 0);
        assert_eq!(db.clone_clauses(), vec![clause(&[n(0), p(2)])]);
    }

    #[test]
    fn eliminate_unit_conflict_is_unsat() {
        let mut db = ClauseDb::new(vec![Clause::unit(p(0)), Clause::unit(n(0))]);
        db.eliminate(Flag(0));
        assert!(db.is_unsat());
        assert_eq!(db.into_clauses(), vec![Clause::empty()]);
    }

    #[test]
    fn eliminate_wide_clause_uses_fallback() {
        let mut db = ClauseDb::new(vec![clause(&[p(0), p(1), p(2)]), clause(&[n(0), p(3)])]);
        db.eliminate(Flag(0));
        assert_eq!(db.stats.fallback, 1);
        assert_eq!(db.stats.fastpath, 0);
        assert_eq!(db.clone_clauses(), vec![clause(&[p(1), p(2), p(3)])]);
    }

    #[test]
    fn occurrence_counts_track_insert_and_remove() {
        let mut db = ClauseDb::new(vec![clause(&[n(0), p(1)]), clause(&[n(1), p(2)])]);
        assert_eq!(db.occurrences(Flag(1)), 2);
        db.eliminate(Flag(1));
        assert_eq!(db.occurrences(Flag(1)), 0);
        assert_eq!(db.occurrences(Flag(0)), 1);
        assert_eq!(db.occurrences(Flag(2)), 1);
    }

    #[test]
    fn mentioned_flags_ignores_tombstones() {
        let mut db = ClauseDb::new(vec![clause(&[n(0), p(1)])]);
        assert_eq!(db.mentioned_flags(), vec![Flag(0), Flag(1)]);
        db.eliminate(Flag(1));
        // The resolvent set is empty (pure literal), so nothing is live.
        assert_eq!(db.mentioned_flags(), Vec::<Flag>::new());
    }

    impl ClauseDb {
        /// Test helper: the live clauses, sorted.
        fn clone_clauses(&self) -> Vec<Clause> {
            let mut v: Vec<Clause> = self.slots.iter().flatten().cloned().collect();
            v.sort();
            v
        }
    }
}
