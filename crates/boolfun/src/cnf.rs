//! Boolean functions in conjunctive normal form.

use std::collections::BTreeSet;
use std::fmt;

use crate::clause::Clause;
use crate::lit::{Flag, FlagSet, Lit};
use crate::sat::{self, SatResult};

/// A Boolean function β represented in conjunctive normal form.
///
/// The inference keeps one such function per judgement; it is refined by
/// conjunction as inference rules fire. `Cnf` maintains the invariants that
/// clauses are normalised (sorted, duplicate-free, non-tautological) and the
/// clause set itself is duplicate-free.
///
/// The paper writes sequences of implications between the flag sequences of
/// two types, `*t1+ ⇒ *t2+` and `*t1+ ⇔ *t2+`; these are provided as
/// [`Cnf::imply_seq`] and [`Cnf::iff_seq`].
pub struct Cnf {
    pub(crate) clauses: Vec<Clause>,
    /// Whether `clauses` is known sorted + deduplicated.
    pub(crate) normalized: bool,
    /// Object identity for incremental-session syncing: fresh on every
    /// construction *and clone*, so two handles never alias and a
    /// [`crate::Session`] can tell "same formula, mutated" from "a
    /// different formula that happens to share a prefix".
    pub(crate) sync_id: u64,
    /// Bumped on every mutation that is not a pure append (sorting,
    /// dedup, projection, subsumption). While `sync_id` and this counter
    /// both match a session's record, the synced clause prefix is
    /// guaranteed unchanged and only the suffix needs pushing.
    pub(crate) structural: u64,
}

fn next_sync_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl Clone for Cnf {
    fn clone(&self) -> Cnf {
        Cnf {
            clauses: self.clauses.clone(),
            normalized: self.normalized,
            sync_id: next_sync_id(),
            structural: self.structural,
        }
    }
}

impl Default for Cnf {
    fn default() -> Cnf {
        Cnf::top()
    }
}

impl PartialEq for Cnf {
    fn eq(&self, other: &Cnf) -> bool {
        self.clauses == other.clauses && self.normalized == other.normalized
    }
}

impl Eq for Cnf {}

impl Cnf {
    /// The empty conjunction `true` (the top element of the lattice `B`).
    pub fn top() -> Cnf {
        Cnf {
            clauses: Vec::new(),
            normalized: true,
            sync_id: next_sync_id(),
            structural: 0,
        }
    }

    /// The empty conjunction `true`, reusing `storage`'s clause
    /// allocation. Engines that run many short inference sessions
    /// (one per definition group) recycle the clause vector between
    /// sessions via [`Cnf::into_storage`] instead of reallocating.
    pub fn top_reusing(mut storage: Vec<Clause>) -> Cnf {
        storage.clear();
        Cnf {
            clauses: storage,
            normalized: true,
            sync_id: next_sync_id(),
            structural: 0,
        }
    }

    /// Consumes the function, returning its clause storage for reuse
    /// with [`Cnf::top_reusing`].
    pub fn into_storage(self) -> Vec<Clause> {
        self.clauses
    }

    /// A function that is trivially unsatisfiable (`⊥B`).
    pub fn bottom() -> Cnf {
        Cnf {
            clauses: vec![Clause::empty()],
            normalized: true,
            sync_id: next_sync_id(),
            structural: 0,
        }
    }

    /// Builds a CNF from clauses.
    pub fn from_clauses(clauses: impl IntoIterator<Item = Clause>) -> Cnf {
        let mut cnf = Cnf::top();
        for c in clauses {
            cnf.add_clause(c);
        }
        cnf
    }

    /// Whether this is syntactically the empty conjunction.
    pub fn is_top(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Whether this contains the empty clause (trivially unsatisfiable).
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(Clause::is_empty)
    }

    /// The clauses of this function.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether there are no clauses (i.e. the function is `true`).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Conjoins a single clause.
    pub fn add_clause(&mut self, c: Clause) {
        self.clauses.push(c);
        self.normalized = false;
    }

    /// Conjoins a clause given as raw literals; tautologies are dropped.
    pub fn add_lits(&mut self, lits: Vec<Lit>) {
        if let Some(c) = Clause::new(lits) {
            self.add_clause(c);
        }
    }

    /// Asserts that the literal `l` holds (conjoins the unit clause `{l}`).
    pub fn assert_lit(&mut self, l: Lit) {
        self.add_clause(Clause::unit(l));
    }

    /// Conjoins the implication `a → b`, i.e. the clause `¬a ∨ b`.
    pub fn imply(&mut self, a: Lit, b: Lit) {
        if let Some(c) = Clause::binary(a.negate(), b) {
            self.add_clause(c);
        }
    }

    /// Conjoins the bi-implication `a ↔ b`.
    pub fn iff(&mut self, a: Lit, b: Lit) {
        self.imply(a, b);
        self.imply(b, a);
    }

    /// The lifted sequence implication
    /// `⟨a1,…,an⟩ ⇒ ⟨b1,…,bn⟩ ≡ a1→b1 ∧ … ∧ an→bn`.
    ///
    /// Entries may be negative literals; negation encodes the
    /// contra-variant positions produced by the `*t+` flag extraction.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths — the inference
    /// guarantees equal lengths by only relating types with equal
    /// `⇓RP`-skeletons, so a mismatch is a bug in the caller.
    pub fn imply_seq(&mut self, from: &[Lit], to: &[Lit]) {
        assert_eq!(
            from.len(),
            to.len(),
            "sequence implication requires equally long flag sequences"
        );
        for (&a, &b) in from.iter().zip(to) {
            self.imply(a, b);
        }
    }

    /// The lifted bi-implication `s1 ⇔ s2 ≡ (s1 ⇒ s2) ∧ (s2 ⇒ s1)`.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths.
    pub fn iff_seq(&mut self, a: &[Lit], b: &[Lit]) {
        self.imply_seq(a, b);
        self.imply_seq(b, a);
    }

    /// Conjoins another Boolean function.
    pub fn and(&mut self, other: &Cnf) {
        self.clauses.extend(other.clauses.iter().cloned());
        self.normalized = false;
    }

    /// Sorts and deduplicates the clause set.
    pub fn normalize(&mut self) {
        if !self.normalized {
            self.clauses.sort_unstable();
            self.clauses.dedup();
            self.normalized = true;
            // Sorting may reorder the prefix a session has synced.
            self.note_structural_change();
        }
    }

    /// Records a mutation that may have changed existing clauses (not a
    /// pure append). Every in-place rewrite of `clauses` outside this
    /// module must call this so incremental sessions re-diff the prefix.
    pub(crate) fn note_structural_change(&mut self) {
        self.structural = self.structural.wrapping_add(1);
    }

    /// Identity + mutation stamp for [`crate::Session::sync`]: while both
    /// components match a previous observation and the clause count has
    /// not shrunk, the previously observed prefix is unchanged.
    pub fn sync_stamp(&self) -> (u64, u64) {
        (self.sync_id, self.structural)
    }

    /// Removes clauses subsumed by another clause. Quadratic; intended for
    /// keeping projected formulas small, not for hot paths.
    pub fn subsume(&mut self) {
        self.normalize();
        let clauses = std::mem::take(&mut self.clauses);
        let mut kept: Vec<Clause> = Vec::with_capacity(clauses.len());
        // Sorted order puts shorter prefixes first, which tends to place
        // subsuming clauses early, but we still need the full check.
        'next: for c in clauses {
            for k in &kept {
                if k.subsumes(&c) {
                    continue 'next;
                }
            }
            kept.retain(|k| !c.subsumes(k));
            kept.push(c);
        }
        self.clauses = kept;
        self.normalized = false;
        self.normalize();
    }

    /// The set of flags mentioned by this function.
    pub fn flags(&self) -> FlagSet {
        let mut set = BTreeSet::new();
        for c in &self.clauses {
            for l in c.lits() {
                set.insert(l.flag());
            }
        }
        set
    }

    /// Splits the clause set into the clauses mentioning at least one of
    /// the given flags and the rest. Used to move a finished definition's
    /// flow into its scheme.
    pub fn split_mentioning(&self, flags: &FlagSet) -> (Cnf, Cnf) {
        let mut hit = Cnf::top();
        let mut rest = Cnf::top();
        for c in &self.clauses {
            if c.lits().iter().any(|l| flags.contains(&l.flag())) {
                hit.add_clause(c.clone());
            } else {
                rest.add_clause(c.clone());
            }
        }
        hit.normalize();
        rest.normalize();
        (hit, rest)
    }

    /// Whether the flag `f` occurs in any clause.
    pub fn mentions(&self, f: Flag) -> bool {
        self.clauses
            .iter()
            .any(|c| c.contains(Lit::pos(f)) || c.contains(Lit::neg(f)))
    }

    /// Evaluates the function under a total assignment
    /// (`assign[flag.index()] = value`; the slice must cover every flag
    /// mentioned).
    pub fn eval(&self, assign: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(assign))
    }

    /// Decides satisfiability with the cheapest applicable solver
    /// (2-SAT, Horn-SAT, or CDCL; see [`crate::classify`]).
    pub fn is_sat(&self) -> bool {
        matches!(self.solve(), SatResult::Sat(_))
    }

    /// Full solver result, including a model or an explanation.
    pub fn solve(&self) -> SatResult {
        sat::solve(self)
    }

    /// [`Self::solve`] under a [`sat::SatBudget`]; only general-CNF
    /// formulas (CDCL) can stop early.
    pub fn solve_budgeted(&self, budget: &sat::SatBudget) -> Result<SatResult, sat::BudgetStop> {
        sat::solve_budgeted(self, budget)
    }

    /// Whether `self ⊨ other` (every model of `self` satisfies `other`).
    ///
    /// Decided clause-by-clause: `self ⊨ c` iff `self ∧ ¬c` is
    /// unsatisfiable. Intended for tests and assertions, not hot paths.
    pub fn entails(&self, other: &Cnf) -> bool {
        other.clauses.iter().all(|c| self.entails_clause(c))
    }

    /// Whether `self ⊨ c` for a single clause.
    pub fn entails_clause(&self, c: &Clause) -> bool {
        let mut query = self.clone();
        for &l in c.lits() {
            query.assert_lit(l.negate());
        }
        !query.is_sat()
    }

    /// Whether `self` and `other` have the same models over all flags
    /// (logical equivalence). Intended for tests.
    pub fn equivalent(&self, other: &Cnf) -> bool {
        self.entails(other) && other.entails(self)
    }

    /// Enumerates all models over the given flag universe. Exponential in
    /// `universe.len()`; intended for tests against small formulas.
    ///
    /// Each model is returned as the set of flags assigned `true`.
    ///
    /// # Panics
    ///
    /// Panics if the universe misses a mentioned flag or exceeds 24 flags.
    pub fn models(&self, universe: &[Flag]) -> Vec<BTreeSet<Flag>> {
        assert!(
            universe.len() <= 24,
            "model enumeration limited to 24 flags"
        );
        let mentioned = self.flags();
        for f in &mentioned {
            assert!(universe.contains(f), "universe misses mentioned flag {f}");
        }
        let max = universe
            .iter()
            .map(|f| f.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut assign = vec![false; max];
        let mut out = Vec::new();
        for bits in 0u64..(1u64 << universe.len()) {
            for (i, f) in universe.iter().enumerate() {
                assign[f.index()] = bits >> i & 1 == 1;
            }
            if self.eval(&assign) {
                out.push(
                    universe
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| bits >> i & 1 == 1)
                        .map(|(_, &f)| f)
                        .collect(),
                );
            }
        }
        out
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for c in &self.clauses {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            if c.len() > 1 {
                write!(f, "({c:?})")?;
            } else {
                write!(f, "{c:?}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }

    #[test]
    fn top_is_sat_bottom_is_not() {
        assert!(Cnf::top().is_sat());
        assert!(!Cnf::bottom().is_sat());
    }

    #[test]
    fn implication_chain_propagates() {
        // f0 → f1 → f2, f0, ¬f2 is unsat.
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), p(2));
        b.assert_lit(p(0));
        assert!(b.is_sat());
        b.assert_lit(n(2));
        assert!(!b.is_sat());
    }

    #[test]
    fn iff_seq_panics_on_length_mismatch() {
        let mut b = Cnf::top();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.iff_seq(&[p(0)], &[p(1), p(2)]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn imply_seq_with_negated_entries() {
        // ⟨¬f0⟩ ⇒ ⟨¬f1⟩ is ¬f0 → ¬f1, i.e. f1 → f0.
        let mut b = Cnf::top();
        b.imply_seq(&[n(0)], &[n(1)]);
        let mut expect = Cnf::top();
        expect.imply(p(1), p(0));
        assert!(b.equivalent(&expect));
    }

    #[test]
    fn subsume_removes_weaker_clauses() {
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1), p(2)]);
        b.add_lits(vec![p(0), p(1)]);
        b.add_lits(vec![p(0), p(1)]);
        b.subsume();
        assert_eq!(b.len(), 1);
        assert_eq!(b.clauses()[0].lits(), &[p(0), p(1)]);
    }

    #[test]
    fn entailment_and_equivalence() {
        let mut a = Cnf::top();
        a.assert_lit(p(0));
        a.imply(p(0), p(1));
        let mut b = Cnf::top();
        b.assert_lit(p(1));
        assert!(a.entails(&b));
        assert!(!b.entails(&a));

        let mut c = Cnf::top();
        c.assert_lit(p(0));
        c.assert_lit(p(1));
        assert!(a.equivalent(&c));
    }

    #[test]
    fn models_enumeration() {
        // f0 ↔ f1 over {f0, f1}: models {} and {f0, f1}.
        let mut b = Cnf::top();
        b.iff(p(0), p(1));
        let ms = b.models(&[Flag(0), Flag(1)]);
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&BTreeSet::new()));
        assert!(ms.contains(&[Flag(0), Flag(1)].into_iter().collect()));
    }

    #[test]
    fn mentions_reports_flags() {
        let mut b = Cnf::top();
        b.imply(p(3), n(5));
        assert!(b.mentions(Flag(3)));
        assert!(b.mentions(Flag(5)));
        assert!(!b.mentions(Flag(4)));
        assert_eq!(b.flags(), [Flag(3), Flag(5)].into_iter().collect());
    }
}
