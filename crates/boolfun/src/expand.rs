//! Expansion of flows (Definition 2 of the paper).

use crate::clause::Clause;
use crate::cnf::Cnf;
use crate::lit::{Flag, Lit};

impl Cnf {
    /// Replicates the flow of the flags `from = ⟨f1,…,fn⟩` onto the target
    /// atoms `to = ⟨f'1,…,f'n⟩` (Definition 2):
    ///
    /// every clause mentioning at least one of `f1,…,fn` is duplicated with
    /// the substitution `σ = [f1/f'1, …, fn/f'n]` applied; clauses not
    /// mentioning any `fi` are left alone, and the original clauses are
    /// kept.
    ///
    /// Targets are *literals*, not flags: when a flag of a type variable is
    /// expanded onto a flag in contra-variant position (an argument of a
    /// function type), the paper requires `expand` to "replace fi with a
    /// negated flag, thereby replicating the contra-variant behavior"
    /// (Example 3). A negated target `¬g` maps the literal `fi ↦ ¬g` and
    /// `¬fi ↦ g`.
    ///
    /// Duplicated clauses that become tautological are dropped.
    ///
    /// # Stale flags
    ///
    /// Correctness requires that β contains no *stale* flags: a clause
    /// relating `fi` to a flag that is no longer mentioned by any type
    /// would be duplicated verbatim and incorrectly equate the copy with
    /// the original (the bug described in Section 6 of the paper). The
    /// inference maintains this invariant by projecting dead flags out
    /// (see [`Cnf::project_out`]) before flows are expanded.
    ///
    /// # Panics
    ///
    /// Panics if `from` and `to` have different lengths or `from` contains
    /// duplicate flags.
    pub fn expand(&mut self, from: &[Flag], to: &[Lit]) {
        assert_eq!(from.len(), to.len(), "expansion requires |from| = |to|");
        if from.is_empty() {
            return;
        }
        debug_assert!(
            {
                let mut sorted = from.to_vec();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "expansion source flags must be distinct"
        );
        let rename = |l: Lit| -> Lit {
            match from.iter().position(|&f| f == l.flag()) {
                // fi ↦ f'i, with the sign of the occurrence composed with
                // the sign of the target atom.
                Some(i) => to[i].xor_sign(l.is_neg()),
                None => l,
            }
        };
        let mut copies: Vec<Clause> = Vec::new();
        for c in self.clauses() {
            if c.lits().iter().any(|l| from.contains(&l.flag())) {
                if let Some(copy) = c.rename(rename) {
                    copies.push(copy);
                }
            }
        }
        for c in copies {
            self.add_clause(c);
        }
        self.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::FlagAlloc;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }

    /// The running example of Section 2.4: βt = f3→f1 ∧ f3→f2 expanded
    /// three times onto the flags of `{FOO.ff : b.fb, c.fc}`.
    #[test]
    fn cond_example_duplicates_flow_per_flag_column() {
        // Flags 0,1,2 are f1,f2,f3 of the type variable `a`.
        let mut beta = Cnf::top();
        beta.imply(p(2), p(0)); // f3 → f1
        beta.imply(p(2), p(1)); // f3 → f2
                                // Columns: f_f^i = 3,4,5; f_b^i = 6,7,8; f_c^i = 9,10,11.
        beta.expand(&[Flag(0), Flag(1), Flag(2)], &[p(3), p(4), p(5)]);
        beta.expand(&[Flag(0), Flag(1), Flag(2)], &[p(6), p(7), p(8)]);
        beta.expand(&[Flag(0), Flag(1), Flag(2)], &[p(9), p(10), p(11)]);
        let mut expect = Cnf::top();
        for (a, b, c) in [(0, 1, 2), (3, 4, 5), (6, 7, 8), (9, 10, 11)] {
            expect.imply(p(c), p(a));
            expect.imply(p(c), p(b));
        }
        assert!(beta.equivalent(&expect));
    }

    /// Example 3: expanding the identity's flow βid = fo → fi onto the
    /// flags of `b→b` uses negated targets for the contra-variant column.
    #[test]
    fn identity_example_contravariant_expansion() {
        let mut flags = FlagAlloc::new();
        let fi = flags.fresh(); // f_i = 0
        let fo = flags.fresh(); // f_o = 1
        let f1 = flags.fresh(); // 2
        let f2 = flags.fresh(); // 3
        let f3 = flags.fresh(); // 4
        let f4 = flags.fresh(); // 5
        let mut beta = Cnf::top();
        beta.imply(Lit::pos(fo), Lit::pos(fi)); // fo → fi
                                                // *ti+ = ⟨¬f1, f2⟩ and *to+ = ⟨¬f3, f4⟩.
        beta.expand(&[fi, fo], &[Lit::neg(f1), Lit::neg(f3)]);
        beta.expand(&[fi, fo], &[Lit::pos(f2), Lit::pos(f4)]);
        // Expected: βid ∧ f4→f2 ∧ f1→f3 (per Example 3).
        let mut expect = Cnf::top();
        expect.imply(Lit::pos(fo), Lit::pos(fi));
        expect.imply(Lit::pos(f4), Lit::pos(f2));
        expect.imply(Lit::pos(f1), Lit::pos(f3));
        assert!(beta.equivalent(&expect));
    }

    #[test]
    fn untouched_clauses_are_not_duplicated() {
        let mut beta = Cnf::top();
        beta.imply(p(0), p(1));
        beta.imply(p(5), p(6)); // does not mention expanded flags
        beta.expand(&[Flag(0), Flag(1)], &[p(2), p(3)]);
        let mut expect = Cnf::top();
        expect.imply(p(0), p(1));
        expect.imply(p(2), p(3));
        expect.imply(p(5), p(6));
        assert!(beta.equivalent(&expect));
        // And exactly one copy was made.
        assert_eq!(beta.len(), 3);
    }

    #[test]
    fn expansion_on_empty_source_is_identity() {
        let mut beta = Cnf::top();
        beta.imply(p(0), p(1));
        let before = beta.clone();
        beta.expand(&[], &[]);
        assert_eq!(beta.clauses(), before.clauses());
    }

    /// The Section 6 stale-flag pitfall, reproduced as documentation: a
    /// clause `fc ↔ fa` with stale `fc` makes the copy `fa'` equal to `fa`.
    #[test]
    fn stale_flag_aliases_copies_as_described_in_section_6() {
        let fa = Flag(0);
        let fb = Flag(1);
        let fc = Flag(2); // stale
        let fa2 = Flag(3);
        let fb2 = Flag(4);
        let mut beta = Cnf::top();
        beta.imply(Lit::pos(fa), Lit::pos(fb));
        beta.iff(Lit::pos(fc), Lit::pos(fa));
        beta.expand(&[fa, fb], &[Lit::pos(fa2), Lit::pos(fb2)]);
        // The buggy outcome: fa ↔ fc ↔ fa2, so asserting fa forces fa2.
        let mut q = beta.clone();
        q.assert_lit(Lit::pos(fa));
        q.assert_lit(Lit::neg(fa2));
        assert!(
            !q.is_sat(),
            "stale flag must alias the copy (documented bug)"
        );
        // Projecting the stale flag out *before* expanding avoids it.
        let mut clean = Cnf::top();
        clean.imply(Lit::pos(fa), Lit::pos(fb));
        clean.iff(Lit::pos(fc), Lit::pos(fa));
        clean.project_out(&[fc].into_iter().collect());
        clean.expand(&[fa, fb], &[Lit::pos(fa2), Lit::pos(fb2)]);
        let mut q = clean.clone();
        q.assert_lit(Lit::pos(fa));
        q.assert_lit(Lit::neg(fa2));
        assert!(q.is_sat(), "after projection the copy is independent");
    }
}
