//! Existential projection (quantifier elimination) by resolution.

use crate::clause::Clause;
use crate::cnf::Cnf;
use crate::lit::{Flag, FlagSet, Lit};

impl Cnf {
    /// Existentially projects the given flags out of the function:
    /// computes a CNF equivalent to `∃ dead . β` mentioning none of the
    /// `dead` flags.
    ///
    /// The paper relies on Boolean functions being "closed under projection
    /// onto a subset of variables" so that the flow inferred inside a
    /// function body can be narrowed to the flags of its type without
    /// losing precision, and notes (Section 6) that stale flags *must* be
    /// removed for the correctness of expansion.
    ///
    /// Implemented by Davis–Putnam variable elimination: for each dead
    /// flag `f`, all resolvents of clauses containing `f` with clauses
    /// containing `¬f` replace those clauses. This matches the paper's
    /// resolution-based implementation (quadratic worst case); tautological
    /// resolvents are dropped and the result is subsumption-reduced to keep
    /// it small.
    pub fn project_out(&mut self, dead: &FlagSet) {
        if dead.is_empty() {
            return;
        }
        // Eliminate cheapest flags first (fewest occurrences) to curb
        // intermediate growth. A static greedy order computed once is
        // sufficient in practice: the formulas the inference produces are
        // implication-dominated and do not blow up.
        let mut counts: std::collections::HashMap<Flag, usize> = std::collections::HashMap::new();
        for c in self.clauses() {
            for l in c.lits() {
                *counts.entry(l.flag()).or_insert(0) += 1;
            }
        }
        let mut order: Vec<Flag> = dead.iter().copied().collect();
        order.sort_by_key(|f| counts.get(f).copied().unwrap_or(0));
        for f in order {
            self.eliminate(f);
        }
        self.subsume();
    }

    /// Projects onto the complement: keeps only the `live` flags,
    /// eliminating every other mentioned flag.
    pub fn project_onto(&mut self, live: &FlagSet) {
        let dead: FlagSet = self.flags().difference(live).copied().collect();
        self.project_out(&dead);
    }

    /// Eliminates every mentioned flag for which `keep` returns false.
    /// Like [`Cnf::project_onto`] but with a membership predicate, so the
    /// caller never has to materialise the (possibly large) live set.
    pub fn project_unless(&mut self, keep: impl Fn(Flag) -> bool) {
        let dead: FlagSet = self.flags().into_iter().filter(|&f| !keep(f)).collect();
        self.project_out(&dead);
    }

    /// Eliminates a single flag by resolution.
    fn eliminate(&mut self, f: Flag) {
        let pos_lit = Lit::pos(f);
        let neg_lit = Lit::neg(f);
        let mut pos: Vec<Clause> = Vec::new();
        let mut neg: Vec<Clause> = Vec::new();
        let mut rest: Vec<Clause> = Vec::new();
        for c in std::mem::take(&mut self.clauses) {
            if c.contains(pos_lit) {
                pos.push(c);
            } else if c.contains(neg_lit) {
                neg.push(c);
            } else {
                rest.push(c);
            }
        }
        for p in &pos {
            for n in &neg {
                if let Some(r) = p.resolve(n, pos_lit) {
                    rest.push(r);
                }
            }
        }
        self.clauses = rest;
        self.normalized = false;
        self.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }
    fn set(flags: &[u32]) -> FlagSet {
        flags.iter().map(|&i| Flag(i)).collect()
    }

    #[test]
    fn projection_keeps_transitive_implication() {
        // ∃f1 . (f0 → f1) ∧ (f1 → f2) ≡ f0 → f2.
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), p(2));
        b.project_out(&set(&[1]));
        let mut expect = Cnf::top();
        expect.imply(p(0), p(2));
        assert!(b.equivalent(&expect));
        assert!(!b.mentions(Flag(1)));
    }

    #[test]
    fn projection_of_unconstrained_flag_is_identity() {
        let mut b = Cnf::top();
        b.imply(p(0), p(2));
        let before = b.clone();
        b.project_out(&set(&[7]));
        assert!(b.equivalent(&before));
    }

    #[test]
    fn projection_preserves_satisfiability() {
        // ∃f . (f) ∧ (¬f) is unsat.
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.assert_lit(n(0));
        b.project_out(&set(&[0]));
        assert!(!b.is_sat());

        // ∃f . (f ∨ g) is true (no constraint on g).
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1)]);
        b.project_out(&set(&[0]));
        assert!(b.is_top());
    }

    #[test]
    fn project_onto_keeps_only_live() {
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), p(2));
        b.imply(p(2), p(3));
        b.project_onto(&set(&[0, 3]));
        let mut expect = Cnf::top();
        expect.imply(p(0), p(3));
        assert!(b.equivalent(&expect));
    }

    /// Model-theoretic check: models of ∃f.β over the remaining universe
    /// are exactly the restrictions of β's models.
    #[test]
    fn projection_matches_model_semantics() {
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1), n(2)]);
        b.add_lits(vec![n(0), p(2)]);
        b.iff(p(1), p(2));
        let universe = [Flag(0), Flag(1), Flag(2)];
        let full = b.models(&universe);
        let mut projected = b.clone();
        projected.project_out(&set(&[1]));
        let got = projected.models(&[Flag(0), Flag(2)]);
        let mut expect: Vec<_> = full
            .into_iter()
            .map(|m| {
                m.into_iter()
                    .filter(|f| *f != Flag(1))
                    .collect::<std::collections::BTreeSet<_>>()
            })
            .collect();
        expect.sort();
        expect.dedup();
        let mut got = got;
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn equivalence_chain_projection_is_compact() {
        // A long chain of bi-implications projects to a single one.
        let mut b = Cnf::top();
        for i in 0..10 {
            b.iff(p(i), p(i + 1));
        }
        b.project_onto(&set(&[0, 10]));
        let mut expect = Cnf::top();
        expect.iff(p(0), p(10));
        assert!(b.equivalent(&expect));
        assert!(b.len() <= 2, "subsumption keeps the projection small");
    }
}
