//! Existential projection (quantifier elimination) by resolution.
//!
//! Projection is the hottest phase of flow inference (Fig. 9's `project`
//! column), so it runs on the occurrence-indexed [`ClauseDb`] engine:
//! eliminating a flag touches only the clauses that mention it, the
//! greedy cheapest-first order is re-evaluated as occurrence counts
//! change, binary-implication pivots take an implication-graph fast
//! path, and subsumption runs inline against signature-compatible
//! candidates instead of as a full quadratic rescan afterwards. See
//! `DESIGN.md` ("Projection engine") for the index layout.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashSet};

use rowpoly_obs as obs;

use crate::clause::Clause;
use crate::cnf::Cnf;
use crate::db::{ClauseDb, ProjectStats};
use crate::lit::{Flag, FlagSet, Lit};

/// Attribution site for bytes allocated by the occurrence-indexed
/// [`ClauseDb`] — slot table, occurrence lists, signatures, resolvents
/// (see `rowpoly-obs::mem`). Covers both the plain and traced
/// projection entry points.
static CLAUSE_DB_MEM: obs::MemSite = obs::MemSite::new("boolfun.clause_db");

/// Drives a [`ClauseDb`] through the elimination worklist, cheapest
/// pivot first under a lazily revalidated greedy order. Shared by the
/// plain and origin-traced projection entry points; `worklist` must be
/// sorted and deduplicated.
///
/// Almost every call eliminates a handful of flags from a small touched
/// set, where an argmin scan over a vector of cached counts beats any
/// priority queue; the heap with lazy revalidation only pays for itself
/// on wholesale sweeps (`finish_def`, `close_scheme`).
fn run_elimination(db: &mut ClauseDb, mut worklist: Vec<Flag>) {
    const SCAN_LIMIT: usize = 32;
    if worklist.len() <= SCAN_LIMIT {
        let mut rem: Vec<(Flag, usize)> =
            worklist.iter().map(|&f| (f, db.occurrences(f))).collect();
        while !rem.is_empty() && !db.is_unsat() {
            let (best, &(f, cached)) = rem
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(f, c))| (c, f))
                .expect("non-empty remaining");
            // Counts go stale as resolvents appear and subsumption
            // bites; revalidate only the chosen minimum.
            let current = db.occurrences(f);
            if current != cached {
                rem[best].1 = current;
                continue;
            }
            rem.swap_remove(best);
            db.eliminate(f);
        }
    } else {
        let mut remaining: BTreeSet<Flag> = worklist.drain(..).collect();
        let mut heap: BinaryHeap<Reverse<(usize, Flag)>> = remaining
            .iter()
            .map(|&f| Reverse((db.occurrences(f), f)))
            .collect();
        while let Some(Reverse((count, f))) = heap.pop() {
            if !remaining.contains(&f) {
                continue;
            }
            let current = db.occurrences(f);
            if current != count {
                // Stale priority: resolvents or subsumption changed
                // the count since this entry was pushed. Re-queue at
                // the current cost instead of eliminating out of
                // order.
                heap.push(Reverse((current, f)));
                continue;
            }
            remaining.remove(&f);
            db.eliminate(f);
            if db.is_unsat() {
                break;
            }
        }
    }
}

/// Merges two sorted, deduplicated clause runs into one, dropping
/// duplicates across the runs.
fn merge_dedup(a: Vec<Clause>, b: Vec<Clause>) -> Vec<Clause> {
    if b.is_empty() {
        return a;
    }
    if a.is_empty() {
        return b;
    }
    let mut out: Vec<Clause> = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        let take_a = match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => x <= y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let c = if take_a {
            ia.next().expect("peeked")
        } else {
            ib.next().expect("peeked")
        };
        if out.last() != Some(&c) {
            out.push(c);
        }
    }
    out
}

impl Cnf {
    /// Existentially projects the given flags out of the function:
    /// computes a CNF equivalent to `∃ dead . β` mentioning none of the
    /// `dead` flags.
    ///
    /// The paper relies on Boolean functions being "closed under projection
    /// onto a subset of variables" so that the flow inferred inside a
    /// function body can be narrowed to the flags of its type without
    /// losing precision, and notes (Section 6) that stale flags *must* be
    /// removed for the correctness of expansion.
    ///
    /// Implemented by Davis–Putnam variable elimination on the indexed
    /// clause database: for each dead flag `f`, all resolvents of clauses
    /// containing `f` with clauses containing `¬f` replace those clauses.
    /// Tautological resolvents are dropped and subsumed clauses are
    /// discarded as they appear, so no separate reduction pass is needed.
    pub fn project_out(&mut self, dead: &FlagSet) -> ProjectStats {
        // The dead check runs once per literal of the whole formula (the
        // partition scan), so flatten the set into a sorted slice first:
        // a binary search over dense `u32`s beats pointer-chasing the
        // B-tree on every literal.
        let flat: Vec<Flag> = dead.iter().copied().collect();
        self.project_out_sorted(&flat)
    }

    /// [`Cnf::project_out`] over a sorted, deduplicated slice. The hot
    /// inference paths keep their dead sets in this shape already, so
    /// this entry point spares them a `FlagSet` round-trip per call.
    pub fn project_out_sorted(&mut self, dead: &[Flag]) -> ProjectStats {
        debug_assert!(dead.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        if dead.is_empty() {
            return ProjectStats::default();
        }
        // Typical dead sets hold a handful of flags; a linear sweep over
        // dense `u32`s is branch-predictable and vectorises, while the
        // binary search only wins once the set is genuinely large.
        if dead.len() <= 8 {
            self.eliminate_where(|f| dead.contains(&f))
        } else {
            self.eliminate_where(|f| dead.binary_search(&f).is_ok())
        }
    }

    /// [`Cnf::project_out_sorted`] with clause-lineage tracing: also
    /// returns, parallel to the resulting clause vector, the sorted
    /// sets of *pre-projection* clause indices (into `self.clauses()`
    /// as it stood at call time) whose conjunction entails each
    /// surviving clause. An unsat core computed over the projected
    /// formula therefore maps back to an unsatisfiable subset of the
    /// original clauses by unioning the origin sets of its members; if
    /// projection itself derives `⊥`, the single empty clause carries
    /// the origins of the conflict.
    ///
    /// Tracing pays for an origin-set union on every resolvent, so the
    /// hot inference paths keep using the untraced [`Cnf::project_out`];
    /// this entry point serves diagnostics that must explain a
    /// post-projection verdict in terms of pre-projection clause ids.
    pub fn project_out_traced(&mut self, dead: &[Flag]) -> (ProjectStats, Vec<Vec<u32>>) {
        debug_assert!(dead.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        let _mem = CLAUSE_DB_MEM.scope();
        let is_dead = |f: Flag| dead.binary_search(&f).is_ok();
        let mut passive: Vec<(Clause, u32)> = Vec::new();
        let mut db = ClauseDb::traced();
        let mut touched = 0usize;
        let mut worklist: Vec<Flag> = Vec::new();
        for (i, c) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            let mut hit = false;
            for l in c.lits() {
                if is_dead(l.flag()) {
                    hit = true;
                    worklist.push(l.flag());
                }
            }
            if hit {
                db.attach_traced(c, i as u32);
                touched += 1;
            } else {
                passive.push((c, i as u32));
            }
        }
        if touched == 0 {
            // Order preserved, every clause its own origin.
            let mut origins = Vec::with_capacity(passive.len());
            self.clauses = passive
                .into_iter()
                .map(|(c, i)| {
                    origins.push(vec![i]);
                    c
                })
                .collect();
            return (ProjectStats::default(), origins);
        }
        worklist.sort_unstable();
        worklist.dedup();
        run_elimination(&mut db, worklist);
        let stats = db.stats;
        if db.is_unsat() {
            let (clauses, origins) = db.into_clauses_traced();
            self.clauses = clauses;
            self.normalized = true;
            self.note_structural_change();
            self.record_obs(&stats);
            return (stats, origins);
        }
        let (fresh, fresh_origins) = db.into_clauses_traced();
        // Origins must travel with their clauses through the final
        // renormalisation, so sort pairs instead of the linear
        // `merge_dedup` of the untraced engine. On a duplicate the
        // first pair survives — either origin set entails the clause.
        let mut pairs: Vec<(Clause, Vec<u32>)> = passive
            .into_iter()
            .map(|(c, i)| (c, vec![i]))
            .chain(fresh.into_iter().zip(fresh_origins))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| a.0 == b.0);
        let mut origins = Vec::with_capacity(pairs.len());
        self.clauses = pairs
            .into_iter()
            .map(|(c, o)| {
                origins.push(o);
                c
            })
            .collect();
        self.normalized = true;
        self.note_structural_change();
        self.record_obs(&stats);
        (stats, origins)
    }

    fn record_obs(&self, stats: &ProjectStats) {
        if obs::enabled() {
            obs::counter_add("project.elim.fastpath", stats.fastpath as u64);
            obs::counter_add("project.elim.fallback", stats.fallback as u64);
            obs::counter_add("project.resolvents", stats.resolvents as u64);
            obs::counter_add("project.subsumed", stats.subsumed as u64);
            obs::counter_add("project.sig.checks", stats.sig_checks as u64);
            obs::counter_add("project.sig.pruned", stats.sig_pruned as u64);
        }
    }

    /// Projects onto the complement: keeps only the `live` flags,
    /// eliminating every other mentioned flag.
    pub fn project_onto(&mut self, live: &FlagSet) -> ProjectStats {
        self.project_unless(|f| live.contains(&f))
    }

    /// Eliminates every mentioned flag for which `keep` returns false.
    /// Like [`Cnf::project_onto`] but with a membership predicate: the
    /// engine's partition scan collects the dead flags as it visits
    /// each literal, so neither the caller nor this method materialises
    /// a dead-flag set up front.
    pub fn project_unless(&mut self, keep: impl Fn(Flag) -> bool) -> ProjectStats {
        self.eliminate_where(|f| !keep(f))
    }

    /// The projection engine proper: moves the clauses *touching a dead
    /// flag* into a [`ClauseDb`], eliminates every mentioned dead flag —
    /// cheapest first under a lazily revalidated greedy order, so the
    /// order tracks the *current* occurrence counts as resolvents appear
    /// — and merges the surviving clauses back.
    ///
    /// Clauses over live flags only never enter the database: a typical
    /// [`Cnf::project_out`] call kills a handful of flags out of a large
    /// β, and indexing (and subsuming against) the untouched majority is
    /// exactly the whole-CNF rescan this engine exists to avoid. Every
    /// clause mentioning a dead flag is indexed, so occurrence counts
    /// are exact for every pivot; resolvents are subsumption-checked
    /// against the indexed set, and one final renormalisation — a linear
    /// merge when the input was already normalised — dedupes them
    /// against the passive clauses.
    fn eliminate_where(&mut self, is_dead: impl Fn(Flag) -> bool) -> ProjectStats {
        let _mem = CLAUSE_DB_MEM.scope();
        let was_normalized = self.normalized;
        let mut passive: Vec<Clause> = Vec::new();
        let mut db = ClauseDb::empty();
        let mut touched = 0usize;
        // The partition scan visits every literal anyway, so it also
        // collects the dead flags that are actually mentioned — the
        // elimination worklist — sparing a walk over the occurrence
        // index afterwards.
        let mut worklist: Vec<Flag> = Vec::new();
        for c in std::mem::take(&mut self.clauses) {
            let mut hit = false;
            for l in c.lits() {
                if is_dead(l.flag()) {
                    hit = true;
                    worklist.push(l.flag());
                }
            }
            if hit {
                db.attach(c);
                touched += 1;
            } else {
                passive.push(c);
            }
        }
        if touched == 0 {
            // Nothing dead is mentioned: the single partition pass above
            // doubled as the no-op check, and `passive` preserved the
            // original clause order, so the CNF is exactly as it was.
            self.clauses = passive;
            return ProjectStats::default();
        }
        run_elimination(&mut db, worklist);
        let stats = db.stats;
        if db.is_unsat() {
            self.clauses = vec![Clause::empty()];
            self.normalized = false;
            self.normalize();
        } else {
            let mut fresh = db.into_clauses();
            fresh.sort_unstable();
            fresh.dedup();
            if was_normalized {
                // The partition preserved clause order, so `passive` is
                // still a sorted, deduplicated run: a linear merge with
                // the (small, just-sorted) survivors renormalises the
                // whole vector without re-sorting the untouched bulk.
                self.clauses = merge_dedup(passive, fresh);
                self.normalized = true;
                self.note_structural_change();
            } else {
                self.clauses = passive;
                self.clauses.extend(fresh);
                self.normalized = false;
                self.normalize();
            }
        }
        self.record_obs(&stats);
        stats
    }

    /// Reference Davis–Putnam projection: the naive engine the indexed
    /// one replaced. For each dead flag the whole clause set is
    /// partitioned on the pivot and cross-resolved; duplicates are
    /// fended off with a per-call seen-set and the clause vector is
    /// normalised and subsumption-reduced once per call (not once per
    /// flag). Retained as the differential-testing oracle and as the
    /// "before" arm of the `project` microbench.
    pub fn project_out_dp(&mut self, dead: &FlagSet) {
        if dead.is_empty() {
            return;
        }
        // Static greedy order, computed once up front (the indexed
        // engine re-sorts dynamically; the reference keeps the old
        // behaviour on purpose).
        let mut counts: std::collections::HashMap<Flag, usize> = std::collections::HashMap::new();
        for c in self.clauses() {
            for l in c.lits() {
                *counts.entry(l.flag()).or_insert(0) += 1;
            }
        }
        let mut order: Vec<Flag> = dead.iter().copied().collect();
        order.sort_by_key(|f| counts.get(f).copied().unwrap_or(0));
        let mut seen: HashSet<Clause> = self.clauses.iter().cloned().collect();
        for f in order {
            self.eliminate_dp(f, &mut seen);
        }
        self.normalized = false;
        self.subsume();
    }

    /// One naive elimination step: partition everything, resolve the
    /// pivot partitions pairwise. `seen` suppresses duplicate resolvents
    /// across steps in place of the per-flag renormalisation the old
    /// implementation did.
    fn eliminate_dp(&mut self, f: Flag, seen: &mut HashSet<Clause>) {
        let pos_lit = Lit::pos(f);
        let neg_lit = Lit::neg(f);
        let mut pos: Vec<Clause> = Vec::new();
        let mut neg: Vec<Clause> = Vec::new();
        let mut rest: Vec<Clause> = Vec::new();
        for c in std::mem::take(&mut self.clauses) {
            if c.contains(pos_lit) {
                seen.remove(&c);
                pos.push(c);
            } else if c.contains(neg_lit) {
                seen.remove(&c);
                neg.push(c);
            } else {
                rest.push(c);
            }
        }
        for p in &pos {
            for n in &neg {
                if let Some(r) = p.resolve(n, pos_lit) {
                    if seen.insert(r.clone()) {
                        rest.push(r);
                    }
                }
            }
        }
        self.clauses = rest;
        self.normalized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Lit {
        Lit::pos(Flag(i))
    }
    fn n(i: u32) -> Lit {
        Lit::neg(Flag(i))
    }
    fn set(flags: &[u32]) -> FlagSet {
        flags.iter().map(|&i| Flag(i)).collect()
    }

    #[test]
    fn projection_keeps_transitive_implication() {
        // ∃f1 . (f0 → f1) ∧ (f1 → f2) ≡ f0 → f2.
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), p(2));
        let stats = b.project_out(&set(&[1]));
        let mut expect = Cnf::top();
        expect.imply(p(0), p(2));
        assert!(b.equivalent(&expect));
        assert!(!b.mentions(Flag(1)));
        assert_eq!(stats.eliminated, 1);
        assert_eq!(stats.fastpath, 1);
        assert_eq!(stats.fallback, 0);
    }

    #[test]
    fn projection_of_unconstrained_flag_is_identity() {
        let mut b = Cnf::top();
        b.imply(p(0), p(2));
        let before = b.clone();
        let stats = b.project_out(&set(&[7]));
        assert!(b.equivalent(&before));
        assert_eq!(stats, ProjectStats::default());
    }

    #[test]
    fn projection_preserves_satisfiability() {
        // ∃f . (f) ∧ (¬f) is unsat.
        let mut b = Cnf::top();
        b.assert_lit(p(0));
        b.assert_lit(n(0));
        b.project_out(&set(&[0]));
        assert!(!b.is_sat());

        // ∃f . (f ∨ g) is true (no constraint on g).
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1)]);
        b.project_out(&set(&[0]));
        assert!(b.is_top());
    }

    #[test]
    fn project_onto_keeps_only_live() {
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), p(2));
        b.imply(p(2), p(3));
        b.project_onto(&set(&[0, 3]));
        let mut expect = Cnf::top();
        expect.imply(p(0), p(3));
        assert!(b.equivalent(&expect));
    }

    /// Model-theoretic check: models of ∃f.β over the remaining universe
    /// are exactly the restrictions of β's models.
    #[test]
    fn projection_matches_model_semantics() {
        let mut b = Cnf::top();
        b.add_lits(vec![p(0), p(1), n(2)]);
        b.add_lits(vec![n(0), p(2)]);
        b.iff(p(1), p(2));
        let universe = [Flag(0), Flag(1), Flag(2)];
        let full = b.models(&universe);
        let mut projected = b.clone();
        projected.project_out(&set(&[1]));
        let got = projected.models(&[Flag(0), Flag(2)]);
        let mut expect: Vec<_> = full
            .into_iter()
            .map(|m| {
                m.into_iter()
                    .filter(|f| *f != Flag(1))
                    .collect::<std::collections::BTreeSet<_>>()
            })
            .collect();
        expect.sort();
        expect.dedup();
        let mut got = got;
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn equivalence_chain_projection_is_compact() {
        // A long chain of bi-implications projects to a single one.
        let mut b = Cnf::top();
        for i in 0..10 {
            b.iff(p(i), p(i + 1));
        }
        b.project_onto(&set(&[0, 10]));
        let mut expect = Cnf::top();
        expect.iff(p(0), p(10));
        assert!(b.equivalent(&expect));
        assert!(b.len() <= 2, "subsumption keeps the projection small");
    }

    #[test]
    fn wide_clauses_route_through_the_fallback() {
        // fr ↔ f0 ∨ f1 (a symmetric-concat shape): eliminating f0 needs
        // general resolution over the 3-literal clause.
        let mut b = Cnf::top();
        b.add_lits(vec![n(2), p(0), p(1)]);
        b.imply(p(0), p(2));
        b.imply(p(1), p(2));
        let full = b.models(&[Flag(0), Flag(1), Flag(2)]);
        let stats = b.project_out(&set(&[0]));
        assert_eq!(stats.fallback, 1);
        let mut expect: Vec<std::collections::BTreeSet<Flag>> = full
            .into_iter()
            .map(|m| m.into_iter().filter(|&f| f != Flag(0)).collect())
            .collect();
        expect.sort();
        expect.dedup();
        let mut got = b.models(&[Flag(1), Flag(2)]);
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn indexed_and_reference_agree_on_a_mixed_formula() {
        let mut a = Cnf::top();
        a.add_lits(vec![p(0), p(1), n(2)]);
        a.add_lits(vec![n(0), p(3)]);
        a.imply(p(3), p(4));
        a.assert_lit(p(1));
        let mut b = a.clone();
        let dead = set(&[0, 3]);
        a.project_out(&dead);
        b.project_out_dp(&dead);
        assert!(a.equivalent(&b), "indexed {a:?} vs reference {b:?}");
    }

    #[test]
    fn traced_projection_matches_untraced_result() {
        let mut a = Cnf::top();
        a.add_lits(vec![p(0), p(1), n(2)]);
        a.add_lits(vec![n(0), p(3)]);
        a.imply(p(3), p(4));
        a.assert_lit(p(1));
        a.normalize();
        let mut b = a.clone();
        a.project_out(&set(&[0, 3]));
        let (_, origins) = b.project_out_traced(&[Flag(0), Flag(3)]);
        assert!(a.equivalent(&b), "traced {b:?} vs untraced {a:?}");
        assert_eq!(origins.len(), b.len(), "one origin set per clause");
    }

    #[test]
    fn traced_origins_entail_each_surviving_clause() {
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.imply(p(1), p(2));
        b.imply(p(2), p(3));
        b.assert_lit(p(4));
        b.normalize();
        let before = b.clone();
        let (_, origins) = b.project_out_traced(&[Flag(1), Flag(2)]);
        assert_eq!(origins.len(), b.len());
        for (c, org) in b.clauses().iter().zip(&origins) {
            let sub = Cnf::from_clauses(org.iter().map(|&i| before.clauses()[i as usize].clone()));
            assert!(sub.entails_clause(c), "origins {org:?} do not entail {c:?}");
        }
        // The passive unit f4 kept its own id as sole origin.
        let unit = Clause::unit(p(4));
        let idx = b
            .clauses()
            .iter()
            .position(|c| *c == unit)
            .expect("f4 survives");
        let own = before
            .clauses()
            .iter()
            .position(|c| *c == unit)
            .expect("f4 in input") as u32;
        assert_eq!(origins[idx], vec![own]);
    }

    #[test]
    fn traced_unsat_core_maps_to_input_subset() {
        // f0 → f1, f0, ¬f1: eliminating f0 and f1 derives ⊥; the empty
        // clause's origins must name an unsatisfiable input subset.
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.assert_lit(p(0));
        b.assert_lit(n(1));
        b.add_lits(vec![p(5), p(6)]); // irrelevant bystander
        b.normalize();
        let before = b.clone();
        let (_, origins) = b.project_out_traced(&[Flag(0), Flag(1)]);
        assert!(b.has_empty_clause());
        assert_eq!(origins.len(), 1);
        let core = &origins[0];
        let sub = Cnf::from_clauses(core.iter().map(|&i| before.clauses()[i as usize].clone()));
        assert!(!sub.is_sat(), "origin subset {core:?} is satisfiable");
        let bystander = Clause::new(vec![p(5), p(6)]).expect("clause");
        let by = before
            .clauses()
            .iter()
            .position(|c| *c == bystander)
            .expect("present") as u32;
        assert!(
            !core.contains(&by),
            "bystander clause dragged into the conflict origins"
        );
    }

    #[test]
    fn traced_projection_with_no_dead_mention_is_identity() {
        let mut b = Cnf::top();
        b.imply(p(0), p(2));
        b.normalize();
        let before = b.clone();
        let (stats, origins) = b.project_out_traced(&[Flag(7)]);
        assert_eq!(stats, ProjectStats::default());
        assert_eq!(b, before);
        assert_eq!(origins, vec![vec![0]]);
    }

    /// Randomized lineage soundness: every surviving clause is entailed
    /// by the input clauses its origin set names.
    #[test]
    fn traced_origins_sound_on_random_formulas() {
        let mut state: u64 = 0x0123456789ABCDEF;
        let mut rand = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _case in 0..120 {
            let nflags = 3 + rand(5) as u32;
            let mut cnf = Cnf::top();
            for _ in 0..(2 + rand(8)) {
                let len = 1 + rand(3) as usize;
                let mut lits = Vec::new();
                for _ in 0..len {
                    let f = Flag(rand(nflags as u64) as u32);
                    lits.push(if rand(2) == 0 { p(f.0) } else { n(f.0) });
                }
                cnf.add_lits(lits);
            }
            cnf.normalize();
            let before = cnf.clone();
            let ndead = 1 + rand(2) as usize;
            let mut dead: Vec<Flag> = (0..ndead)
                .map(|_| Flag(rand(nflags as u64) as u32))
                .collect();
            dead.sort_unstable();
            dead.dedup();
            let mut untraced = cnf.clone();
            untraced.project_out_sorted(&dead);
            let (_, origins) = cnf.project_out_traced(&dead);
            assert!(
                cnf.equivalent(&untraced),
                "traced/untraced disagree on {before:?}"
            );
            assert_eq!(origins.len(), cnf.len());
            for (c, org) in cnf.clauses().iter().zip(&origins) {
                let sub =
                    Cnf::from_clauses(org.iter().map(|&i| before.clauses()[i as usize].clone()));
                assert!(
                    sub.entails_clause(c),
                    "origins {org:?} of {c:?} not entailed (input {before:?})"
                );
            }
        }
    }

    #[test]
    fn unsat_projection_reports_bottom() {
        // f0 → f1, f0, ¬f1: eliminating everything derives ⊥.
        let mut b = Cnf::top();
        b.imply(p(0), p(1));
        b.assert_lit(p(0));
        b.assert_lit(n(1));
        b.project_out(&set(&[0, 1]));
        assert!(!b.is_sat());
        assert!(b.has_empty_clause());
    }
}
