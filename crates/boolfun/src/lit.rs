//! Propositional flag variables and literals.

use std::collections::BTreeSet;
use std::fmt;

/// A propositional variable ("flag") describing whether a record field
/// exists.
///
/// In the paper these are written `fa, fb, …` and annotate record fields
/// (`N.fN : t`) as well as type- and row-variable occurrences (`a.fa`).
///
/// Flags are allocated by a [`FlagAlloc`] and are plain indices, so they are
/// cheap to copy and can index into side tables (e.g. provenance maps kept
/// by the inference for error reporting).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Flag(pub u32);

impl Flag {
    /// Numeric index of this flag.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Allocator of fresh [`Flag`]s.
///
/// Each inference session owns one allocator; every `⇑RP` decoration and
/// every inference rule that introduces flags draws from it.
#[derive(Clone, Debug, Default)]
pub struct FlagAlloc {
    next: u32,
}

impl FlagAlloc {
    /// Creates an allocator with no flags allocated yet.
    pub fn new() -> Self {
        FlagAlloc { next: 0 }
    }

    /// Returns a fresh, never-before-returned flag.
    pub fn fresh(&mut self) -> Flag {
        let f = Flag(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("flag space exhausted (2^32 flags)");
        f
    }

    /// Number of flags allocated so far. All allocated flags have indices
    /// in `0..count()`.
    pub fn count(&self) -> usize {
        self.next as usize
    }
}

/// A literal: a flag or its negation.
///
/// Encoded as `flag_index << 1 | sign` with `sign = 1` for negated, so
/// literals order first by flag, then positive before negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal `f`.
    pub fn pos(f: Flag) -> Lit {
        Lit(f.0 << 1)
    }

    /// The negative literal `¬f`.
    pub fn neg(f: Flag) -> Lit {
        Lit(f.0 << 1 | 1)
    }

    /// Builds a literal from a flag and a sign (`negated = true` for `¬f`).
    pub fn new(f: Flag, negated: bool) -> Lit {
        Lit(f.0 << 1 | negated as u32)
    }

    /// The underlying flag.
    pub fn flag(self) -> Flag {
        Flag(self.0 >> 1)
    }

    /// Whether this literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Renames the underlying flag, preserving the sign.
    pub fn with_flag(self, f: Flag) -> Lit {
        Lit(f.0 << 1 | (self.0 & 1))
    }

    /// Applies the polarity of `other` on top of this literal's own sign:
    /// if `other` is negated the result is this literal negated.
    ///
    /// This implements the contra-variant composition used when expanding
    /// flows onto the (possibly negated) entries of a `*t+` sequence.
    pub fn xor_sign(self, negated: bool) -> Lit {
        Lit(self.0 ^ negated as u32)
    }

    /// Raw encoded value (used by the solvers for indexing).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬{}", self.flag())
        } else {
            write!(f, "{}", self.flag())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An ordered set of flags.
///
/// Used for live-flag bookkeeping when projecting stale flags out of a
/// Boolean function.
pub type FlagSet = BTreeSet<Flag>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_monotone_and_distinct() {
        let mut a = FlagAlloc::new();
        let f0 = a.fresh();
        let f1 = a.fresh();
        assert_ne!(f0, f1);
        assert!(f0 < f1);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn lit_roundtrip() {
        let f = Flag(7);
        assert_eq!(Lit::pos(f).flag(), f);
        assert_eq!(Lit::neg(f).flag(), f);
        assert!(Lit::neg(f).is_neg());
        assert!(!Lit::pos(f).is_neg());
        assert_eq!(Lit::pos(f).negate(), Lit::neg(f));
        assert_eq!(Lit::neg(f).negate(), Lit::pos(f));
        assert_eq!(Lit::new(f, true), Lit::neg(f));
        assert_eq!(Lit::from_code(Lit::neg(f).code()), Lit::neg(f));
    }

    #[test]
    fn lit_xor_sign_composes_polarity() {
        let f = Flag(3);
        assert_eq!(Lit::pos(f).xor_sign(false), Lit::pos(f));
        assert_eq!(Lit::pos(f).xor_sign(true), Lit::neg(f));
        assert_eq!(Lit::neg(f).xor_sign(true), Lit::pos(f));
    }

    #[test]
    fn lit_ordering_groups_by_flag() {
        assert!(Lit::pos(Flag(0)) < Lit::neg(Flag(0)));
        assert!(Lit::neg(Flag(0)) < Lit::pos(Flag(1)));
    }

    #[test]
    fn lit_with_flag_preserves_sign() {
        let l = Lit::neg(Flag(2)).with_flag(Flag(9));
        assert_eq!(l, Lit::neg(Flag(9)));
    }
}
