//! Differential tests for the indexed projection engine: on randomized
//! CNFs from each of the paper's Boolean classes (2-SAT, Horn, general),
//! `Cnf::project_out` must agree with the retained naive Davis–Putnam
//! reference `Cnf::project_out_dp` on model semantics, satisfiability,
//! and mutual entailment — and the class-aware dispatch must route
//! binary-only pivots through the fast path.
//!
//! Sampling uses the in-tree seeded PRNG (`rowpoly_obs::rng`) instead of
//! `proptest` — the build environment has no crates.io access.

use std::collections::BTreeSet;

use rowpoly_boolfun::{Cnf, Flag, FlagSet, Lit};
use rowpoly_obs::cases;
use rowpoly_obs::rng::SplitMix64;

const N: u32 = 6;

fn universe() -> Vec<Flag> {
    (0..N).map(Flag).collect()
}

fn lit(rng: &mut SplitMix64, nflags: u32) -> Lit {
    Lit::new(Flag(rng.gen_range(0..nflags)), rng.gen_bool(0.5))
}

/// Random 2-SAT formula: units and binary clauses only (the class that
/// select/update generate; ~99% of fig9 β-clauses).
fn cnf_twosat(rng: &mut SplitMix64) -> Cnf {
    let mut b = Cnf::top();
    for _ in 0..rng.gen_range(0..14usize) {
        let width = rng.gen_range(1..3usize);
        b.add_lits((0..width).map(|_| lit(rng, N)).collect());
    }
    b.normalize();
    b
}

/// Random Horn formula: at most one positive literal per clause
/// (asymmetric concatenation's class).
fn cnf_horn(rng: &mut SplitMix64) -> Cnf {
    let mut b = Cnf::top();
    for _ in 0..rng.gen_range(0..12usize) {
        let negs = rng.gen_range(0..3usize);
        let mut lits: Vec<Lit> = (0..negs)
            .map(|_| Lit::neg(Flag(rng.gen_range(0..N))))
            .collect();
        if rng.gen_bool(0.7) {
            lits.push(Lit::pos(Flag(rng.gen_range(0..N))));
        }
        if lits.is_empty() {
            continue;
        }
        b.add_lits(lits);
    }
    b.normalize();
    b
}

/// Random general CNF with clauses wide enough to force the
/// Davis–Putnam fallback (symmetric concat / `when` shapes).
fn cnf_general(rng: &mut SplitMix64) -> Cnf {
    let mut b = Cnf::top();
    for _ in 0..rng.gen_range(0..12usize) {
        let width = rng.gen_range(1..5usize);
        b.add_lits((0..width).map(|_| lit(rng, N)).collect());
    }
    b.normalize();
    b
}

/// A random non-empty dead set over the universe.
fn dead_set(rng: &mut SplitMix64) -> FlagSet {
    let mask = rng.gen_range(1u32..1 << N);
    (0..N).filter(|i| mask >> i & 1 == 1).map(Flag).collect()
}

/// Runs both engines on clones of `f` and checks they agree on
/// satisfiability, mutual entailment, and model semantics over the
/// remaining flags.
fn check_agreement(f: &Cnf, dead: &FlagSet, ctx: &str) {
    let remaining: Vec<Flag> = universe()
        .into_iter()
        .filter(|x| !dead.contains(x))
        .collect();
    let mut expect: BTreeSet<BTreeSet<Flag>> = BTreeSet::new();
    for m in f.models(&universe()) {
        expect.insert(m.into_iter().filter(|x| !dead.contains(x)).collect());
    }

    let mut indexed = f.clone();
    indexed.project_out(dead);
    let mut reference = f.clone();
    reference.project_out_dp(dead);

    assert_eq!(
        indexed.is_sat(),
        reference.is_sat(),
        "{ctx}: sat disagreement projecting {dead:?} from {f:?}"
    );
    assert!(
        indexed.entails(&reference),
        "{ctx}: indexed {indexed:?} ⊭ reference {reference:?} (from {f:?} minus {dead:?})"
    );
    assert!(
        reference.entails(&indexed),
        "{ctx}: reference {reference:?} ⊭ indexed {indexed:?} (from {f:?} minus {dead:?})"
    );
    let got: BTreeSet<BTreeSet<Flag>> = indexed.models(&remaining).into_iter().collect();
    assert_eq!(
        got, expect,
        "{ctx}: model semantics broken projecting {dead:?} from {f:?}"
    );
}

#[test]
fn twosat_projection_matches_reference() {
    let mut rng = SplitMix64::seed_from_u64(0xC0DE_0001);
    for case in 0..cases(256) {
        let f = cnf_twosat(&mut rng);
        let dead = dead_set(&mut rng);
        check_agreement(&f, &dead, &format!("2-sat case {case}"));
    }
}

#[test]
fn horn_projection_matches_reference() {
    let mut rng = SplitMix64::seed_from_u64(0xC0DE_0002);
    for case in 0..cases(256) {
        let f = cnf_horn(&mut rng);
        let dead = dead_set(&mut rng);
        check_agreement(&f, &dead, &format!("horn case {case}"));
    }
}

#[test]
fn general_projection_matches_reference() {
    let mut rng = SplitMix64::seed_from_u64(0xC0DE_0003);
    for case in 0..cases(256) {
        let f = cnf_general(&mut rng);
        let dead = dead_set(&mut rng);
        check_agreement(&f, &dead, &format!("general case {case}"));
    }
}

/// 2-SAT inputs never hit the Davis–Putnam fallback: resolvents of
/// binary clauses are at most binary, so the whole elimination sequence
/// stays on the implication-graph fast path.
#[test]
fn twosat_eliminations_stay_on_the_fast_path() {
    let mut rng = SplitMix64::seed_from_u64(0xC0DE_0004);
    let mut fastpath_total = 0usize;
    for case in 0..cases(256) {
        let f = cnf_twosat(&mut rng);
        let dead = dead_set(&mut rng);
        let mut projected = f.clone();
        let stats = projected.project_out(&dead);
        assert_eq!(
            stats.fallback, 0,
            "case {case}: fallback on 2-sat input {f:?} minus {dead:?}"
        );
        assert_eq!(stats.eliminated, stats.fastpath, "case {case}");
        fastpath_total += stats.fastpath;
    }
    assert!(fastpath_total > 0, "sampling never exercised the fast path");
}

/// Wide clauses route their pivots through the fallback, and the split
/// between the two paths always accounts for every elimination.
#[test]
fn elimination_counters_are_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0xC0DE_0005);
    let mut fallback_total = 0usize;
    for case in 0..cases(256) {
        let f = cnf_general(&mut rng);
        let dead = dead_set(&mut rng);
        let mut projected = f.clone();
        let stats = projected.project_out(&dead);
        assert_eq!(
            stats.eliminated,
            stats.fastpath + stats.fallback,
            "case {case}: paths do not partition eliminations on {f:?}"
        );
        fallback_total += stats.fallback;
    }
    assert!(fallback_total > 0, "sampling never exercised the fallback");
}
