//! Property tests for the Boolean-function domain: the syntactic
//! operations (expansion, projection) agree with their model-theoretic
//! specifications, and all solvers agree with brute force.

use proptest::prelude::*;
use rowpoly_boolfun::sat::{solve_with, Engine};
use rowpoly_boolfun::{classify, Clause, Cnf, Flag, FlagSet, Lit, SatClass};
use std::collections::BTreeSet;

/// A random literal over `nflags` flags.
fn lit(nflags: u32) -> impl Strategy<Value = Lit> {
    (0..nflags, any::<bool>()).prop_map(|(f, neg)| Lit::new(Flag(f), neg))
}

/// A random CNF over `nflags` flags with up to `max_clauses` clauses of up
/// to `max_width` literals.
fn cnf(nflags: u32, max_clauses: usize, max_width: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(prop::collection::vec(lit(nflags), 1..=max_width), 0..=max_clauses)
        .prop_map(|clauses| {
            let mut b = Cnf::top();
            for lits in clauses {
                b.add_lits(lits);
            }
            b.normalize();
            b
        })
}

const N: u32 = 6;

fn universe() -> Vec<Flag> {
    (0..N).map(Flag).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every solver agrees with brute-force model enumeration.
    #[test]
    fn solvers_agree_with_brute_force(f in cnf(N, 14, 3)) {
        let brute = !f.models(&universe()).is_empty();
        prop_assert_eq!(solve_with(Engine::Auto, &f).is_sat(), brute);
        prop_assert_eq!(solve_with(Engine::Cdcl, &f).is_sat(), brute);
        match classify(&f) {
            SatClass::TwoSat => {
                prop_assert_eq!(solve_with(Engine::TwoSat, &f).is_sat(), brute)
            }
            SatClass::Horn => {
                prop_assert_eq!(solve_with(Engine::Horn, &f).is_sat(), brute)
            }
            _ => {}
        }
    }

    /// Returned models actually satisfy the formula.
    #[test]
    fn models_are_models(f in cnf(N, 14, 3)) {
        if let rowpoly_boolfun::SatResult::Sat(m) = solve_with(Engine::Auto, &f) {
            prop_assert!(rowpoly_boolfun::sat::check_model(&f, &m), "{:?} ⊭ {:?}", m, f);
        }
    }

    /// Projection is exactly model restriction: models(∃D.β) over the
    /// remaining flags = the restrictions of models(β).
    #[test]
    fn projection_is_model_restriction(f in cnf(N, 10, 3), dead_mask in 0u32..(1 << N)) {
        let dead: FlagSet = (0..N).filter(|i| dead_mask >> i & 1 == 1).map(Flag).collect();
        let remaining: Vec<Flag> =
            (0..N).map(Flag).filter(|fl| !dead.contains(fl)).collect();

        let mut expect: BTreeSet<BTreeSet<Flag>> = BTreeSet::new();
        for m in f.models(&universe()) {
            expect.insert(m.into_iter().filter(|fl| !dead.contains(fl)).collect());
        }
        let mut projected = f.clone();
        projected.project_out(&dead);
        let got: BTreeSet<BTreeSet<Flag>> =
            projected.models(&remaining).into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    /// Expansion implements Definition 2 syntactically: the result is the
    /// original conjoined with a renamed copy of every clause mentioning a
    /// source flag.
    #[test]
    fn expansion_matches_definition_2(f in cnf(4, 10, 3)) {
        // Sources: flags 0 and 1; targets: fresh flags 4 and 5, with the
        // second target contra-variant (negated).
        let sources = [Flag(0), Flag(1)];
        let targets = [Lit::pos(Flag(4)), Lit::neg(Flag(5))];
        let mut expanded = f.clone();
        expanded.expand(&sources, &targets);

        let mut expect = f.clone();
        for c in f.clauses() {
            if c.lits().iter().any(|l| sources.contains(&l.flag())) {
                let copy = c.rename(|l| match sources.iter().position(|&s| s == l.flag()) {
                    Some(i) => targets[i].xor_sign(l.is_neg()),
                    None => l,
                });
                if let Some(copy) = copy {
                    expect.add_clause(copy);
                }
            }
        }
        expect.normalize();
        prop_assert!(expanded.equivalent(&expect), "{expanded:?} vs {expect:?}");
    }

    /// Expansion never affects satisfiability when the targets are fresh:
    /// the copies constrain only fresh flags.
    #[test]
    fn expansion_with_fresh_targets_preserves_sat(f in cnf(4, 10, 3)) {
        let mut expanded = f.clone();
        expanded.expand(&[Flag(0), Flag(1)], &[Lit::pos(Flag(8)), Lit::pos(Flag(9))]);
        prop_assert_eq!(expanded.is_sat(), f.is_sat());
    }

    /// `classify` is sound: the reported class's syntactic invariant holds.
    #[test]
    fn classification_is_sound(f in cnf(N, 12, 4)) {
        match classify(&f) {
            SatClass::Trivial => prop_assert!(f.is_empty()),
            SatClass::Unsat => prop_assert!(f.has_empty_clause()),
            SatClass::TwoSat => {
                prop_assert!(f.clauses().iter().all(|c| c.len() <= 2))
            }
            SatClass::Horn => prop_assert!(f
                .clauses()
                .iter()
                .all(|c| c.lits().iter().filter(|l| !l.is_neg()).count() <= 1)),
            SatClass::DualHorn => prop_assert!(f
                .clauses()
                .iter()
                .all(|c| c.lits().iter().filter(|l| l.is_neg()).count() <= 1)),
            SatClass::General => {}
        }
    }

    /// Subsumption preserves logical equivalence.
    #[test]
    fn subsumption_preserves_equivalence(f in cnf(N, 12, 3)) {
        let mut reduced = f.clone();
        reduced.subsume();
        prop_assert!(reduced.equivalent(&f));
        prop_assert!(reduced.len() <= f.len());
    }

    /// Clause resolution is sound: the resolvent is entailed.
    #[test]
    fn resolution_is_entailed(
        a in prop::collection::vec(lit(N), 1..4),
        b in prop::collection::vec(lit(N), 1..4),
    ) {
        let (Some(ca), Some(cb)) = (Clause::new(a), Clause::new(b)) else {
            return Ok(());
        };
        // Find a pivot present positively in `ca` and negatively in `cb`.
        let pivot = ca
            .lits()
            .iter()
            .copied()
            .find(|l| cb.contains(l.negate()));
        if let Some(p) = pivot {
            if let Some(r) = ca.resolve(&cb, p) {
                let both = Cnf::from_clauses([ca.clone(), cb.clone()]);
                prop_assert!(both.entails_clause(&r), "{ca:?}, {cb:?} ⊭ {r:?}");
            }
        }
    }
}
