//! Property tests for the Boolean-function domain: the syntactic
//! operations (expansion, projection) agree with their model-theoretic
//! specifications, and all solvers agree with brute force.
//!
//! Sampling uses the in-tree seeded PRNG (`rowpoly_obs::rng`) instead
//! of `proptest` — the build environment has no crates.io access. Case
//! counts scale with the `exhaustive` feature via `rowpoly_obs::cases`.

use rowpoly_boolfun::sat::{solve_with, Engine};
use rowpoly_boolfun::{classify, Clause, Cnf, Flag, FlagSet, Lit, SatClass};
use rowpoly_obs::cases;
use rowpoly_obs::rng::SplitMix64;
use std::collections::BTreeSet;

/// A random literal over `nflags` flags.
fn lit(rng: &mut SplitMix64, nflags: u32) -> Lit {
    Lit::new(Flag(rng.gen_range(0..nflags)), rng.gen_bool(0.5))
}

/// A random CNF over `nflags` flags with up to `max_clauses` clauses of
/// up to `max_width` literals.
fn cnf(rng: &mut SplitMix64, nflags: u32, max_clauses: usize, max_width: usize) -> Cnf {
    let nclauses = rng.gen_range(0..max_clauses + 1);
    let mut b = Cnf::top();
    for _ in 0..nclauses {
        let width = rng.gen_range(1..max_width + 1);
        b.add_lits((0..width).map(|_| lit(rng, nflags)).collect());
    }
    b.normalize();
    b
}

const N: u32 = 6;

fn universe() -> Vec<Flag> {
    (0..N).map(Flag).collect()
}

/// Every solver agrees with brute-force model enumeration.
#[test]
fn solvers_agree_with_brute_force() {
    let mut rng = SplitMix64::seed_from_u64(0xB001);
    for case in 0..cases(256) {
        let f = cnf(&mut rng, N, 14, 3);
        let brute = !f.models(&universe()).is_empty();
        assert_eq!(
            solve_with(Engine::Auto, &f).is_sat(),
            brute,
            "case {case}: auto vs brute on {f:?}"
        );
        assert_eq!(
            solve_with(Engine::Cdcl, &f).is_sat(),
            brute,
            "case {case}: cdcl vs brute on {f:?}"
        );
        match classify(&f) {
            SatClass::TwoSat => assert_eq!(
                solve_with(Engine::TwoSat, &f).is_sat(),
                brute,
                "case {case}: twosat vs brute on {f:?}"
            ),
            SatClass::Horn => assert_eq!(
                solve_with(Engine::Horn, &f).is_sat(),
                brute,
                "case {case}: horn vs brute on {f:?}"
            ),
            _ => {}
        }
    }
}

/// Returned models actually satisfy the formula.
#[test]
fn models_are_models() {
    let mut rng = SplitMix64::seed_from_u64(0xB002);
    for _ in 0..cases(256) {
        let f = cnf(&mut rng, N, 14, 3);
        if let rowpoly_boolfun::SatResult::Sat(m) = solve_with(Engine::Auto, &f) {
            assert!(rowpoly_boolfun::sat::check_model(&f, &m), "{m:?} ⊭ {f:?}");
        }
    }
}

/// Projection is exactly model restriction: models(∃D.β) over the
/// remaining flags = the restrictions of models(β).
#[test]
fn projection_is_model_restriction() {
    let mut rng = SplitMix64::seed_from_u64(0xB003);
    for _ in 0..cases(256) {
        let f = cnf(&mut rng, N, 10, 3);
        let dead_mask = rng.gen_range(0u32..1 << N);
        let dead: FlagSet = (0..N)
            .filter(|i| dead_mask >> i & 1 == 1)
            .map(Flag)
            .collect();
        let remaining: Vec<Flag> = (0..N).map(Flag).filter(|fl| !dead.contains(fl)).collect();

        let mut expect: BTreeSet<BTreeSet<Flag>> = BTreeSet::new();
        for m in f.models(&universe()) {
            expect.insert(m.into_iter().filter(|fl| !dead.contains(fl)).collect());
        }
        let mut projected = f.clone();
        projected.project_out(&dead);
        let got: BTreeSet<BTreeSet<Flag>> = projected.models(&remaining).into_iter().collect();
        assert_eq!(got, expect, "projection of {f:?} by {dead:?}");
    }
}

/// Expansion implements Definition 2 syntactically: the result is the
/// original conjoined with a renamed copy of every clause mentioning a
/// source flag.
#[test]
fn expansion_matches_definition_2() {
    let mut rng = SplitMix64::seed_from_u64(0xB004);
    for _ in 0..cases(256) {
        let f = cnf(&mut rng, 4, 10, 3);
        // Sources: flags 0 and 1; targets: fresh flags 4 and 5, with the
        // second target contra-variant (negated).
        let sources = [Flag(0), Flag(1)];
        let targets = [Lit::pos(Flag(4)), Lit::neg(Flag(5))];
        let mut expanded = f.clone();
        expanded.expand(&sources, &targets);

        let mut expect = f.clone();
        for c in f.clauses() {
            if c.lits().iter().any(|l| sources.contains(&l.flag())) {
                let copy = c.rename(|l| match sources.iter().position(|&s| s == l.flag()) {
                    Some(i) => targets[i].xor_sign(l.is_neg()),
                    None => l,
                });
                if let Some(copy) = copy {
                    expect.add_clause(copy);
                }
            }
        }
        expect.normalize();
        assert!(expanded.equivalent(&expect), "{expanded:?} vs {expect:?}");
    }
}

/// Expansion never affects satisfiability when the targets are fresh:
/// the copies constrain only fresh flags.
#[test]
fn expansion_with_fresh_targets_preserves_sat() {
    let mut rng = SplitMix64::seed_from_u64(0xB005);
    for _ in 0..cases(256) {
        let f = cnf(&mut rng, 4, 10, 3);
        let mut expanded = f.clone();
        expanded.expand(&[Flag(0), Flag(1)], &[Lit::pos(Flag(8)), Lit::pos(Flag(9))]);
        assert_eq!(
            expanded.is_sat(),
            f.is_sat(),
            "expansion changed sat of {f:?}"
        );
    }
}

/// `classify` is sound: the reported class's syntactic invariant holds.
#[test]
fn classification_is_sound() {
    let mut rng = SplitMix64::seed_from_u64(0xB006);
    for _ in 0..cases(256) {
        let f = cnf(&mut rng, N, 12, 4);
        match classify(&f) {
            SatClass::Trivial => assert!(f.is_empty()),
            SatClass::Unsat => assert!(f.has_empty_clause()),
            SatClass::TwoSat => {
                assert!(f.clauses().iter().all(|c| c.len() <= 2), "{f:?}")
            }
            SatClass::Horn => assert!(
                f.clauses()
                    .iter()
                    .all(|c| c.lits().iter().filter(|l| !l.is_neg()).count() <= 1),
                "{f:?}"
            ),
            SatClass::DualHorn => assert!(
                f.clauses()
                    .iter()
                    .all(|c| c.lits().iter().filter(|l| l.is_neg()).count() <= 1),
                "{f:?}"
            ),
            SatClass::General => {}
        }
    }
}

/// Subsumption preserves logical equivalence.
#[test]
fn subsumption_preserves_equivalence() {
    let mut rng = SplitMix64::seed_from_u64(0xB007);
    for _ in 0..cases(256) {
        let f = cnf(&mut rng, N, 12, 3);
        let mut reduced = f.clone();
        reduced.subsume();
        assert!(reduced.equivalent(&f), "{reduced:?} vs {f:?}");
        assert!(reduced.len() <= f.len());
    }
}

/// Clause resolution is sound: the resolvent is entailed.
#[test]
fn resolution_is_entailed() {
    let mut rng = SplitMix64::seed_from_u64(0xB008);
    for _ in 0..cases(256) {
        let a: Vec<Lit> = (0..rng.gen_range(1..4usize))
            .map(|_| lit(&mut rng, N))
            .collect();
        let b: Vec<Lit> = (0..rng.gen_range(1..4usize))
            .map(|_| lit(&mut rng, N))
            .collect();
        let (Some(ca), Some(cb)) = (Clause::new(a), Clause::new(b)) else {
            continue;
        };
        // Find a pivot present positively in `ca` and negatively in `cb`.
        let pivot = ca.lits().iter().copied().find(|l| cb.contains(l.negate()));
        if let Some(p) = pivot {
            if let Some(r) = ca.resolve(&cb, p) {
                let both = Cnf::from_clauses([ca.clone(), cb.clone()]);
                assert!(both.entails_clause(&r), "{ca:?}, {cb:?} ⊭ {r:?}");
            }
        }
    }
}
