//! Randomized equivalence: incremental [`Session`] vs fresh
//! [`solve_budgeted`] over seeded clause-add/retract scripts, one batch
//! of seeds per solver class, with proof checking forced on — every
//! incremental verdict is proved and replayed by the independent
//! checker, and every script step cross-checks the fresh solver on the
//! same active clause set.

use rowpoly_boolfun::sat::check_model;
use rowpoly_boolfun::{
    classify, set_check_proofs, solve_budgeted, Clause, Flag, Lit, SatBudget, SatResult, Session,
};

/// Deterministic splitmix64; no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[derive(Clone, Copy)]
enum Shape {
    TwoSat,
    Horn,
    DualHorn,
    General,
}

fn gen_clause(rng: &mut Rng, shape: Shape, nflags: usize) -> Clause {
    loop {
        let len = match shape {
            Shape::TwoSat => 1 + rng.below(2),
            _ => 1 + rng.below(3),
        };
        let mut lits: Vec<Lit> = Vec::with_capacity(len);
        for i in 0..len {
            let f = Flag(rng.below(nflags) as u32);
            let neg = match shape {
                Shape::Horn => i > 0 || rng.below(3) == 0,
                Shape::DualHorn => !(i > 0 || rng.below(3) == 0),
                _ => rng.below(2) == 0,
            };
            lits.push(Lit::new(f, neg));
        }
        // Tautologies come back as None; redraw.
        if let Some(c) = Clause::new(lits) {
            return c;
        }
    }
}

/// Runs one add/retract script, asserting after every step that the
/// session verdict matches a fresh solve of the same active set.
fn run_script(seed: u64, shape: Shape) {
    let mut rng = Rng(seed);
    let mut session = Session::new();
    let mut live: Vec<u32> = Vec::new();
    let budget = SatBudget::unlimited();
    for _ in 0..25 {
        if !live.is_empty() && rng.below(5) == 0 {
            let slot = live.swap_remove(rng.below(live.len()));
            session.retract(slot);
        } else {
            let c = gen_clause(&mut rng, shape, 8);
            live.push(session.push(&c));
        }
        let cnf = session.active_cnf();
        assert_eq!(
            session.class(),
            classify(&cnf),
            "class diverged (seed {seed})"
        );
        // Proof checking is on: this proves the verdict and replays the
        // witness against the active set before returning.
        let incr = session.solve(&budget).expect("unlimited");
        let fresh = solve_budgeted(&cnf, &budget).expect("unlimited");
        assert_eq!(
            incr.is_sat(),
            fresh.is_sat(),
            "verdict diverged (seed {seed}, {} clauses)",
            cnf.len()
        );
        if let SatResult::Sat(m) = &incr {
            assert!(check_model(&cnf, m), "invalid model (seed {seed})");
        }
    }
}

fn run_batch(shape: Shape, base: u64) {
    set_check_proofs(true);
    for seed in 0..50 {
        run_script(base + seed, shape);
    }
}

#[test]
fn twosat_scripts_agree_with_fresh() {
    run_batch(Shape::TwoSat, 0x2541);
}

#[test]
fn horn_scripts_agree_with_fresh() {
    run_batch(Shape::Horn, 0x4042);
}

#[test]
fn dual_horn_scripts_agree_with_fresh() {
    run_batch(Shape::DualHorn, 0x6743);
}

#[test]
fn general_scripts_agree_with_fresh() {
    run_batch(Shape::General, 0x8f44);
}
