//! Guarded-workload generator: programs built around optional fields and
//! `when N in x` conditionals.
//!
//! This is the repository's own extension experiment (the paper only
//! benchmarks select/update programs): it measures what the Section 5
//! classification costs *end to end* by producing whole programs whose β
//! leaves the 2-SAT fragment — optional annotations written on some paths
//! and consumed behind `when` guards, with occasional record
//! concatenations.

use rowpoly_lang::{BinOp, Def, Expr, ExprKind, Program, Span, Symbol};
use rowpoly_obs::rng::SplitMix64 as StdRng;

use crate::build::*;

/// Parameters for the guarded-workload generator.
#[derive(Clone, Debug)]
pub struct GuardedParams {
    /// RNG seed.
    pub seed: u64,
    /// Number of annotate/consume module pairs.
    pub modules: usize,
    /// Optional fields per module.
    pub fields_per_module: usize,
    /// Whether to also mix in record concatenations.
    pub with_concat: bool,
}

impl Default for GuardedParams {
    fn default() -> GuardedParams {
        GuardedParams {
            seed: 0x6A4DED,
            modules: 4,
            fields_per_module: 3,
            with_concat: false,
        }
    }
}

/// Generates a guarded workload: each module conditionally annotates a
/// record with optional fields, and a consumer reads every optional field
/// behind a `when` guard (with a default), so the program is well-typed
/// only because of Fig. 8's conditional rule.
pub fn generate_guarded(params: &GuardedParams) -> Program {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut defs: Vec<Def> = Vec::new();

    defs.push(def("mk", lam("x", update("base", var("x"), empty()))));

    for m in 0..params.modules {
        // Annotator: writes each optional field on a coin-flip branch.
        let mut body: Expr = var("s");
        for f in 0..params.fields_per_module {
            let field = format!("opt_{m}_{f}");
            let prev = body;
            body = if_(
                binop(
                    BinOp::Lt,
                    select("base", var("s")),
                    int(rng.gen_range(1..100)),
                ),
                update(&field, int(rng.gen_range(0..10)), prev.clone()),
                prev,
            );
        }
        defs.push(def(&format!("annotate_{m}"), lam("s", body)));

        // Normaliser: fill the first optional field with a default when it
        // is absent (the paper's Section 7 default-value motif). The
        // record-typed `when` branches are what push β into general CNF.
        let first = format!("opt_{m}_0");
        defs.push(def(
            &format!("fill_{m}"),
            lam(
                "s",
                Expr::new(
                    ExprKind::When {
                        field: Symbol::intern(&first),
                        subject: Symbol::intern("s"),
                        then_branch: Box::new(var("s")),
                        else_branch: Box::new(update(&first, int(0), var("s"))),
                    },
                    Span::dummy(),
                ),
            ),
        ));

        // Consumer: the filled field is read directly (safe only thanks to
        // fill); the remaining optional fields stay behind `when` guards.
        let mut total: Expr = select(&first, var("s"));
        for f in 1..params.fields_per_module {
            let field = format!("opt_{m}_{f}");
            let guarded = Expr::new(
                ExprKind::When {
                    field: Symbol::intern(&field),
                    subject: Symbol::intern("s"),
                    then_branch: Box::new(select(&field, var("s"))),
                    else_branch: Box::new(int(-1)),
                },
                Span::dummy(),
            );
            total = binop(BinOp::Add, total, guarded);
        }
        defs.push(def(&format!("consume_{m}"), lam("s", total)));

        if params.with_concat {
            // Merge the annotated record with a fresh side table
            // (asymmetric, right-biased).
            defs.push(def(
                &format!("merge_{m}"),
                lam(
                    "s",
                    Expr::new(
                        ExprKind::Concat(
                            Box::new(var("s")),
                            Box::new(update(&format!("side_{m}"), int(1), empty())),
                        ),
                        Span::dummy(),
                    ),
                ),
            ));
        }

        let annotated = app(
            var(&format!("fill_{m}")),
            app(var(&format!("annotate_{m}")), app(var("mk"), int(m as i64))),
        );
        let staged = if params.with_concat {
            app(var(&format!("merge_{m}")), annotated)
        } else {
            annotated
        };
        defs.push(def(
            &format!("run_{m}"),
            let_("r", staged, app(var(&format!("consume_{m}")), var("r"))),
        ));
    }

    let mut total: Expr = int(0);
    for m in 0..params.modules {
        total = binop(BinOp::Add, total, var(&format!("run_{m}")));
    }
    defs.push(def("main", total));
    Program { defs }
}

fn def(name: &str, body: Expr) -> Def {
    Def {
        name: Symbol::intern(name),
        span: Span::dummy(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::{parse_program, pretty_program};

    #[test]
    fn guarded_workload_roundtrips() {
        let p = generate_guarded(&GuardedParams::default());
        let src = pretty_program(&p);
        let re = parse_program(&src).expect("parses");
        assert_eq!(re.defs.len(), p.defs.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = GuardedParams::default();
        assert_eq!(
            pretty_program(&generate_guarded(&p)),
            pretty_program(&generate_guarded(&p))
        );
    }

    #[test]
    fn concat_variant_adds_defs() {
        let base = GuardedParams::default();
        let with = GuardedParams {
            with_concat: true,
            ..base.clone()
        };
        assert!(generate_guarded(&with).defs.len() > generate_guarded(&base).defs.len());
    }
}
