//! Small AST-construction helpers used by the generators.

use rowpoly_lang::{BinOp, Expr, ExprKind, Span, Symbol};

/// Variable reference.
pub fn var(name: &str) -> Expr {
    Expr::new(ExprKind::Var(Symbol::intern(name)), Span::dummy())
}

/// Integer literal.
pub fn int(n: i64) -> Expr {
    Expr::new(ExprKind::Int(n), Span::dummy())
}

/// Application.
pub fn app(f: Expr, a: Expr) -> Expr {
    Expr::new(ExprKind::App(Box::new(f), Box::new(a)), Span::dummy())
}

/// Two-argument application.
pub fn app2(f: Expr, a: Expr, b: Expr) -> Expr {
    app(app(f, a), b)
}

/// Lambda.
pub fn lam(param: &str, body: Expr) -> Expr {
    Expr::new(
        ExprKind::Lam(Symbol::intern(param), Box::new(body)),
        Span::dummy(),
    )
}

/// `let name = bound in body`.
pub fn let_(name: &str, bound: Expr, body: Expr) -> Expr {
    Expr::new(
        ExprKind::Let {
            name: Symbol::intern(name),
            bound: Box::new(bound),
            body: Box::new(body),
        },
        Span::dummy(),
    )
}

/// Conditional.
pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
    Expr::new(
        ExprKind::If(Box::new(c), Box::new(t), Box::new(e)),
        Span::dummy(),
    )
}

/// The empty record.
pub fn empty() -> Expr {
    Expr::new(ExprKind::Empty, Span::dummy())
}

/// `#field subject`.
pub fn select(field: &str, subject: Expr) -> Expr {
    app(
        Expr::new(ExprKind::Select(Symbol::intern(field)), Span::dummy()),
        subject,
    )
}

/// `@{field = value} subject`.
pub fn update(field: &str, value: Expr, subject: Expr) -> Expr {
    app(
        Expr::new(
            ExprKind::Update(Symbol::intern(field), Box::new(value)),
            Span::dummy(),
        ),
        subject,
    )
}

/// Binary operation.
pub fn binop(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::new(ExprKind::BinOp(op, Box::new(a), Box::new(b)), Span::dummy())
}
