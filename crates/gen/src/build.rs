//! Small AST-construction helpers used by the generators.
//!
//! Each helper comes in two forms: the short name stamps a zero-width
//! [`Span::dummy`] (generated programs have no source text to point
//! at), and the `*_at` form threads a caller-supplied span — used when
//! a synthesised fragment should still blame a real source location,
//! e.g. when a test builds the tree for a concrete program by hand.
//! Diagnostics rendering skips notes anchored on dummy spans, so the
//! short forms never produce dangling caret lines.

use rowpoly_lang::{BinOp, Expr, ExprKind, Span, Symbol};

/// Variable reference.
pub fn var(name: &str) -> Expr {
    var_at(name, Span::dummy())
}

/// Variable reference at `span`.
pub fn var_at(name: &str, span: Span) -> Expr {
    Expr::new(ExprKind::Var(Symbol::intern(name)), span)
}

/// Integer literal.
pub fn int(n: i64) -> Expr {
    int_at(n, Span::dummy())
}

/// Integer literal at `span`.
pub fn int_at(n: i64, span: Span) -> Expr {
    Expr::new(ExprKind::Int(n), span)
}

/// Application.
pub fn app(f: Expr, a: Expr) -> Expr {
    app_at(f, a, Span::dummy())
}

/// Application at `span`.
pub fn app_at(f: Expr, a: Expr, span: Span) -> Expr {
    Expr::new(ExprKind::App(Box::new(f), Box::new(a)), span)
}

/// Two-argument application.
pub fn app2(f: Expr, a: Expr, b: Expr) -> Expr {
    app(app(f, a), b)
}

/// Lambda.
pub fn lam(param: &str, body: Expr) -> Expr {
    lam_at(param, body, Span::dummy())
}

/// Lambda at `span`.
pub fn lam_at(param: &str, body: Expr, span: Span) -> Expr {
    Expr::new(ExprKind::Lam(Symbol::intern(param), Box::new(body)), span)
}

/// `let name = bound in body`.
pub fn let_(name: &str, bound: Expr, body: Expr) -> Expr {
    let_at(name, bound, body, Span::dummy())
}

/// `let name = bound in body` at `span`.
pub fn let_at(name: &str, bound: Expr, body: Expr, span: Span) -> Expr {
    Expr::new(
        ExprKind::Let {
            name: Symbol::intern(name),
            bound: Box::new(bound),
            body: Box::new(body),
        },
        span,
    )
}

/// Conditional.
pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
    if_at(c, t, e, Span::dummy())
}

/// Conditional at `span`.
pub fn if_at(c: Expr, t: Expr, e: Expr, span: Span) -> Expr {
    Expr::new(ExprKind::If(Box::new(c), Box::new(t), Box::new(e)), span)
}

/// The empty record.
pub fn empty() -> Expr {
    empty_at(Span::dummy())
}

/// The empty record at `span`.
pub fn empty_at(span: Span) -> Expr {
    Expr::new(ExprKind::Empty, span)
}

/// `#field subject`.
pub fn select(field: &str, subject: Expr) -> Expr {
    select_at(field, subject, Span::dummy())
}

/// `#field subject` at `span` (both the selector and the application).
pub fn select_at(field: &str, subject: Expr, span: Span) -> Expr {
    app_at(
        Expr::new(ExprKind::Select(Symbol::intern(field)), span),
        subject,
        span,
    )
}

/// `@{field = value} subject`.
pub fn update(field: &str, value: Expr, subject: Expr) -> Expr {
    update_at(field, value, subject, Span::dummy())
}

/// `@{field = value} subject` at `span` (the updater and the application).
pub fn update_at(field: &str, value: Expr, subject: Expr, span: Span) -> Expr {
    app_at(
        Expr::new(
            ExprKind::Update(Symbol::intern(field), Box::new(value)),
            span,
        ),
        subject,
        span,
    )
}

/// Binary operation.
pub fn binop(op: BinOp, a: Expr, b: Expr) -> Expr {
    binop_at(op, a, b, Span::dummy())
}

/// Binary operation at `span`.
pub fn binop_at(op: BinOp, a: Expr, b: Expr, span: Span) -> Expr {
    Expr::new(ExprKind::BinOp(op, Box::new(a), Box::new(b)), span)
}
