//! Random record-pipeline programs for differential testing.
//!
//! Observation 1 of the paper: under its side conditions (conditionals
//! abstracted to non-deterministic choice; no higher-order arguments that
//! expect records, or such functions used at most once), the inference
//! rejects a program *iff* it contains a path from an empty record to a
//! field access on which the field has not been added.
//!
//! This generator produces random programs inside exactly that fragment:
//! first-order pipelines that build records from `{}` via updates,
//! removals and conditionals, and select fields along the way. Every
//! program is skeleton-well-typed (all fields hold `Int`), so the *only*
//! reason the flow inference can reject is a missing-field path — which
//! the interpreter's path exploration can confirm or refute.

use rowpoly_lang::{BinOp, Expr};
use rowpoly_obs::rng::SplitMix64 as StdRng;

use crate::build::*;

/// Field names used by the fuzzer (a small pool maximises collisions,
/// which is where missing-field bugs live).
const FIELDS: [&str; 4] = ["a", "b", "c", "d"];

/// Configuration for [`random_pipeline`].
#[derive(Clone, Copy, Debug)]
pub struct FuzzParams {
    /// Maximum recursion depth of the generated expression.
    pub depth: usize,
    /// Probability (percent) that a pipeline step selects a field.
    pub select_pct: u32,
}

impl Default for FuzzParams {
    fn default() -> FuzzParams {
        FuzzParams {
            depth: 5,
            select_pct: 30,
        }
    }
}

/// Generates a random closed program of record pipelines, ending in a
/// field selection or an integer. Deterministic per seed.
pub fn random_pipeline(seed: u64, params: FuzzParams) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let record = gen_record(&mut rng, params.depth, params);
    // End the program by observing a field (often) or the record itself.
    if rng.gen_range(0..100) < 70 {
        let f = FIELDS[rng.gen_range(0..FIELDS.len())];
        let_("final", record, select(f, var("final")))
    } else {
        record
    }
}

/// Generates an expression of record type.
fn gen_record(rng: &mut StdRng, depth: usize, params: FuzzParams) -> Expr {
    if depth == 0 {
        return base_record(rng);
    }
    match rng.gen_range(0..10u8) {
        0 | 1 => base_record(rng),
        // Update.
        2..=4 => {
            let f = FIELDS[rng.gen_range(0..FIELDS.len())];
            update(
                f,
                int(rng.gen_range(0..100)),
                gen_record(rng, depth - 1, params),
            )
        }
        // Conditional with an opaque (non-deterministic) condition: an
        // integer literal keeps it closed, and the inference abstracts it
        // anyway.
        5 | 6 => if_(
            int(rng.gen_range(0..2)),
            gen_record(rng, depth - 1, params),
            gen_record(rng, depth - 1, params),
        ),
        // Select a field mid-pipeline, keep the record.
        7 => {
            let f = FIELDS[rng.gen_range(0..FIELDS.len())];
            let_(
                "r",
                gen_record(rng, depth - 1, params),
                if rng.gen_range(0..100) < params.select_pct {
                    let_("v", select(f, var("r")), var("r"))
                } else {
                    var("r")
                },
            )
        }
        // A first-order record→record function applied once.
        8 => {
            let f = FIELDS[rng.gen_range(0..FIELDS.len())];
            let body = if rng.gen_bool(0.5) {
                update(f, int(1), var("s"))
            } else {
                let_("v", select(f, var("s")), var("s"))
            };
            let_(
                "g",
                lam("s", body),
                app(var("g"), gen_record(rng, depth - 1, params)),
            )
        }
        // Arithmetic detour that still produces a record.
        _ => {
            let f = FIELDS[rng.gen_range(0..FIELDS.len())];
            let inner = gen_record(rng, depth - 1, params);
            let_(
                "r",
                inner,
                update(
                    f,
                    binop(BinOp::Add, int(rng.gen_range(0..10)), int(1)),
                    var("r"),
                ),
            )
        }
    }
}

fn base_record(rng: &mut StdRng) -> Expr {
    let mut r = empty();
    for f in FIELDS {
        if rng.gen_bool(0.3) {
            r = update(f, int(rng.gen_range(0..100)), r);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::pretty_expr;

    #[test]
    fn pipelines_are_deterministic_and_parseable() {
        for seed in 0..30 {
            let e1 = random_pipeline(seed, FuzzParams::default());
            let e2 = random_pipeline(seed, FuzzParams::default());
            assert_eq!(pretty_expr(&e1), pretty_expr(&e2));
            let src = pretty_expr(&e1);
            rowpoly_lang::parse_expr(&src)
                .unwrap_or_else(|d| panic!("seed {seed} unparseable: {d}\n{src}"));
        }
    }

    #[test]
    fn pipelines_are_closed() {
        for seed in 0..30 {
            let e = random_pipeline(seed, FuzzParams::default());
            assert!(e.free_vars().is_empty(), "seed {seed} has free vars");
        }
    }
}
