//! Workload generators for the evaluation.
//!
//! * [`decoder`] — synthetic decoder-specification programs with the
//!   structural profile of the GDSL workloads benchmarked in the paper's
//!   Fig. 9 (record-state-monad pipelines, conditional producer/consumer
//!   fields, shared polymorphic helpers, optional semantics layer), with
//!   line-count targeting so the four paper rows can be reproduced at
//!   their exact sizes.
//! * [`fuzz`] — random first-order record pipelines inside the fragment
//!   of Observation 1, for differential testing of the inference against
//!   the interpreter's path exploration.

pub mod build;
pub mod decoder;
pub mod fuzz;
pub mod guarded;

/// The seeded PRNG the generators are built on (in-tree, no `rand`).
pub use rowpoly_obs::rng;

pub use decoder::{fig9_workloads, generate, generate_with_lines, GenParams, Workload};
pub use fuzz::{random_pipeline, FuzzParams};
pub use guarded::{generate_guarded, GuardedParams};
