//! Synthetic decoder-specification workloads.
//!
//! The paper's Fig. 9 benchmarks its inference on GDSL decoder
//! specifications (Atmel AVR and Intel x86 instruction decoders, each
//! optionally with a semantics layer). Those sources are not available,
//! so this module generates programs *in our surface language* with the
//! same structural profile:
//!
//! * a record used as the state of a (hand-rolled) state monad, threaded
//!   through every function;
//! * per-instruction decode functions that read earlier state fields,
//!   store intermediate results in fresh fields — sometimes only inside
//!   one branch of a conditional, the paper's producer/consumer motif —
//!   and finally publish a result field;
//! * shared polymorphic helper combinators, so that scheme instantiation
//!   (and with it Boolean-flow expansion) is exercised heavily;
//! * for the "+ Sem" variants, a second layer of functions that consume
//!   the decoder's published fields and write semantics fields, mirroring
//!   GDSL's instruction-semantics translation.
//!
//! The generated program always type-checks (every select is dominated by
//! an update on all paths), so Fig. 9 measures inference throughput, not
//! error handling. Inference cost is driven by program size, record/flag
//! density and instantiation counts — all reproduced here — not by what
//! the decoded instructions mean, which is why the substitution preserves
//! the benchmark's behaviour.

use rowpoly_lang::{pretty_program, BinOp, Def, Expr, Program, Span, Symbol};
use rowpoly_obs::rng::SplitMix64 as StdRng;

use crate::build::*;

/// Parameters of the decoder-spec generator.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Number of independent decoder groups (each group threads its own
    /// state record, bounding record width).
    pub groups: usize,
    /// Decode functions per group.
    pub decoders_per_group: usize,
    /// Intermediate operations per decode function.
    pub ops_per_decoder: usize,
    /// Whether to add the semantics layer ("+ Sem" variants).
    pub with_sem: bool,
}

impl Default for GenParams {
    fn default() -> GenParams {
        GenParams {
            seed: 0xD5C0DE,
            groups: 4,
            decoders_per_group: 6,
            ops_per_decoder: 4,
            with_sem: false,
        }
    }
}

/// One row of the paper's Fig. 9.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Decoder name as printed in the paper.
    pub name: &'static str,
    /// Source line count reported in the paper.
    pub paper_lines: usize,
    /// Whether the workload includes the semantics layer.
    pub with_sem: bool,
    /// Inference time in seconds reported by the paper, without fields.
    pub paper_secs_without: f64,
    /// Inference time in seconds reported by the paper, with fields.
    pub paper_secs_with: f64,
}

/// The four decoder workloads of Fig. 9 with the paper's reported
/// numbers.
pub fn fig9_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "Atmel AVR",
            paper_lines: 1468,
            with_sem: false,
            paper_secs_without: 0.18,
            paper_secs_with: 0.32,
        },
        Workload {
            name: "Atmel AVR + Sem",
            paper_lines: 5166,
            with_sem: true,
            paper_secs_without: 1.55,
            paper_secs_with: 3.01,
        },
        Workload {
            name: "Intel x86",
            paper_lines: 9315,
            with_sem: false,
            paper_secs_without: 6.11,
            paper_secs_with: 15.65,
        },
        Workload {
            name: "Intel x86 + Sem",
            paper_lines: 18124,
            with_sem: true,
            paper_secs_without: 15.42,
            paper_secs_with: 27.38,
        },
    ]
}

/// Generates a decoder-spec program.
pub fn generate(params: &GenParams) -> Program {
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Shared polymorphic helpers, used across all groups.
    let mut defs: Vec<Def> = vec![
        def(
            "mk_state",
            lam(
                "x",
                update("mode", int(0), update("opcode", var("x"), empty())),
            ),
        ),
        def("get_opcode", lam("s", select("opcode", var("s")))),
        def(
            "with_scratch",
            lam("s", lam("v", update("scratch", var("v"), var("s")))),
        ),
        def("read_scratch", lam("s", select("scratch", var("s")))),
        def(
            "twice",
            lam("f", lam("s", app(var("f"), app(var("f"), var("s"))))),
        ),
    ];

    for g in 0..params.groups {
        let mut chain: Vec<String> = Vec::new();
        for d in 0..params.decoders_per_group {
            let name = format!("decode_{g}_{d}");
            defs.push(def(&name, decoder_body(&mut rng, g, d, params)));
            chain.push(name);
        }
        if params.with_sem {
            for d in 0..params.decoders_per_group {
                let name = format!("sem_{g}_{d}");
                defs.push(def(&name, sem_body(&mut rng, g, d, params)));
                chain.push(name);
            }
        }
        // Group driver: thread the state through all stages.
        let mut body = app(var("mk_state"), int(g as i64));
        for stage in &chain {
            body = app(var(stage), body);
        }
        defs.push(def(&format!("run_group_{g}"), body));
    }

    // Whole-program driver: sum a probe field of each group's state.
    let mut total = int(0);
    for g in 0..params.groups {
        total = binop(
            BinOp::Add,
            total,
            select("opcode", var(&format!("run_group_{g}"))),
        );
    }
    defs.push(def("main", total));
    Program { defs }
}

/// Generates a program whose pretty-printed source has approximately
/// `target_lines` lines (within ~3%), by scaling the number of decoder
/// groups. Returns the program and its source text.
pub fn generate_with_lines(target_lines: usize, with_sem: bool, seed: u64) -> (Program, String) {
    let params_for = |groups: usize| GenParams {
        seed,
        groups,
        decoders_per_group: 6,
        ops_per_decoder: 4,
        with_sem,
    };
    let lines_of = |groups: usize| {
        let p = generate(&params_for(groups));
        let src = pretty_program(&p);
        (p, src.lines().count(), src)
    };
    // Lines grow linearly in `groups`; interpolate then adjust.
    let (_, base, _) = lines_of(1);
    let (_, two, _) = lines_of(2);
    let per_group = (two - base).max(1);
    let mut groups = ((target_lines.saturating_sub(base)) / per_group).max(1);
    let (mut program, mut lines, mut src) = lines_of(groups);
    while lines < target_lines && (target_lines - lines) * 50 > target_lines {
        groups += 1;
        let r = lines_of(groups);
        program = r.0;
        lines = r.1;
        src = r.2;
    }
    while lines > target_lines && groups > 1 && (lines - target_lines) * 50 > target_lines {
        groups -= 1;
        let r = lines_of(groups);
        program = r.0;
        lines = r.1;
        src = r.2;
    }
    (program, src)
}

fn def(name: &str, body: Expr) -> Def {
    Def {
        name: Symbol::intern(name),
        span: Span::dummy(),
        body,
    }
}

/// One decode function: reads the opcode, computes intermediates into
/// fresh state fields, sometimes inside a conditional producer/consumer,
/// and publishes `res_<g>_<d>`.
///
/// State and accumulator rebindings get numbered names (`st1`, `acc1`, …):
/// `let` is recursive in this calculus, so shadowing a name with a
/// definition that reads the old value would be a self-reference.
fn decoder_body(rng: &mut StdRng, g: usize, d: usize, params: &GenParams) -> Expr {
    let n = params.ops_per_decoder;
    let st = |i: usize| {
        if i == 0 {
            "st".to_owned()
        } else {
            format!("st{i}")
        }
    };
    let acc = |i: usize| format!("acc{i}");
    // Built inside-out: the innermost expression publishes the result.
    let mut body = update(
        &format!("res_{g}_{d}"),
        binop(BinOp::Add, var(&acc(n)), int(rng.gen_range(0..64))),
        var(&st(n)),
    );
    // A chain of intermediate operations, each binding the next
    // state/accumulator generation.
    for op in (0..n).rev() {
        let tmp_field = format!("t_{g}_{d}_{op}");
        let (s0, s1) = (st(op), st(op + 1));
        let (a0, a1) = (acc(op), acc(op + 1));
        body = match rng.gen_range(0..4u8) {
            // Plain store-then-load through the state.
            0 => let_(
                &s1,
                update(&tmp_field, binop(BinOp::Mul, var(&a0), int(2)), var(&s0)),
                let_(&a1, select(&tmp_field, var(&s1)), body),
            ),
            // The paper's motif: a producer/consumer confined to the
            // then-branch of a conditional.
            1 => let_(
                &s1,
                if_(
                    binop(BinOp::Lt, var(&a0), int(rng.gen_range(1..32))),
                    let_(
                        "inner",
                        update(&tmp_field, var(&a0), var(&s0)),
                        let_("probe", select(&tmp_field, var("inner")), var("inner")),
                    ),
                    var(&s0),
                ),
                let_(&a1, binop(BinOp::Add, var(&a0), int(1)), body),
            ),
            // Use the shared polymorphic scratch helpers.
            2 => let_(
                &s1,
                app2(var("with_scratch"), var(&s0), var(&a0)),
                let_(&a1, app(var("read_scratch"), var(&s1)), body),
            ),
            // Arithmetic on the accumulator only.
            _ => let_(
                &s1,
                var(&s0),
                let_(
                    &a1,
                    binop(
                        BinOp::Add,
                        var(&a0),
                        binop(BinOp::Mul, var(&a0), int(rng.gen_range(1..8))),
                    ),
                    body,
                ),
            ),
        };
    }
    let body = let_(&acc(0), app(var("get_opcode"), var("st")), body);
    lam("st", body)
}

/// One semantics function: consumes the decoder's published field and
/// writes a semantics field (the "+ Sem" layer).
fn sem_body(rng: &mut StdRng, g: usize, d: usize, params: &GenParams) -> Expr {
    let n = params.ops_per_decoder / 2;
    let st = |i: usize| {
        if i == 0 {
            "st".to_owned()
        } else {
            format!("st{i}")
        }
    };
    let acc = |i: usize| format!("acc{i}");
    let mut body = update(
        &format!("sem_{g}_{d}"),
        binop(BinOp::Add, var(&acc(n)), int(rng.gen_range(0..16))),
        var(&st(n)),
    );
    for op in (0..n).rev() {
        let tmp_field = format!("u_{g}_{d}_{op}");
        let (s0, s1) = (st(op), st(op + 1));
        let (a0, a1) = (acc(op), acc(op + 1));
        body = let_(
            &s1,
            update(&tmp_field, var(&a0), var(&s0)),
            let_(
                &a1,
                binop(BinOp::Add, select(&tmp_field, var(&s1)), int(1)),
                body,
            ),
        );
    }
    let body = let_(&acc(0), select(&format!("res_{g}_{d}"), var("st")), body);
    lam("st", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = GenParams::default();
        let a = pretty_program(&generate(&p));
        let b = pretty_program(&generate(&p));
        assert_eq!(a, b);
    }

    #[test]
    fn generated_source_reparses() {
        let p = generate(&GenParams::default());
        let src = pretty_program(&p);
        let reparsed = rowpoly_lang::parse_program(&src).expect("generated source parses");
        assert_eq!(reparsed.defs.len(), p.defs.len());
    }

    #[test]
    fn line_targeting_is_close() {
        for target in [400usize, 1500] {
            let (_, src) = generate_with_lines(target, false, 7);
            let lines = src.lines().count();
            let err = lines.abs_diff(target) as f64 / target as f64;
            assert!(err < 0.25, "target {target}, got {lines}");
        }
    }

    #[test]
    fn sem_variant_is_larger() {
        let base = GenParams::default();
        let with_sem = GenParams {
            with_sem: true,
            ..base.clone()
        };
        let a = pretty_program(&generate(&base)).lines().count();
        let b = pretty_program(&generate(&with_sem)).lines().count();
        assert!(b > a);
    }

    #[test]
    fn fig9_table_matches_paper_shape() {
        let w = fig9_workloads();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].paper_lines, 1468);
        assert_eq!(w[3].paper_lines, 18124);
        for row in &w {
            assert!(row.paper_secs_with > row.paper_secs_without);
        }
    }
}
