//! Ablation of the Section 6 environment-version optimisation: the meet
//! of two environments short-circuits when both carry the same version
//! tag. Disabling it forces point-wise equations for every application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rowpoly_core::{Options, Session};
use rowpoly_gen::generate_with_lines;

fn bench_versioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("gci_versioning");
    group.sample_size(10);
    for lines in [200usize, 400] {
        let (program, _) = generate_with_lines(lines, false, 42);
        group.bench_with_input(
            BenchmarkId::new("with_version_tags", lines),
            &program,
            |b, p| {
                let opts = Options::default();
                b.iter(|| Session::new(opts.clone()).infer_program(p).expect("checks"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("without_version_tags", lines),
            &program,
            |b, p| {
                let opts = Options { env_versions: false, ..Options::default() };
                b.iter(|| Session::new(opts.clone()).infer_program(p).expect("checks"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("union_find_unifier", lines),
            &program,
            |b, p| {
                let opts = Options {
                    unifier: rowpoly_core::Unifier::UnionFind,
                    ..Options::default()
                };
                b.iter(|| Session::new(opts.clone()).infer_program(p).expect("checks"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_versioning);
criterion_main!(benches);
