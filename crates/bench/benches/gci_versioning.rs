//! Ablation of the Section 6 environment-version optimisation: the meet
//! of two environments short-circuits when both carry the same version
//! tag. Disabling it forces point-wise equations for every application.

use rowpoly_bench::bench;
use rowpoly_core::{Options, Session};
use rowpoly_gen::generate_with_lines;

fn main() {
    for lines in [200usize, 400] {
        let (program, _) = generate_with_lines(lines, false, 42);
        bench(&format!("gci_versioning/with_version_tags/{lines}"), || {
            Session::new(Options::default())
                .infer_program(&program)
                .expect("checks")
        });
        bench(
            &format!("gci_versioning/without_version_tags/{lines}"),
            || {
                let opts = Options {
                    env_versions: false,
                    ..Options::default()
                };
                Session::new(opts).infer_program(&program).expect("checks")
            },
        );
        bench(
            &format!("gci_versioning/union_find_unifier/{lines}"),
            || {
                let opts = Options {
                    unifier: rowpoly_core::Unifier::UnionFind,
                    ..Options::default()
                };
                Session::new(opts).infer_program(&program).expect("checks")
            },
        );
    }
}
