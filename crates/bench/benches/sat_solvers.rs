//! Solver ablation: the same formula families decided by the class-
//! dispatched solver versus always-CDCL, matching the paper's Section 5
//! complexity classification (select/update ⇒ 2-SAT, asymmetric concat ⇒
//! Horn, symmetric concat / `when` ⇒ general CNF).

use rowpoly_bench::bench;
use rowpoly_boolfun::sat::{solve_with, Engine};
use rowpoly_boolfun::{Cnf, Flag, Lit};

/// Implication-chain formulas (what select/update programs generate).
fn chain(n: u32) -> Cnf {
    let mut b = Cnf::top();
    for i in 0..n {
        b.imply(Lit::pos(Flag(i)), Lit::pos(Flag(i + 1)));
        b.iff(Lit::pos(Flag(i)), Lit::pos(Flag(n + 1 + i)));
    }
    b.assert_lit(Lit::pos(Flag(0)));
    b
}

/// Horn rule sets (asymmetric concatenation's inverted-flag clauses).
fn horn_rules(n: u32) -> Cnf {
    let mut b = Cnf::top();
    b.assert_lit(Lit::pos(Flag(0)));
    b.assert_lit(Lit::pos(Flag(1)));
    for i in 0..n {
        b.add_lits(vec![
            Lit::neg(Flag(i)),
            Lit::neg(Flag(i + 1)),
            Lit::pos(Flag(i + 2)),
        ]);
    }
    b
}

/// General CNF in the style of symmetric concatenation: disjunctive
/// existence plus mutual exclusion.
fn symmetric(n: u32) -> Cnf {
    let mut b = Cnf::top();
    for i in 0..n {
        let (f1, f2, fr) = (Flag(3 * i), Flag(3 * i + 1), Flag(3 * i + 2));
        b.add_lits(vec![Lit::neg(fr), Lit::pos(f1), Lit::pos(f2)]);
        b.imply(Lit::pos(f1), Lit::pos(fr));
        b.imply(Lit::pos(f2), Lit::pos(fr));
        b.add_lits(vec![Lit::neg(f1), Lit::neg(f2)]);
        b.assert_lit(Lit::pos(fr));
    }
    b
}

fn main() {
    for n in [100u32, 1000, 5000] {
        let f = chain(n);
        bench(&format!("sat_solvers/twosat_on_chain/{n}"), || {
            assert!(solve_with(Engine::TwoSat, &f).is_sat())
        });
        bench(&format!("sat_solvers/cdcl_on_chain/{n}"), || {
            assert!(solve_with(Engine::Cdcl, &f).is_sat())
        });
        let h = horn_rules(n);
        bench(&format!("sat_solvers/horn_on_rules/{n}"), || {
            assert!(solve_with(Engine::Horn, &h).is_sat())
        });
        bench(&format!("sat_solvers/cdcl_on_rules/{n}"), || {
            assert!(solve_with(Engine::Cdcl, &h).is_sat())
        });
        let s = symmetric(n / 2);
        bench(&format!("sat_solvers/cdcl_on_symmetric/{n}"), || {
            assert!(solve_with(Engine::Cdcl, &s).is_sat())
        });
        bench(&format!("sat_solvers/auto_dispatch_chain/{n}"), || {
            assert!(solve_with(Engine::Auto, &f).is_sat())
        });
    }
}
