//! Criterion counterpart of the `fig9` binary: inference throughput on
//! decoder workloads at sweep sizes, with and without field tracking,
//! plus the stale-flag compaction ablation (aggressive vs per-def).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rowpoly_core::{Compaction, Options, Session};
use rowpoly_gen::generate_with_lines;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_inference");
    group.sample_size(10);
    for lines in [200usize, 400, 800] {
        let (program, _) = generate_with_lines(lines, false, 42);
        group.bench_with_input(
            BenchmarkId::new("without_fields", lines),
            &program,
            |b, p| {
                let opts = Options { track_fields: false, ..Options::default() };
                b.iter(|| Session::new(opts.clone()).infer_program(p).expect("checks"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("with_fields", lines),
            &program,
            |b, p| {
                let opts = Options::default();
                b.iter(|| Session::new(opts.clone()).infer_program(p).expect("checks"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("with_fields_perdef_compaction", lines),
            &program,
            |b, p| {
                let opts =
                    Options { compaction: Compaction::PerDef, ..Options::default() };
                // Deliberately not unwrapped: deferring stale-flag
                // projection to definition boundaries lets expansion alias
                // flag copies (the Section 6 bug), so this configuration
                // *over-rejects* — the ablation measures its cost and
                // documents its incorrectness.
                b.iter(|| Session::new(opts.clone()).infer_program(p).is_ok());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
