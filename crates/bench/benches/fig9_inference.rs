//! Bench counterpart of the `fig9` binary: inference throughput on
//! decoder workloads at sweep sizes, with and without field tracking,
//! plus the stale-flag compaction ablation (aggressive vs per-def).

use rowpoly_bench::bench;
use rowpoly_core::{Compaction, Options, Session};
use rowpoly_gen::generate_with_lines;

fn main() {
    for lines in [200usize, 400, 800] {
        let (program, _) = generate_with_lines(lines, false, 42);
        bench(&format!("fig9_inference/without_fields/{lines}"), || {
            let opts = Options {
                track_fields: false,
                ..Options::default()
            };
            Session::new(opts).infer_program(&program).expect("checks")
        });
        bench(&format!("fig9_inference/with_fields/{lines}"), || {
            Session::new(Options::default())
                .infer_program(&program)
                .expect("checks")
        });
        bench(
            &format!("fig9_inference/with_fields_perdef_compaction/{lines}"),
            || {
                let opts = Options {
                    compaction: Compaction::PerDef,
                    ..Options::default()
                };
                // Deliberately not unwrapped: deferring stale-flag
                // projection to definition boundaries lets expansion alias
                // flag copies (the Section 6 bug), so this configuration
                // *over-rejects* — the ablation measures its cost and
                // documents its incorrectness.
                Session::new(opts).infer_program(&program).is_ok()
            },
        );
    }
}
