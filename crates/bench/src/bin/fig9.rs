//! Regenerates Figure 9 of the paper: inference times for four decoder
//! workloads, with and without record-field tracking.
//!
//! ```text
//! fig9 [--quick] [--phases] [--seed N]
//! ```
//!
//! * `--quick`  — scale every workload down 8x (for smoke runs);
//! * `--phases` — additionally print per-phase timings (unify / applyS /
//!   projection / SAT), reproducing the paper's Section 6 observation
//!   that substitution application rivals the 2-SAT solver;
//! * `--seed N` — workload generation seed (default 42).
//!
//! Absolute numbers are not comparable to the paper's (different
//! hardware, language and — necessarily — synthetic workloads); the
//! *shape* is: times grow superlinearly with line count and the
//! "w. fields" column costs a small constant factor over "w/o fields".

use std::time::Instant;

use rowpoly_core::{Options, Session};
use rowpoly_gen::{fig9_workloads, generate_with_lines};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let phases = args.iter().any(|a| a == "--phases");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);

    println!("Figure 9: inference times on synthetic decoder specifications");
    println!("(paper numbers measured MLton-compiled SML on a 3.4 GHz Core i7)");
    println!();
    println!(
        "{:<18} {:>7} {:>7}  {:>12} {:>12}  {:>12} {:>12} {:>7}",
        "decoder", "paper", "lines", "paper w/o", "paper w.", "time w/o", "time w.", "ratio"
    );

    for w in fig9_workloads() {
        let target = if quick { w.paper_lines / 8 } else { w.paper_lines };
        let (program, src) = generate_with_lines(target, w.with_sem, seed);
        let lines = src.lines().count();

        let run = |track: bool| {
            let opts = Options { track_fields: track, ..Options::default() };
            let start = Instant::now();
            let report = Session::new(opts)
                .infer_program(&program)
                .unwrap_or_else(|e| panic!("workload {} failed to check: {e}", w.name));
            (start.elapsed(), report)
        };
        let (t_without, rep_without) = run(false);
        let (t_with, rep_with) = run(true);

        println!(
            "{:<18} {:>7} {:>7}  {:>11.2}s {:>11.2}s  {:>11.2}s {:>11.2}s {:>6.2}x",
            w.name,
            w.paper_lines,
            lines,
            w.paper_secs_without,
            w.paper_secs_with,
            t_without.as_secs_f64(),
            t_with.as_secs_f64(),
            t_with.as_secs_f64() / t_without.as_secs_f64().max(1e-9),
        );
        if phases {
            let s0 = &rep_without.stats;
            let s1 = &rep_with.stats;
            println!(
                "    w/o fields: unify {:>8.3}s  applyS {:>8.3}s  ({} mgu, {} applyS)",
                s0.unify.as_secs_f64(),
                s0.applys.as_secs_f64(),
                s0.unify_calls,
                s0.applys_calls
            );
            println!(
                "    w. fields:  unify {:>8.3}s  applyS {:>8.3}s  project {:>8.3}s  sat {:>8.3}s  ({} checks, class {:?}, peak {} clauses)",
                s1.unify.as_secs_f64(),
                s1.applys.as_secs_f64(),
                s1.project.as_secs_f64(),
                s1.sat.as_secs_f64(),
                s1.sat_calls,
                rep_with.sat_class,
                s1.peak_clauses
            );
        }
    }
    println!();
    println!("shape checks: ratios should be ~1.5-3x; both columns grow superlinearly");
}
