//! Regenerates Figure 9 of the paper: inference times for four decoder
//! workloads, with and without record-field tracking.
//!
//! ```text
//! fig9 [--quick] [--phases] [--classes] [--json] [--proof-overhead]
//!      [--mem] [--trace PATH] [--seed N]
//! ```
//!
//! * `--quick`   — scale every workload down 8x (for smoke runs);
//! * `--phases`  — additionally print per-phase timings (unify / applyS /
//!   projection / SAT), reproducing the paper's Section 6 observation
//!   that substitution application rivals the 2-SAT solver;
//! * `--classes` — print how many definitions landed in each
//!   satisfiability class (Section 5's operation → solver mapping);
//! * `--json`    — print a machine-readable report instead of the table
//!   (this is what `BENCH_fig9.json` in the repository root is);
//! * `--proof-overhead` — run the with-fields configuration a second
//!   time with inline proof checking forced on (every SAT verdict
//!   re-derived with a proof and replayed through `ProofChecker`) and
//!   report the wall-time overhead; the acceptance bar is < 10%
//!   checked and zero unchecked (checking is gated on one relaxed
//!   atomic load);
//! * `--mem` — turn the counting allocator on for the measured runs
//!   (per-workload byte deltas, per-phase byte attribution, a
//!   process-wide `mem` block in the JSON) and additionally measure
//!   the accounting overhead itself: the with-fields configuration is
//!   re-run best-of-3 with accounting off and on, and the wall-time
//!   ratio lands in the JSON; the acceptance bar is < 5%;
//! * `--trace PATH` — write a Chrome trace-event file of the whole run
//!   (equivalent to setting `ROWPOLY_TRACE=PATH`);
//! * `--seed N`  — workload generation seed (default 42).
//!
//! Absolute numbers are not comparable to the paper's (different
//! hardware, language and — necessarily — synthetic workloads); the
//! *shape* is: times grow superlinearly with line count and the
//! "w. fields" column costs a small constant factor over "w/o fields".

use std::time::{Duration, Instant};

use rowpoly_core::{Options, ProgramReport, Session, Stats, SAT_CLASSES};
use rowpoly_gen::{fig9_workloads, generate_with_lines};
use rowpoly_obs::json::Json;
use rowpoly_obs::mem::{self, MemDelta};

#[global_allocator]
static ALLOC: rowpoly_obs::CountingAlloc = rowpoly_obs::CountingAlloc;

struct Measurement {
    name: &'static str,
    paper_lines: usize,
    lines: usize,
    t_without: Duration,
    t_with: Duration,
    rep_without: ProgramReport,
    rep_with: ProgramReport,
    /// Best-of-3 with-fields walls, proof checking (off, on)
    /// (`--proof-overhead` only).
    proof_walls: Option<(Duration, Duration)>,
    /// Allocator deltas for the two measured runs (`--mem` or
    /// `ROWPOLY_MEM=1` only).
    mem_without: Option<MemDelta>,
    mem_with: Option<MemDelta>,
    /// Best-of-3 with-fields walls, accounting (off, on) (`--mem`
    /// only) — the overhead measurement the < 5% gate reads.
    mem_walls: Option<(Duration, Duration)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let phases = args.iter().any(|a| a == "--phases");
    let classes = args.iter().any(|a| a == "--classes");
    let json = args.iter().any(|a| a == "--json");
    let proof_overhead = args.iter().any(|a| a == "--proof-overhead");
    let mem_flag = args.iter().any(|a| a == "--mem");
    let trace = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);

    if trace.is_some() {
        rowpoly_obs::enable();
    }
    mem::init_from_env();
    // `--mem` turns accounting on per measured run (scoped sessions,
    // so the overhead pair below can still measure a genuinely-off
    // leg); `ROWPOLY_MEM=1` turns it on for the whole process.
    let mem_on = mem_flag || mem::tracking();
    // Baseline for the process-wide `mem` block in the JSON report.
    let mem_baseline = mem_on.then(|| (mem::snapshot(), mem::site_snapshot()));

    if !json {
        println!("Figure 9: inference times on synthetic decoder specifications");
        println!("(paper numbers measured MLton-compiled SML on a 3.4 GHz Core i7)");
        println!();
        println!(
            "{:<18} {:>7} {:>7}  {:>12} {:>12}  {:>12} {:>12} {:>7}",
            "decoder", "paper", "lines", "paper w/o", "paper w.", "time w/o", "time w.", "ratio"
        );
    }

    let mut measurements = Vec::new();
    for w in fig9_workloads() {
        let target = if quick {
            w.paper_lines / 8
        } else {
            w.paper_lines
        };
        let (program, src) = generate_with_lines(target, w.with_sem, seed);
        let lines = src.lines().count();

        let run = |track: bool| {
            let opts = Options {
                track_fields: track,
                ..Options::default()
            };
            let start = Instant::now();
            let report = Session::new(opts)
                .infer_program(&program)
                .unwrap_or_else(|e| panic!("workload {} failed to check: {e}", w.name));
            (start.elapsed(), report)
        };
        // When accounting is requested, each measured run holds its own
        // session and captures this thread's allocator delta.
        let run_mem = |track: bool| {
            if mem_on {
                let _session = mem::accounting_session();
                let mark = mem::thread_mark();
                let (t, rep) = run(track);
                (t, rep, Some(mem::thread_delta_since(&mark)))
            } else {
                let (t, rep) = run(track);
                (t, rep, None)
            }
        };
        let (t_without, rep_without, mem_without) = run_mem(false);
        let (t_with, rep_with, mem_with) = run_mem(true);
        let mem_walls = mem_flag.then(|| {
            // Accounting-overhead pair: the same with-fields run,
            // best-of-3 with the counting hooks idle vs recording.
            let best = |tracked: bool| {
                let session = tracked.then(mem::accounting_session);
                let t = (0..3).map(|_| run(true).0).min().expect("three runs");
                drop(session);
                t
            };
            (best(false), best(true))
        });
        let proof_walls = proof_overhead.then(|| {
            // Same configuration, every verdict re-derived with a proof
            // and replayed through the checker. Best-of-3 on both sides
            // (the base runs keep checking off, gated on one relaxed
            // atomic load): the workloads are sub-second, so a single
            // pair would mostly measure scheduler noise.
            let best = |checked: bool| {
                rowpoly_boolfun::set_check_proofs(checked);
                let t = (0..3).map(|_| run(true).0).min().expect("three runs");
                rowpoly_boolfun::set_check_proofs(false);
                t
            };
            (best(false), best(true))
        });

        let m = Measurement {
            name: w.name,
            paper_lines: w.paper_lines,
            lines,
            t_without,
            t_with,
            rep_without,
            rep_with,
            proof_walls,
            mem_without,
            mem_with,
            mem_walls,
        };
        if !json {
            print_row(&m, &w, phases, classes);
        }
        measurements.push(m);
    }

    let mem_block = mem_baseline.map(|(base_snap, base_sites)| {
        let now = mem::snapshot();
        let delta = now.delta_since(&base_snap);
        let sites = mem::site_delta(&mem::site_snapshot(), &base_sites);
        let defs: u64 = measurements
            .iter()
            .map(|m| (m.rep_with.defs.len() + m.rep_without.defs.len()) as u64)
            .sum();
        mem::report_json(&delta, &base_snap, &now, &sites, defs)
    });

    if json {
        println!(
            "{}",
            render_json(seed, quick, &measurements, mem_block).render()
        );
    } else {
        println!();
        println!("shape checks: ratios should be ~1.5-3x; both columns grow superlinearly");
    }

    if let Some(path) = trace {
        let snap = rowpoly_obs::snapshot();
        match rowpoly_obs::chrome::write_chrome_trace(&snap, std::path::Path::new(&path)) {
            Ok(()) => eprintln!("wrote Chrome trace to {path}"),
            Err(e) => eprintln!("failed to write trace {path}: {e}"),
        }
    }
}

fn print_row(m: &Measurement, w: &rowpoly_gen::Workload, phases: bool, classes: bool) {
    println!(
        "{:<18} {:>7} {:>7}  {:>11.2}s {:>11.2}s  {:>11.2}s {:>11.2}s {:>6.2}x",
        m.name,
        m.paper_lines,
        m.lines,
        w.paper_secs_without,
        w.paper_secs_with,
        m.t_without.as_secs_f64(),
        m.t_with.as_secs_f64(),
        m.t_with.as_secs_f64() / m.t_without.as_secs_f64().max(1e-9),
    );
    if phases {
        let s0 = &m.rep_without.stats;
        let s1 = &m.rep_with.stats;
        println!(
            "    w/o fields: unify {:>8.3}s  applyS {:>8.3}s  ({} mgu, {} applyS)",
            s0.unify.as_secs_f64(),
            s0.applys.as_secs_f64(),
            s0.unify_calls,
            s0.applys_calls
        );
        println!(
            "    w. fields:  unify {:>8.3}s  applyS {:>8.3}s  project {:>8.3}s  sat {:>8.3}s  ({} checks, class {}, peak {} clauses)",
            s1.unify.as_secs_f64(),
            s1.applys.as_secs_f64(),
            s1.project.as_secs_f64(),
            s1.sat.as_secs_f64(),
            s1.sat_calls,
            m.rep_with.sat_class,
            s1.peak_clauses
        );
        println!(
            "    projection: {} eliminated ({} fast path, {} fallback), {} resolvents, {} subsumed",
            s1.project_resolutions,
            s1.project_fastpath,
            s1.project_fallback,
            s1.project_resolvents,
            s1.project_subsumed
        );
    }
    if let Some((tu, tc)) = m.proof_walls {
        let overhead = tc.as_secs_f64() / tu.as_secs_f64().max(1e-9) - 1.0;
        println!(
            "    proof checking: {:>8.3}s checked vs {:>8.3}s unchecked ({:+.1}% wall, best of 3)",
            tc.as_secs_f64(),
            tu.as_secs_f64(),
            overhead * 100.0
        );
    }
    if let Some(d) = &m.mem_with {
        const MIB: f64 = 1024.0 * 1024.0;
        println!(
            "    memory (w. fields): {:.2} MiB allocated in {} allocations, net {:+.2} MiB",
            d.alloc_bytes as f64 / MIB,
            d.allocs,
            d.net_bytes() as f64 / MIB,
        );
    }
    if let Some((toff, ton)) = m.mem_walls {
        let overhead = ton.as_secs_f64() / toff.as_secs_f64().max(1e-9) - 1.0;
        println!(
            "    mem accounting: {:>8.3}s tracked vs {:>8.3}s untracked ({:+.1}% wall, best of 3)",
            ton.as_secs_f64(),
            toff.as_secs_f64(),
            overhead * 100.0
        );
    }
    if classes {
        let mut counts = std::collections::BTreeMap::new();
        for d in &m.rep_with.defs {
            *counts.entry(d.sat_class.name()).or_insert(0usize) += 1;
        }
        let summary: Vec<String> = counts
            .iter()
            .map(|(name, n)| format!("{n} {name}"))
            .collect();
        println!(
            "    per-def flow classes: {} ({} defs)",
            summary.join(", "),
            m.rep_with.defs.len()
        );
    }
}

fn phases_json(stats: &Stats) -> Json {
    Json::obj(vec![
        ("unify", Json::Float(stats.unify.as_secs_f64())),
        ("applys", Json::Float(stats.applys.as_secs_f64())),
        ("project", Json::Float(stats.project.as_secs_f64())),
        ("sat", Json::Float(stats.sat.as_secs_f64())),
    ])
}

fn run_json(wall: Duration, report: &ProgramReport, mem: Option<&MemDelta>) -> Json {
    let stats = &report.stats;
    let mut members = vec![
        ("wall_s", Json::Float(wall.as_secs_f64())),
        ("phases", phases_json(stats)),
        ("unify_calls", Json::Int(stats.unify_calls as i64)),
        ("applys_calls", Json::Int(stats.applys_calls as i64)),
        ("sat_checks", Json::Int(stats.sat_calls as i64)),
        ("peak_clauses", Json::Int(stats.peak_clauses as i64)),
        (
            "project_resolutions",
            Json::Int(stats.project_resolutions as i64),
        ),
        ("project_fastpath", Json::Int(stats.project_fastpath as i64)),
        ("project_fallback", Json::Int(stats.project_fallback as i64)),
        (
            "project_resolvents",
            Json::Int(stats.project_resolvents as i64),
        ),
        ("project_subsumed", Json::Int(stats.project_subsumed as i64)),
        ("env_meet_hits", Json::Int(stats.env_meet_hits as i64)),
        ("env_meet_misses", Json::Int(stats.env_meet_misses as i64)),
        ("sat_class", Json::Str(report.sat_class.name().to_string())),
    ];
    let by_class: Vec<(&str, Json)> = SAT_CLASSES
        .iter()
        .filter(|&&c| stats.sat_checks_for(c) > 0)
        .map(|&c| (c.name(), Json::Int(stats.sat_checks_for(c) as i64)))
        .collect();
    members.push(("sat_checks_by_class", Json::obj(by_class)));
    if let Some(d) = mem {
        members.push(("mem", d.to_json()));
        members.push((
            "phase_alloc_bytes",
            Json::obj(
                stats
                    .phase_alloc_bytes()
                    .into_iter()
                    .map(|(n, b)| (n, Json::Int(b as i64)))
                    .collect(),
            ),
        ));
    }
    let mut def_classes = std::collections::BTreeMap::new();
    for d in &report.defs {
        *def_classes.entry(d.sat_class.name()).or_insert(0i64) += 1;
    }
    members.push((
        "def_classes",
        Json::Obj(
            def_classes
                .into_iter()
                .map(|(k, n)| (k.to_string(), Json::Int(n)))
                .collect(),
        ),
    ));
    Json::obj(members)
}

fn render_json(
    seed: u64,
    quick: bool,
    measurements: &[Measurement],
    mem_block: Option<Json>,
) -> Json {
    let workloads: Vec<Json> = measurements
        .iter()
        .map(|m| {
            let mut members = vec![
                ("name", Json::Str(m.name.to_string())),
                ("paper_lines", Json::Int(m.paper_lines as i64)),
                ("lines", Json::Int(m.lines as i64)),
                (
                    "without_fields",
                    run_json(m.t_without, &m.rep_without, m.mem_without.as_ref()),
                ),
                (
                    "with_fields",
                    run_json(m.t_with, &m.rep_with, m.mem_with.as_ref()),
                ),
                (
                    "ratio",
                    Json::Float(m.t_with.as_secs_f64() / m.t_without.as_secs_f64().max(1e-9)),
                ),
            ];
            if let Some((tu, tc)) = m.proof_walls {
                members.push((
                    "proof_check",
                    Json::obj(vec![
                        ("wall_s_unchecked", Json::Float(tu.as_secs_f64())),
                        ("wall_s_checked", Json::Float(tc.as_secs_f64())),
                        (
                            "overhead",
                            Json::Float(tc.as_secs_f64() / tu.as_secs_f64().max(1e-9) - 1.0),
                        ),
                    ]),
                ));
            }
            if let Some((toff, ton)) = m.mem_walls {
                members.push((
                    "mem_overhead",
                    Json::obj(vec![
                        ("wall_s_untracked", Json::Float(toff.as_secs_f64())),
                        ("wall_s_tracked", Json::Float(ton.as_secs_f64())),
                        (
                            "overhead",
                            Json::Float(ton.as_secs_f64() / toff.as_secs_f64().max(1e-9) - 1.0),
                        ),
                    ]),
                ));
            }
            Json::obj(members)
        })
        .collect();
    let mut members = vec![
        ("bench", Json::Str("fig9".to_string())),
        ("seed", Json::Int(seed as i64)),
        ("quick", Json::Bool(quick)),
        // Host context, mirroring BENCH_batch.json: memory ceilings and
        // wall times only make sense relative to the machine they were
        // measured on.
        (
            "host_cpus",
            Json::Int(std::thread::available_parallelism().map_or(1, |n| n.get()) as i64),
        ),
        (
            "host_mem_bytes",
            mem::host_mem_bytes().map_or(Json::Null, |v| Json::Int(v as i64)),
        ),
        ("workloads", Json::Arr(workloads)),
    ];
    if let Some(mem) = mem_block {
        members.push(("mem", mem));
    }
    Json::obj(members)
}
