//! Benchmarks the batch checker: parallel speedup, cache effect, and
//! the worker-scaling curve with its concurrency profile.
//!
//! ```text
//! batch [--quick] [--json] [--mem] [--files N] [--lines N] [--jobs N]
//!       [--seed N]
//! ```
//!
//! `--mem` (or `ROWPOLY_MEM=1`) adds one extra profiled run with the
//! counting allocator recording: its `mem` block (total/peak bytes,
//! bytes per definition, per-site attribution) and per-wave peak
//! samples land in the JSON next to the timing sweep. The timed runs
//! stay accounting-off so the published walls are unperturbed.
//!
//! Generates `--files` decoder-specification files of roughly `--lines`
//! lines each (the Fig. 9 generator, one seed per file) and checks the
//! corpus four ways, each **best-of-3** (like the fig9 proof-overhead
//! bench — wall-clock minima are robust to scheduler noise, means are
//! not):
//!
//! * `serial`    — one worker, no cache: the baseline a plain loop over
//!   `Session::infer_source` would cost;
//! * `parallel`  — `--jobs` workers, no cache: work-stealing speedup;
//! * `cold`      — `--jobs` workers, empty cache: parallel plus the
//!   one-time cost of encoding and persisting every scheme;
//! * `warm`      — `--jobs` workers, populated cache: the incremental
//!   re-check cost when nothing changed.
//!
//! A fifth section sweeps the worker count over 1/2/4/8 with profiling
//! on: per-worker utilization (busy / idle / lock-wait / steal-scan)
//! and the measured critical path, so the JSON answers *why* the curve
//! flattens, not just that it does.
//!
//! All runs produce byte-identical reports (asserted). Absolute times
//! depend on hardware; the shape to look for is `parallel` well under
//! `serial`, `warm` well under `cold`, and a critical-path ratio that
//! explains the scaling.

use std::time::{Duration, Instant};

use rowpoly_batch::{check_sources, BatchOptions, BatchReport, FileInput};
use rowpoly_gen::generate_with_lines;
use rowpoly_obs::json::Json;
use rowpoly_obs::mem;

#[global_allocator]
static ALLOC: rowpoly_obs::CountingAlloc = rowpoly_obs::CountingAlloc;

/// Wall-clock runs per configuration; the minimum is reported.
const REPEATS: usize = 3;

struct Run {
    name: &'static str,
    wall: Duration,
    report: BatchReport,
}

/// One point on the worker-scaling curve, measured with profiling on.
struct ScalePoint {
    workers: usize,
    wall: Duration,
    report: BatchReport,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    mem::init_from_env();
    let mem_on = args.iter().any(|a| a == "--mem") || mem::tracking();
    let num = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let files = num("--files", if quick { 8 } else { 24 });
    let lines = num("--lines", if quick { 150 } else { 600 });
    // Default to 4 workers (not auto-detect): `parallel_speedup` is
    // defined as "4 workers vs serial", and the pool happily runs 4
    // workers on fewer cores — the CPU-aware gate in check_batch.py
    // decides how much speedup the host could possibly show.
    let jobs = num("--jobs", 4);
    let seed = num("--seed", 42) as u64;

    let corpus: Vec<FileInput> = (0..files)
        .map(|i| {
            let (_, src) = generate_with_lines(lines, true, seed.wrapping_add(i as u64));
            FileInput {
                path: format!("gen/decoder_{i:03}.rp"),
                source: src,
            }
        })
        .collect();
    let total_lines: usize = corpus.iter().map(|f| f.source.lines().count()).sum();

    let cache_dir =
        std::env::temp_dir().join(format!("rowpoly-bench-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cached = BatchOptions {
        use_cache: true,
        cache_dir: cache_dir.clone(),
        ..BatchOptions::in_memory(jobs)
    };

    // Best-of-N: repeat the whole run and keep the fastest. The `warm`
    // configuration is naturally repeat-safe (every repeat hits the
    // cache populated by `cold`); `cold` is re-seeded by clearing the
    // cache directory before each repeat.
    let measure = |name: &'static str, options: &BatchOptions, clear_cache: bool| {
        let mut best: Option<Run> = None;
        for _ in 0..REPEATS {
            if clear_cache {
                let _ = std::fs::remove_dir_all(&cache_dir);
            }
            let start = Instant::now();
            let report = check_sources(corpus.clone(), options);
            let wall = start.elapsed();
            assert!(report.ok(), "{name}: generated corpus failed to check");
            if best.as_ref().is_none_or(|b| wall < b.wall) {
                best = Some(Run { name, wall, report });
            }
        }
        best.expect("at least one repeat ran")
    };

    let runs = [
        measure("serial", &BatchOptions::in_memory(1), false),
        measure("parallel", &BatchOptions::in_memory(jobs), false),
        measure("cold", &cached, true),
        measure("warm", &cached, false),
    ];

    for r in &runs[1..] {
        assert_eq!(
            r.report.render(),
            runs[0].report.render(),
            "{} run rendered differently from serial",
            r.name
        );
    }
    let warm = &runs[3];
    assert!(
        warm.report.stats.cache_hits > 0,
        "warm run never hit the cache"
    );

    // Worker-scaling sweep with the concurrency profiler on: best-of-N
    // wall per point, utilization and critical path from that best run.
    let scaling: Vec<ScalePoint> = [1usize, 2, 4, 8]
        .iter()
        .map(|&workers| {
            let mut options = BatchOptions::in_memory(workers);
            options.profile = true;
            let mut best: Option<ScalePoint> = None;
            for _ in 0..REPEATS {
                let start = Instant::now();
                let report = check_sources(corpus.clone(), &options);
                let wall = start.elapsed();
                assert!(report.ok(), "scaling run failed to check");
                assert_eq!(
                    report.render(),
                    runs[0].report.render(),
                    "profiled {workers}-worker run rendered differently"
                );
                if best.as_ref().is_none_or(|b| wall < b.wall) {
                    best = Some(ScalePoint {
                        workers,
                        wall,
                        report,
                    });
                }
            }
            best.expect("at least one repeat ran")
        })
        .collect();
    let _ = std::fs::remove_dir_all(&cache_dir);

    // One extra profiled run with the counting allocator recording: the
    // timed runs above stay accounting-off, so the published walls are
    // unperturbed while the mem block still reflects a real sweep run.
    let mem_run = mem_on.then(|| {
        let _session = mem::accounting_session();
        let mut options = BatchOptions::in_memory(jobs);
        options.profile = true;
        let start = Instant::now();
        let report = check_sources(corpus.clone(), &options);
        let wall = start.elapsed();
        assert!(report.ok(), "memory-profiled run failed to check");
        assert_eq!(
            report.render(),
            runs[0].report.render(),
            "memory-profiled run rendered differently"
        );
        (wall, report)
    });

    if json {
        println!(
            "{}",
            render_json(
                files,
                lines,
                total_lines,
                seed,
                quick,
                &runs,
                &scaling,
                mem_run.as_ref()
            )
            .render()
        );
        return;
    }

    println!(
        "Batch checking: {files} files, {total_lines} lines, {} defs (best of {REPEATS})",
        runs[0].report.stats.defs
    );
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "run", "wall", "workers", "steals", "hits", "misses"
    );
    for r in &runs {
        let s = &r.report.stats;
        println!(
            "{:<10} {:>7.2}s {:>8} {:>8} {:>8} {:>8}",
            r.name,
            r.wall.as_secs_f64(),
            s.workers,
            s.steals,
            s.cache_hits,
            s.cache_misses
        );
    }
    println!();
    let speedup = runs[0].wall.as_secs_f64() / runs[1].wall.as_secs_f64().max(1e-9);
    let cache_gain = runs[2].wall.as_secs_f64() / warm.wall.as_secs_f64().max(1e-9);
    println!("parallel speedup {speedup:.2}x, warm-cache speedup over cold {cache_gain:.2}x");

    println!();
    println!("worker scaling (profiled)");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "workers", "wall", "busy%", "idle%", "lock-wait%", "cp-ratio", "ideal-x"
    );
    for p in &scaling {
        let profile = p.report.profile.as_ref().expect("profiled run");
        let (busy, idle, lock_wait) = mean_utilization(profile);
        println!(
            "{:<8} {:>7.2}s {:>7.1}% {:>7.1}% {:>9.1}% {:>10.2} {:>10.2}",
            p.workers,
            p.wall.as_secs_f64(),
            busy,
            idle,
            lock_wait,
            profile.critical.ratio(),
            profile.critical.ideal_speedup(),
        );
    }

    if let Some((wall, report)) = &mem_run {
        let profile = report.profile.as_ref().expect("profiled run");
        let merged = profile.snapshot.mem_merged();
        const MIB: f64 = 1024.0 * 1024.0;
        println!();
        println!(
            "memory-profiled run ({jobs} workers, {:.2}s): {:.2} MiB allocated in {} allocations across workers, process peak {:.2} MiB",
            wall.as_secs_f64(),
            merged.alloc_bytes as f64 / MIB,
            merged.allocs,
            mem::peak_bytes() as f64 / MIB,
        );
    }
}

/// Mean busy/idle/lock-wait percentages across a profile's workers.
fn mean_utilization(profile: &rowpoly_batch::profile::ProfileReport) -> (f64, f64, f64) {
    let n = profile.workers.len().max(1) as f64;
    let sum = profile.workers.iter().fold((0.0, 0.0, 0.0), |acc, u| {
        (
            acc.0 + u.busy_pct(),
            acc.1 + u.idle_pct(),
            acc.2 + u.lock_wait_pct(),
        )
    });
    (sum.0 / n, sum.1 / n, sum.2 / n)
}

fn run_json(r: &Run) -> Json {
    let s = &r.report.stats;
    Json::obj(vec![
        ("wall_s", Json::Float(r.wall.as_secs_f64())),
        ("workers", Json::Int(s.workers as i64)),
        ("waves", Json::Int(s.waves as i64)),
        ("steals", Json::Int(s.steals as i64)),
        ("cache_hits", Json::Int(s.cache_hits as i64)),
        ("cache_misses", Json::Int(s.cache_misses as i64)),
    ])
}

fn scale_json(p: &ScalePoint) -> Json {
    let profile = p.report.profile.as_ref().expect("profiled run");
    let (busy, idle, lock_wait) = mean_utilization(profile);
    let c = &profile.critical;
    Json::obj(vec![
        ("workers", Json::Int(p.workers as i64)),
        ("wall_s", Json::Float(p.wall.as_secs_f64())),
        ("steals", Json::Int(p.report.stats.steals as i64)),
        ("busy_pct", Json::Float(busy)),
        ("idle_pct", Json::Float(idle)),
        ("lock_wait_pct", Json::Float(lock_wait)),
        ("critical_path_s", Json::Float(c.path_ns as f64 / 1e9)),
        ("critical_path_ratio", Json::Float(c.ratio())),
        ("ideal_speedup", Json::Float(c.ideal_speedup())),
        (
            "per_worker",
            Json::Arr(
                profile
                    .workers
                    .iter()
                    .map(|u| {
                        Json::obj(vec![
                            ("worker", Json::Int(u.worker as i64)),
                            ("jobs", Json::Int(u.jobs as i64)),
                            ("busy_pct", Json::Float(u.busy_pct())),
                            ("idle_pct", Json::Float(u.idle_pct())),
                            ("lock_wait_pct", Json::Float(u.lock_wait_pct())),
                            ("steal_scan_pct", Json::Float(u.search_pct())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    files: usize,
    lines: usize,
    total_lines: usize,
    seed: u64,
    quick: bool,
    runs: &[Run; 4],
    scaling: &[ScalePoint],
    mem_run: Option<&(Duration, BatchReport)>,
) -> Json {
    let serial = runs[0].wall.as_secs_f64();
    let parallel = runs[1].wall.as_secs_f64();
    let cold = runs[2].wall.as_secs_f64();
    let warm = runs[3].wall.as_secs_f64();
    let mut members = vec![
        ("bench", Json::Str("batch".to_string())),
        ("seed", Json::Int(seed as i64)),
        ("quick", Json::Bool(quick)),
        ("repeats", Json::Int(REPEATS as i64)),
        // The scaling gate in scripts/check_batch.py is CPU-aware: a
        // host with fewer cores than the sweep's worker counts cannot
        // show wall-clock speedup, so record what was available.
        (
            "host_cpus",
            Json::Int(std::thread::available_parallelism().map_or(1, |n| n.get()) as i64),
        ),
        (
            "host_mem_bytes",
            mem::host_mem_bytes().map_or(Json::Null, |v| Json::Int(v as i64)),
        ),
        ("files", Json::Int(files as i64)),
        ("lines_per_file", Json::Int(lines as i64)),
        ("total_lines", Json::Int(total_lines as i64)),
        ("defs", Json::Int(runs[0].report.stats.defs as i64)),
        ("serial", run_json(&runs[0])),
        ("parallel", run_json(&runs[1])),
        ("cold_cache", run_json(&runs[2])),
        ("warm_cache", run_json(&runs[3])),
        ("parallel_speedup", Json::Float(serial / parallel.max(1e-9))),
        ("warm_over_cold", Json::Float(cold / warm.max(1e-9))),
        (
            "scaling",
            Json::Arr(scaling.iter().map(scale_json).collect()),
        ),
    ];
    if let Some((wall, report)) = mem_run {
        members.push((
            "mem",
            report.mem.clone().expect("tracking was on for the mem run"),
        ));
        members.push(("mem_wall_s", Json::Float(wall.as_secs_f64())));
        // Per-wave allocator watermarks from the profiled mem run, so
        // the JSON shows *when* the peak was reached, not just that it
        // was.
        let profile = report.profile.as_ref().expect("profiled run");
        members.push((
            "mem_waves",
            Json::Arr(
                profile
                    .snapshot
                    .wave_mem
                    .iter()
                    .map(|wm| {
                        Json::obj(vec![
                            ("wave", Json::Int(wm.wave as i64)),
                            ("t_ns", Json::Int(wm.t_ns as i64)),
                            ("live_bytes", Json::Int(wm.live_bytes)),
                            ("peak_bytes", Json::Int(wm.peak_bytes)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::obj(members)
}
