//! Benchmarks the batch checker: parallel speedup and cache effect.
//!
//! ```text
//! batch [--quick] [--json] [--files N] [--lines N] [--jobs N] [--seed N]
//! ```
//!
//! Generates `--files` decoder-specification files of roughly `--lines`
//! lines each (the Fig. 9 generator, one seed per file) and checks the
//! corpus four ways:
//!
//! * `serial`    — one worker, no cache: the baseline a plain loop over
//!   `Session::infer_source` would cost;
//! * `parallel`  — `--jobs` workers, no cache: work-stealing speedup;
//! * `cold`      — `--jobs` workers, empty cache: parallel plus the
//!   one-time cost of encoding and persisting every scheme;
//! * `warm`      — `--jobs` workers, populated cache: the incremental
//!   re-check cost when nothing changed.
//!
//! All four produce byte-identical reports (asserted). Absolute times
//! depend on hardware; the shape to look for is `parallel` well under
//! `serial`, and `warm` well under `cold`.

use std::time::{Duration, Instant};

use rowpoly_batch::{check_sources, BatchOptions, BatchReport, FileInput};
use rowpoly_gen::generate_with_lines;
use rowpoly_obs::json::Json;

struct Run {
    name: &'static str,
    wall: Duration,
    report: BatchReport,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let num = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let files = num("--files", if quick { 8 } else { 24 });
    let lines = num("--lines", if quick { 150 } else { 600 });
    let jobs = num("--jobs", 0);
    let seed = num("--seed", 42) as u64;

    let corpus: Vec<FileInput> = (0..files)
        .map(|i| {
            let (_, src) = generate_with_lines(lines, true, seed.wrapping_add(i as u64));
            FileInput {
                path: format!("gen/decoder_{i:03}.rp"),
                source: src,
            }
        })
        .collect();
    let total_lines: usize = corpus.iter().map(|f| f.source.lines().count()).sum();

    let cache_dir =
        std::env::temp_dir().join(format!("rowpoly-bench-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cached = BatchOptions {
        use_cache: true,
        cache_dir: cache_dir.clone(),
        ..BatchOptions::in_memory(jobs)
    };

    let measure = |name: &'static str, options: &BatchOptions| {
        let start = Instant::now();
        let report = check_sources(corpus.clone(), options);
        let wall = start.elapsed();
        assert!(report.ok(), "{name}: generated corpus failed to check");
        Run { name, wall, report }
    };

    let runs = [
        measure("serial", &BatchOptions::in_memory(1)),
        measure("parallel", &BatchOptions::in_memory(jobs)),
        measure("cold", &cached),
        measure("warm", &cached),
    ];
    let _ = std::fs::remove_dir_all(&cache_dir);

    for r in &runs[1..] {
        assert_eq!(
            r.report.render(),
            runs[0].report.render(),
            "{} run rendered differently from serial",
            r.name
        );
    }
    let warm = &runs[3];
    assert!(
        warm.report.stats.cache_hits > 0,
        "warm run never hit the cache"
    );

    if json {
        println!(
            "{}",
            render_json(files, lines, total_lines, seed, quick, &runs).render()
        );
        return;
    }

    println!(
        "Batch checking: {files} files, {total_lines} lines, {} defs",
        runs[0].report.stats.defs
    );
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "run", "wall", "workers", "steals", "hits", "misses"
    );
    for r in &runs {
        let s = &r.report.stats;
        println!(
            "{:<10} {:>7.2}s {:>8} {:>8} {:>8} {:>8}",
            r.name,
            r.wall.as_secs_f64(),
            s.workers,
            s.steals,
            s.cache_hits,
            s.cache_misses
        );
    }
    println!();
    let speedup = runs[0].wall.as_secs_f64() / runs[1].wall.as_secs_f64().max(1e-9);
    let cache_gain = runs[2].wall.as_secs_f64() / warm.wall.as_secs_f64().max(1e-9);
    println!("parallel speedup {speedup:.2}x, warm-cache speedup over cold {cache_gain:.2}x");
}

fn run_json(r: &Run) -> Json {
    let s = &r.report.stats;
    Json::obj(vec![
        ("wall_s", Json::Float(r.wall.as_secs_f64())),
        ("workers", Json::Int(s.workers as i64)),
        ("waves", Json::Int(s.waves as i64)),
        ("steals", Json::Int(s.steals as i64)),
        ("cache_hits", Json::Int(s.cache_hits as i64)),
        ("cache_misses", Json::Int(s.cache_misses as i64)),
    ])
}

fn render_json(
    files: usize,
    lines: usize,
    total_lines: usize,
    seed: u64,
    quick: bool,
    runs: &[Run; 4],
) -> Json {
    let serial = runs[0].wall.as_secs_f64();
    let parallel = runs[1].wall.as_secs_f64();
    let cold = runs[2].wall.as_secs_f64();
    let warm = runs[3].wall.as_secs_f64();
    Json::obj(vec![
        ("bench", Json::Str("batch".to_string())),
        ("seed", Json::Int(seed as i64)),
        ("quick", Json::Bool(quick)),
        ("files", Json::Int(files as i64)),
        ("lines_per_file", Json::Int(lines as i64)),
        ("total_lines", Json::Int(total_lines as i64)),
        ("defs", Json::Int(runs[0].report.stats.defs as i64)),
        ("serial", run_json(&runs[0])),
        ("parallel", run_json(&runs[1])),
        ("cold_cache", run_json(&runs[2])),
        ("warm_cache", run_json(&runs[3])),
        ("parallel_speedup", Json::Float(serial / parallel.max(1e-9))),
        ("warm_over_cold", Json::Float(cold / warm.max(1e-9))),
    ])
}
