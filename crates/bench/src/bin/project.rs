//! Microbenchmark for the projection engine: the indexed, class-aware
//! eliminator (`Cnf::project_out`) against the retained naive
//! Davis–Putnam reference (`Cnf::project_out_dp`).
//!
//! ```text
//! project [--quick] [--json] [--seed N]
//! ```
//!
//! Four workloads cover the clause shapes inference actually produces:
//!
//! * `chain`     — one long implication chain `f0 → f1 → … → fn` with
//!   every interior flag projected (the transitive-closure shape that
//!   dominates threaded record flows);
//! * `ladder`    — a bi-implication ladder (`fi ↔ fi+1` per rung), the
//!   shape column-wise record equations produce;
//! * `records`   — clusters of per-definition flags wired to a few
//!   shared globals by implications, mimicking a record-heavy β at
//!   `finish_def` time (most flags die, a handful survive);
//! * `symconcat` — `fr ↔ f1 ∨ f2` triples plus mutual-exclusion
//!   clauses, the genuine 3-CNF fragment symmetric concatenation
//!   emits, which forces the Davis–Putnam fallback.
//!
//! Both engines run on clones of the same formula and the results are
//! asserted mutually entailing, so the speedup is never bought with a
//! semantic drift. `BENCH_project.json` in the repository root is the
//! committed `--json` output of this binary.

use std::time::Duration;

use rowpoly_bench::bench;
use rowpoly_boolfun::{
    classify, solve_budgeted, Clause, Cnf, Flag, FlagSet, Lit, SatBudget, SatClass, Session,
};
use rowpoly_obs::json::Json;
use rowpoly_obs::rng::SplitMix64;

struct Workload {
    name: &'static str,
    beta: Cnf,
    dead: FlagSet,
}

struct Outcome {
    name: &'static str,
    flags: usize,
    clauses: usize,
    dead: usize,
    indexed: Duration,
    reference: Duration,
    fastpath: usize,
    fallback: usize,
}

fn p(i: u32) -> Lit {
    Lit::pos(Flag(i))
}
fn n(i: u32) -> Lit {
    Lit::neg(Flag(i))
}

/// `f0 → f1 → … → fn`, interior flags dead.
fn chain(len: u32) -> Workload {
    let mut beta = Cnf::top();
    for i in 0..len {
        beta.imply(p(i), p(i + 1));
    }
    beta.normalize();
    let dead: FlagSet = (1..len).map(Flag).collect();
    Workload {
        name: "chain",
        beta,
        dead,
    }
}

/// `fi ↔ fi+1` per rung, interior flags dead.
fn ladder(rungs: u32) -> Workload {
    let mut beta = Cnf::top();
    for i in 0..rungs {
        beta.iff(p(i), p(i + 1));
    }
    beta.normalize();
    let dead: FlagSet = (1..rungs).map(Flag).collect();
    Workload {
        name: "ladder",
        beta,
        dead,
    }
}

/// `defs` clusters of `width` flags each: intra-cluster implications
/// plus edges onto a small shared global set; every cluster-local flag
/// dies, the globals survive (the `finish_def` shape).
fn records(defs: u32, width: u32, seed: u64) -> Workload {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let globals = 8u32;
    let mut beta = Cnf::top();
    let mut dead = FlagSet::new();
    for d in 0..defs {
        let base = globals + d * width;
        for j in 0..width {
            let f = base + j;
            dead.insert(Flag(f));
            // A couple of intra-cluster implications per flag.
            for _ in 0..2 {
                let g = base + rng.gen_range(0..width);
                if g != f {
                    beta.imply(p(f), p(g));
                }
            }
            // One edge onto the shared globals.
            beta.imply(p(f), p(rng.gen_range(0..globals)));
        }
        // Units: some fields are asserted present, like select does.
        beta.assert_lit(p(base + rng.gen_range(0..width)));
    }
    beta.normalize();
    Workload {
        name: "records",
        beta,
        dead,
    }
}

/// `fr ↔ f1 ∨ f2` with mutual exclusion `¬f1 ∨ ¬f2` per triple; the
/// operand flags die, the results survive. Wide clauses force the
/// general-resolution fallback.
fn symconcat(triples: u32) -> Workload {
    let mut beta = Cnf::top();
    let mut dead = FlagSet::new();
    for t in 0..triples {
        let (f1, f2, fr) = (3 * t, 3 * t + 1, 3 * t + 2);
        beta.add_lits(vec![n(fr), p(f1), p(f2)]);
        beta.imply(p(f1), p(fr));
        beta.imply(p(f2), p(fr));
        beta.add_lits(vec![n(f1), n(f2)]);
        dead.insert(Flag(f1));
        dead.insert(Flag(f2));
    }
    beta.normalize();
    Workload {
        name: "symconcat",
        beta,
        dead,
    }
}

/// One simulated definition re-check cycle: a base β plus a stream of
/// single-clause edits, with satisfiability checked after every edit —
/// the access pattern `check_sat` produces as inference walks a
/// definition. The incremental engine answers each check from the
/// previous check's solver state; the fresh engine re-solves the grown
/// formula from scratch, which is what every check cost before
/// sessions.
struct EditReplay {
    base: Cnf,
    edits: Vec<Clause>,
}

/// A clause over distinct flags in one of the three shapes inference
/// emits: an implication, a merge (`¬a ∨ ¬b ∨ c`, two negatives), or a
/// cover (`a ∨ b ∨ ¬c`, two positives). The mix keeps the formula in
/// the general class — and satisfiable, since every clause keeps a
/// positive literal (the all-true model).
fn mixed_clause(rng: &mut SplitMix64, nflags: u32) -> Clause {
    fn pick(rng: &mut SplitMix64, nflags: u32, exclude: &[u32]) -> u32 {
        loop {
            let f = rng.gen_range(0..nflags);
            if !exclude.contains(&f) {
                return f;
            }
        }
    }
    let a = pick(rng, nflags, &[]);
    let b = pick(rng, nflags, &[a]);
    let lits = match rng.gen_range(0..3) {
        0 => vec![n(a), p(b)],
        1 => {
            let c = pick(rng, nflags, &[a, b]);
            vec![n(a), n(b), p(c)]
        }
        _ => {
            let c = pick(rng, nflags, &[a, b]);
            vec![p(a), p(b), n(c)]
        }
    };
    Clause::new(lits).expect("distinct flags cannot form a tautology")
}

fn edit_replay(nflags: u32, base_clauses: u32, edits: u32, seed: u64) -> EditReplay {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut base = Cnf::top();
    for _ in 0..base_clauses {
        base.add_clause(mixed_clause(&mut rng, nflags));
    }
    base.normalize();
    let edits = (0..edits).map(|_| mixed_clause(&mut rng, nflags)).collect();
    EditReplay { base, edits }
}

fn replay_fresh(r: &EditReplay, budget: &SatBudget) -> Vec<(bool, SatClass)> {
    let mut cnf = r.base.clone();
    let mut verdicts = Vec::with_capacity(r.edits.len());
    for e in &r.edits {
        cnf.add_clause(e.clone());
        let v = solve_budgeted(&cnf, budget).expect("unlimited");
        verdicts.push((v.is_sat(), classify(&cnf)));
    }
    verdicts
}

fn replay_incremental(r: &EditReplay, budget: &SatBudget) -> Vec<(bool, SatClass)> {
    let mut cnf = r.base.clone();
    let mut session = Session::new();
    let mut verdicts = Vec::with_capacity(r.edits.len());
    for e in &r.edits {
        cnf.add_clause(e.clone());
        session.sync(&cnf);
        let v = session.solve(budget).expect("unlimited");
        verdicts.push((v.is_sat(), session.class()));
    }
    verdicts
}

struct IncrOutcome {
    base_clauses: usize,
    edits: usize,
    fresh: Duration,
    incremental: Duration,
}

fn run_edit_replay(r: &EditReplay) -> IncrOutcome {
    let budget = SatBudget::unlimited();
    // Parity first: the per-edit verdict and class streams must be
    // identical before the speedup means anything.
    let fresh_verdicts = replay_fresh(r, &budget);
    let incr_verdicts = replay_incremental(r, &budget);
    assert_eq!(
        fresh_verdicts, incr_verdicts,
        "incremental replay diverged from fresh"
    );
    let fresh = bench("project/edit_replay/fresh", || replay_fresh(r, &budget));
    let incremental = bench("project/edit_replay/incremental", || {
        replay_incremental(r, &budget)
    });
    IncrOutcome {
        base_clauses: r.base.len(),
        edits: r.edits.len(),
        fresh,
        incremental,
    }
}

fn run(w: &Workload) -> Outcome {
    // Parity first: both engines must produce mutually entailing
    // results before either is worth timing.
    let mut a = w.beta.clone();
    let stats = a.project_out(&w.dead);
    let mut b = w.beta.clone();
    b.project_out_dp(&w.dead);
    assert!(
        a.entails(&b) && b.entails(&a),
        "{}: engines disagree ({} vs {} clauses)",
        w.name,
        a.len(),
        b.len()
    );

    let indexed = bench(&format!("project/{}/indexed", w.name), || {
        let mut c = w.beta.clone();
        c.project_out(&w.dead)
    });
    let reference = bench(&format!("project/{}/reference", w.name), || {
        let mut c = w.beta.clone();
        c.project_out_dp(&w.dead);
    });
    Outcome {
        name: w.name,
        flags: w.beta.flags().len(),
        clauses: w.beta.len(),
        dead: w.dead.len(),
        indexed,
        reference,
        fastpath: stats.fastpath,
        fallback: stats.fallback,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);

    let scale = if quick { 8 } else { 1 };
    let workloads = [
        chain(2048 / scale),
        ladder(1024 / scale),
        records(192 / scale, 12, seed),
        symconcat(256 / scale),
    ];

    let outcomes: Vec<Outcome> = workloads.iter().map(run).collect();

    let replay = if quick {
        edit_replay(48, 256, 32, seed)
    } else {
        edit_replay(96, 1024, 96, seed)
    };
    let incr = run_edit_replay(&replay);

    if json {
        let items: Vec<Json> = outcomes
            .iter()
            .map(|o| {
                Json::obj(vec![
                    ("name", Json::Str(o.name.to_string())),
                    ("flags", Json::Int(o.flags as i64)),
                    ("clauses", Json::Int(o.clauses as i64)),
                    ("dead", Json::Int(o.dead as i64)),
                    ("indexed_s", Json::Float(o.indexed.as_secs_f64())),
                    ("reference_s", Json::Float(o.reference.as_secs_f64())),
                    (
                        "speedup",
                        Json::Float(o.reference.as_secs_f64() / o.indexed.as_secs_f64().max(1e-9)),
                    ),
                    ("fastpath", Json::Int(o.fastpath as i64)),
                    ("fallback", Json::Int(o.fallback as i64)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("bench", Json::Str("project".to_string())),
            ("seed", Json::Int(seed as i64)),
            ("quick", Json::Bool(quick)),
            ("workloads", Json::Arr(items)),
            (
                "incremental",
                Json::obj(vec![
                    ("name", Json::Str("edit_replay".to_string())),
                    ("base_clauses", Json::Int(incr.base_clauses as i64)),
                    ("edits", Json::Int(incr.edits as i64)),
                    ("fresh_s", Json::Float(incr.fresh.as_secs_f64())),
                    ("incremental_s", Json::Float(incr.incremental.as_secs_f64())),
                    (
                        "incremental_speedup",
                        Json::Float(
                            incr.fresh.as_secs_f64() / incr.incremental.as_secs_f64().max(1e-9),
                        ),
                    ),
                    // Asserted before timing (per-edit verdicts and
                    // classes are compared elementwise); recorded so
                    // the CI gate can require it explicitly.
                    ("verdicts_match", Json::Bool(true)),
                ]),
            ),
        ]);
        println!("{}", doc.render());
    } else {
        println!();
        for o in &outcomes {
            println!(
                "{:<10} {:>6} flags {:>6} clauses  indexed {:>10.4?}  reference {:>10.4?}  {:>6.1}x  ({} fast, {} fallback)",
                o.name,
                o.flags,
                o.clauses,
                o.indexed,
                o.reference,
                o.reference.as_secs_f64() / o.indexed.as_secs_f64().max(1e-9),
                o.fastpath,
                o.fallback
            );
        }
        println!(
            "edit_replay {:>5} base clauses {:>4} edits  fresh {:>10.4?}  incremental {:>10.4?}  {:>6.1}x",
            incr.base_clauses,
            incr.edits,
            incr.fresh,
            incr.incremental,
            incr.fresh.as_secs_f64() / incr.incremental.as_secs_f64().max(1e-9),
        );
    }
}
