//! Edit-trace replay through the serve daemon: how fast is a keystroke?
//!
//! ```text
//! edits [--quick] [--json] [--mem] [--seed N] [--edits N]
//! ```
//!
//! `--mem` (or `ROWPOLY_MEM=1`) turns the counting allocator on for
//! the replay: each workload reports the allocator delta over its edit
//! trace and the hot memo's live-byte estimate against its configured
//! bound, and the JSON gains a process-wide `mem` block.
//!
//! For each Figure 9 decoder workload, the benchmark opens the
//! generated source in an in-process [`rowpoly_serve::ServeEngine`]
//! (the cold open runs full inference, like the first `rowpoly check`),
//! then replays a deterministic trace of single-literal edits through
//! the LSP-style incremental path (`change_ranges`) and records each
//! revision's wall time. The baseline is what an editor would otherwise
//! do: re-run one-shot inference over the whole file after every edit.
//!
//! Each edit rewrites one integer literal, which is the interesting
//! case for the query graph: the edited definition's group re-keys and
//! recomputes, but its closed scheme is unchanged, so every dependent
//! hits the memo — the daemon's per-edit cost is one group, not one
//! file. The cutoff counters in the report prove that: over the whole
//! trace, `verdict_recomputed` stays at one group per edit while
//! `verdict_hits` absorbs the rest.
//!
//! * `--quick`   — scale workloads down 8x and the trace to 10 edits;
//! * `--json`    — machine-readable report on stdout (this is what
//!   `BENCH_serve.json` in the repository root is);
//! * `--seed N`  — workload generation seed (default 42);
//! * `--edits N` — trace length per workload (default 30).

use std::time::Instant;

use rowpoly_core::{Options, Session};
use rowpoly_gen::{fig9_workloads, generate_with_lines};
use rowpoly_lang::LineMap;
use rowpoly_obs::json::Json;
use rowpoly_obs::mem::{self, MemDelta};
use rowpoly_serve::{RangeEdit, ServeConfig, ServeEngine};

#[global_allocator]
static ALLOC: rowpoly_obs::CountingAlloc = rowpoly_obs::CountingAlloc;

struct WorkloadResult {
    name: &'static str,
    lines: usize,
    defs: usize,
    open_ns: u64,
    /// Sorted per-edit wall times (ns).
    edit_ns: Vec<u64>,
    one_shot_ns: u64,
    verdict_hits: u64,
    verdict_recomputed: u64,
    defs_recomputed: u64,
    slices: u64,
    /// Allocator delta summed over the edit trace (accounting on only).
    trace_mem: Option<MemDelta>,
    /// Hot-memo live-byte estimate after the last edit, and its bound.
    memo_live_bytes: u64,
    memo_max_bytes: Option<u64>,
}

impl WorkloadResult {
    fn percentile(&self, p: f64) -> u64 {
        let n = self.edit_ns.len();
        let idx = ((p / 100.0) * (n.saturating_sub(1)) as f64).round() as usize;
        self.edit_ns[idx.min(n - 1)]
    }

    fn speedup_p99(&self) -> f64 {
        self.one_shot_ns as f64 / self.percentile(99.0).max(1) as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let seed = opt("--seed").unwrap_or(42);
    let edits = opt("--edits").unwrap_or(if quick { 10 } else { 30 }) as usize;
    mem::init_from_env();
    if args.iter().any(|a| a == "--mem") {
        mem::enable();
    }
    let mem_baseline = mem::tracking().then(|| (mem::snapshot(), mem::site_snapshot()));

    if !json {
        println!("serve: per-edit latency vs one-shot re-check (trace of {edits} literal edits)");
        println!();
        println!(
            "{:<18} {:>7} {:>6}  {:>10} {:>10} {:>10}  {:>10} {:>9}",
            "decoder", "lines", "defs", "p50", "p90", "p99", "one-shot", "speedup"
        );
    }

    let mut results = Vec::new();
    for w in fig9_workloads() {
        let target = if quick {
            w.paper_lines / 8
        } else {
            w.paper_lines
        };
        let (program, src) = generate_with_lines(target, w.with_sem, seed);
        let result = replay(w.name, &src, program.defs.len(), edits, seed);
        if !json {
            print_row(&result);
        }
        results.push(result);
    }

    let mem_block = mem_baseline.map(|(base_snap, base_sites)| {
        let now = mem::snapshot();
        let delta = now.delta_since(&base_snap);
        let sites = mem::site_delta(&mem::site_snapshot(), &base_sites);
        let defs: u64 = results.iter().map(|r| r.defs as u64).sum();
        mem::report_json(&delta, &base_snap, &now, &sites, defs)
    });

    if json {
        println!(
            "{}",
            render_json(seed, quick, edits, &results, mem_block).render()
        );
    } else {
        println!();
        println!("shape check: warm p99 should beat the one-shot baseline by >= 10x");
    }
}

fn replay(
    name: &'static str,
    source: &str,
    defs: usize,
    edits: usize,
    seed: u64,
) -> WorkloadResult {
    // No disk layer: the bench measures the hot path, and a cold disk
    // cache would only flatter the open time.
    let mut engine = ServeEngine::new(ServeConfig {
        cache_dir: None,
        ..ServeConfig::default()
    });
    let path = format!("{name}.rp");
    let opened = engine.open(&path, source.to_string(), 0);
    assert!(opened.ok, "workload {name} must check clean");

    let mut edit_ns = Vec::with_capacity(edits);
    let (mut hits, mut recomputed, mut defs_rec, mut slices) = (0u64, 0u64, 0u64, 0u64);
    let mut trace_mem = MemDelta::default();
    let mut memo_live_bytes = 0u64;
    for k in 0..edits {
        let text = &engine.document(&path).expect("open").source;
        let spans = literal_spans(text);
        assert!(!spans.is_empty(), "workload {name} has no integer literals");
        // A fixed stride walks the file deterministically; the seed
        // offsets it so different seeds touch different definitions.
        let (start, end) = spans[(seed as usize + k * 7919) % spans.len()];
        let lm = LineMap::new(text);
        let (sl, sc) = lm.position(start as u32);
        let (el, ec) = lm.position(end as u32);
        let edit = RangeEdit {
            start_line: sl - 1,
            start_character: sc - 1,
            end_line: el - 1,
            end_character: ec - 1,
            text: format!("{}", (k % 89) + 1),
        };
        let update = engine
            .change_ranges(&path, &[edit], k as i64 + 1)
            .expect("document is open");
        assert!(update.ok, "edit {k} broke workload {name}");
        edit_ns.push(update.stats.wall_ns);
        hits += update.stats.verdict_hits;
        recomputed += update.stats.verdict_recomputed;
        defs_rec += update.stats.defs_recomputed;
        slices += update.stats.slices;
        trace_mem.merge(&update.stats.mem);
        memo_live_bytes = update.stats.memo_live_bytes;
    }
    edit_ns.sort_unstable();

    // Baseline: re-run one-shot inference over the whole file, exactly
    // what `rowpoly check` does per invocation. Best of 3 — the
    // generous baseline makes the speedup claim conservative.
    let final_text = engine.document(&path).expect("open").source.clone();
    let one_shot_ns = (0..3)
        .map(|_| {
            let start = Instant::now();
            let program = rowpoly_lang::parse_program(&final_text).expect("parses");
            Session::new(Options::default())
                .infer_program(&program)
                .expect("checks");
            start.elapsed().as_nanos() as u64
        })
        .min()
        .expect("three samples");

    WorkloadResult {
        name,
        lines: source.lines().count(),
        defs,
        open_ns: opened.stats.wall_ns,
        edit_ns,
        one_shot_ns,
        verdict_hits: hits,
        verdict_recomputed: recomputed,
        defs_recomputed: defs_rec,
        slices,
        trace_mem: mem::tracking().then_some(trace_mem),
        memo_live_bytes,
        memo_max_bytes: ServeConfig::default().memo_max_bytes,
    }
}

/// Byte ranges of standalone integer literals (digit runs not embedded
/// in an identifier).
fn literal_spans(text: &str) -> Vec<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let embedded =
                start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
            if !embedded {
                spans.push((start, i));
            }
        } else {
            i += 1;
        }
    }
    spans
}

fn print_row(r: &WorkloadResult) {
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "{:<18} {:>7} {:>6}  {:>8.2}ms {:>8.2}ms {:>8.2}ms  {:>8.2}ms {:>8.1}x",
        r.name,
        r.lines,
        r.defs,
        ms(r.percentile(50.0)),
        ms(r.percentile(90.0)),
        ms(r.percentile(99.0)),
        ms(r.one_shot_ns),
        r.speedup_p99(),
    );
    println!(
        "    cutoff: {} verdicts recomputed / {} slices over the trace ({} hits, {} defs re-inferred)",
        r.verdict_recomputed, r.slices, r.verdict_hits, r.defs_recomputed
    );
}

fn render_json(
    seed: u64,
    quick: bool,
    edits: usize,
    results: &[WorkloadResult],
    mem_block: Option<Json>,
) -> Json {
    let workloads: Vec<Json> = results
        .iter()
        .map(|r| {
            let mut members = vec![
                ("name", Json::Str(r.name.to_string())),
                ("lines", Json::Int(r.lines as i64)),
                ("defs", Json::Int(r.defs as i64)),
                ("open_ns", Json::Int(r.open_ns as i64)),
                ("edits", Json::Int(r.edit_ns.len() as i64)),
                (
                    "per_edit_ns",
                    Json::obj(vec![
                        ("p50", Json::Int(r.percentile(50.0) as i64)),
                        ("p90", Json::Int(r.percentile(90.0) as i64)),
                        ("p99", Json::Int(r.percentile(99.0) as i64)),
                        (
                            "max",
                            Json::Int(*r.edit_ns.last().expect("nonempty") as i64),
                        ),
                    ]),
                ),
                ("one_shot_ns", Json::Int(r.one_shot_ns as i64)),
                ("speedup_p99", Json::Float(r.speedup_p99())),
                (
                    "cutoff",
                    Json::obj(vec![
                        ("slices", Json::Int(r.slices as i64)),
                        ("verdict_hits", Json::Int(r.verdict_hits as i64)),
                        ("verdict_recomputed", Json::Int(r.verdict_recomputed as i64)),
                        ("defs_recomputed", Json::Int(r.defs_recomputed as i64)),
                    ]),
                ),
            ];
            if let Some(d) = &r.trace_mem {
                members.push((
                    "mem",
                    Json::obj(vec![
                        ("trace_delta", d.to_json()),
                        ("memo_live_bytes", Json::Int(r.memo_live_bytes as i64)),
                        (
                            "memo_max_bytes",
                            r.memo_max_bytes.map_or(Json::Null, |v| Json::Int(v as i64)),
                        ),
                    ]),
                ));
            }
            Json::obj(members)
        })
        .collect();
    let min_speedup = results
        .iter()
        .map(WorkloadResult::speedup_p99)
        .fold(f64::INFINITY, f64::min);
    let mut members = vec![
        ("bench", Json::Str("serve-edits".to_string())),
        ("seed", Json::Int(seed as i64)),
        ("quick", Json::Bool(quick)),
        ("edits_per_workload", Json::Int(edits as i64)),
        // Host context, mirroring BENCH_batch.json (satellite of the
        // memory-observability issue: every benchmark records the
        // machine it ran on).
        (
            "host_cpus",
            Json::Int(std::thread::available_parallelism().map_or(1, |n| n.get()) as i64),
        ),
        (
            "host_mem_bytes",
            mem::host_mem_bytes().map_or(Json::Null, |v| Json::Int(v as i64)),
        ),
        ("workloads", Json::Arr(workloads)),
        ("min_speedup_p99", Json::Float(min_speedup)),
    ];
    if let Some(mem) = mem_block {
        members.push(("mem", mem));
    }
    Json::obj(members)
}
