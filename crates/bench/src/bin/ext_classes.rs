//! Extension experiment (ours, not in the paper): end-to-end inference
//! cost and satisfiability class per workload family.
//!
//! The paper's Fig. 9 only exercises select/update programs (its
//! implementation supports nothing else). This table measures what the
//! Section 5 classification costs on whole programs once the other
//! operations exist:
//!
//! * `decoder` — select/update pipelines (2-SAT fragment);
//! * `guarded` — optional fields consumed behind `when` guards
//!   (general CNF);
//! * `guarded+concat` — additionally merges side tables with `@`.
//!
//! ```sh
//! cargo run --release -p rowpoly-bench --bin ext_classes
//! ```

use std::time::Instant;

use rowpoly_core::{Options, Session};
use rowpoly_gen::{generate_guarded, generate_with_lines, GuardedParams};
use rowpoly_lang::pretty_program;

fn main() {
    println!(
        "{:<16} {:>7} {:>10} {:>10} {:>9} {:>10}",
        "workload", "lines", "time w/o", "time w.", "ratio", "SAT class"
    );
    for scale in [4usize, 16] {
        // Decoder family at a comparable size.
        let (decoder, dsrc) = generate_with_lines(scale * 120, false, 7);
        row("decoder", &pretty_lines(&dsrc), &decoder);

        let guarded = generate_guarded(&GuardedParams {
            modules: scale,
            fields_per_module: 3,
            with_concat: false,
            ..GuardedParams::default()
        });
        row(
            "guarded",
            &pretty_lines(&pretty_program(&guarded)),
            &guarded,
        );

        let concat = generate_guarded(&GuardedParams {
            modules: scale,
            fields_per_module: 3,
            with_concat: true,
            ..GuardedParams::default()
        });
        row(
            "guarded+concat",
            &pretty_lines(&pretty_program(&concat)),
            &concat,
        );
    }
}

fn pretty_lines(src: &str) -> usize {
    src.lines().count()
}

fn row(name: &str, lines: &usize, program: &rowpoly_lang::Program) {
    let run = |track: bool| {
        let opts = Options {
            track_fields: track,
            ..Options::default()
        };
        let start = Instant::now();
        let report = Session::new(opts)
            .infer_program(program)
            .unwrap_or_else(|e| panic!("{name} should check: {e}"));
        (start.elapsed().as_secs_f64(), report)
    };
    let (t0, _) = run(false);
    let (t1, report) = run(true);
    println!(
        "{:<16} {:>7} {:>9.3}s {:>9.3}s {:>8.2}x {:>10?}",
        name,
        lines,
        t0,
        t1,
        t1 / t0.max(1e-9),
        report.sat_class
    );
}
