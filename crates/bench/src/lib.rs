//! Benchmark harness crate. The executable entry point is the `fig9`
//! binary (regenerating the paper's Figure 9); the Criterion benches
//! cover the same workloads at reduced scale plus the solver- and
//! environment-versioning ablations called out in `DESIGN.md`.
