//! Benchmark harness crate. The executable entry point is the `fig9`
//! binary (regenerating the paper's Figure 9); the `cargo bench`
//! targets cover the same workloads at reduced scale plus the solver-
//! and environment-versioning ablations called out in `DESIGN.md`.
//!
//! The bench targets run on the in-tree [`harness`] below (the build
//! environment has no crates.io access, so Criterion is unavailable):
//! a warmup pass, a fixed number of timed samples, and a median /
//! min / max summary line per benchmark.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 10;

/// Runs `f` through a warmup pass plus [`DEFAULT_SAMPLES`] timed
/// samples and prints one summary line to stderr (keeping stdout clean
/// for `--json` artifacts). Returns the median sample so
/// callers (and tests) can assert on it. The closure's result is
/// returned through `std::hint::black_box`, preventing the optimiser
/// from deleting the measured work.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Duration {
    bench_with_samples(name, DEFAULT_SAMPLES, &mut f)
}

/// [`bench`] with an explicit sample count.
pub fn bench_with_samples<R>(name: &str, samples: usize, f: &mut impl FnMut() -> R) -> Duration {
    assert!(samples > 0);
    std::hint::black_box(f()); // warmup
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    eprintln!(
        "{name:<44} median {:>12?}  min {:>12?}  max {:>12?}  ({samples} samples)",
        median,
        times[0],
        times[times.len() - 1]
    );
    median
}
