//! Regression: the peak watermark must cover a section's bytes even
//! when they never crossed the live-gauge batching threshold.
//!
//! Allocations are folded into the global gauge in batches of
//! [`mem::LIVE_FLUSH_BYTES`]; a [`MemSite`] scope that allocates just
//! under that and exits used to leave the bytes in the thread's
//! pending net — if the section's memory was freed before the next
//! exact read, the peak never saw it. Scope exit now forces a fold.
//!
//! This binary runs a single test so the global gauge only moves on
//! this test's behalf (the shared-process variants in `tests/mem.rs`
//! must phrase everything over thread-local deltas instead).

use std::hint::black_box;

use rowpoly_obs::mem::{self, CountingAlloc, MemSite};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static SECTION: MemSite = MemSite::new("test.peak.section");

#[test]
fn scope_exit_folds_unflushed_bytes_into_peak() {
    let _session = mem::accounting_session();
    assert!(mem::installed());
    // Exact read: folds the true live gauge into the peak baseline.
    let live_before = mem::live_bytes();
    // Just under the batching threshold, so the allocation alone never
    // triggers a flush.
    let size = (mem::LIVE_FLUSH_BYTES as usize) - 1024;
    let held;
    {
        let _guard = SECTION.scope();
        held = black_box(vec![0u8; size]);
    }
    // Freed after the scope and before any exact read — only the fold
    // at scope exit can have pushed the section's residency into the
    // watermark.
    drop(black_box(held));
    let peak = mem::peak_bytes();
    assert!(
        peak >= live_before + size as i64 - 4096,
        "peak {peak} missed a {size}-byte section over baseline {live_before}"
    );
}
