//! Concurrency stress tests for the observability layer: metric
//! recording under thread contention must lose nothing, and per-thread
//! timelines must merge into a well-formed multi-track Chrome trace.

use std::sync::atomic::{AtomicU64, Ordering};

use rowpoly_obs as obs;
use rowpoly_obs::contention::LockTimer;
use rowpoly_obs::json::Json;
use rowpoly_obs::timeline::{Profiler, TimelineEventKind};

const THREADS: usize = 8;
const INCREMENTS: u64 = 10_000;

/// Hammering one counter from many threads loses no increments: the
/// final value is exactly `THREADS * INCREMENTS`, and a histogram fed
/// the same traffic accounts for every sample.
#[test]
fn concurrent_counter_increments_are_never_lost() {
    let collector = obs::Collector::new(true);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let collector = &collector;
            scope.spawn(move || {
                for i in 0..INCREMENTS {
                    collector.counter_add("stress.counter", 1);
                    collector.counter_max("stress.max", t as u64 * INCREMENTS + i);
                    collector.hist_record("stress.hist", i);
                }
            });
        }
    });
    let snap = collector.snapshot();
    assert_eq!(
        snap.metrics.counter("stress.counter"),
        THREADS as u64 * INCREMENTS,
        "increments lost under contention"
    );
    assert_eq!(
        snap.metrics.maximum("stress.max"),
        THREADS as u64 * INCREMENTS - 1,
        "counter_max lost the global maximum"
    );
    let hist = snap.metrics.histogram("stress.hist").expect("histogram");
    assert_eq!(
        hist.count(),
        THREADS as u64 * INCREMENTS,
        "histogram samples lost under contention"
    );
}

/// A contended instrumented lock counts every acquisition exactly once
/// across threads, and the guarded increments themselves all land.
#[test]
fn contended_lock_timer_accounts_every_acquisition() {
    static STRESS_LOCK: LockTimer = LockTimer::new("stress.lock");
    let _session = rowpoly_obs::contention::profiling_session();
    let baseline = rowpoly_obs::contention::snapshot();
    let shared = std::sync::Mutex::new(0u64);
    let rounds = 2_000u64;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let shared = &shared;
            scope.spawn(move || {
                for _ in 0..rounds {
                    *STRESS_LOCK.lock(shared) += 1;
                }
            });
        }
    });
    assert_eq!(*shared.lock().unwrap(), THREADS as u64 * rounds);
    let now = rowpoly_obs::contention::snapshot();
    let delta = rowpoly_obs::contention::delta(&now, &baseline);
    let stats = delta
        .iter()
        .find(|l| l.name == "stress.lock")
        .expect("stress lock registered");
    assert_eq!(
        stats.acquisitions,
        THREADS as u64 * rounds,
        "acquisitions lost under contention"
    );
    assert!(stats.contended <= stats.acquisitions);
}

/// Concurrent per-thread timelines merge into a Chrome trace that is
/// globally timestamp-ordered, balanced per track, and whose spans
/// never overlap within one worker's track (per-track events are
/// sequential by construction — this asserts the exporter keeps them
/// that way).
#[test]
fn concurrent_timelines_merge_into_a_well_formed_trace() {
    let profiler = Profiler::new();
    let spans_per_thread = 500usize;
    let total_spans = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..THREADS {
            let profiler = &profiler;
            let total_spans = &total_spans;
            scope.spawn(move || {
                let mut tl = profiler.worker(w as u32);
                for i in 0..spans_per_thread {
                    tl.begin_with(|| format!("w{w} job {i}"));
                    if i % 7 == 0 {
                        tl.instant("steal");
                    }
                    tl.end();
                    total_spans.fetch_add(1, Ordering::Relaxed);
                }
                profiler.submit(tl);
            });
        }
    });
    let snap = profiler.finish();
    assert_eq!(snap.workers.len(), THREADS);
    let recorded: usize = snap
        .workers
        .iter()
        .map(|t| {
            t.events
                .iter()
                .filter(|e| e.kind == TimelineEventKind::Begin)
                .count()
        })
        .sum();
    assert_eq!(
        recorded as u64,
        total_spans.load(Ordering::Relaxed),
        "span events lost across threads"
    );

    let text = obs::chrome::chrome_trace_timelines(&snap);
    let doc = obs::json::parse(&text).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let ph = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap().to_string();
    let tid = |e: &Json| e.get("tid").and_then(Json::as_i64).unwrap();

    // Global monotonicity, and per-track: monotone, balanced, and
    // non-overlapping (depth never exceeds 1 — each worker closes a
    // span before opening the next).
    let mut last_global = f64::MIN;
    let mut track_state: std::collections::BTreeMap<i64, (f64, i64)> = Default::default();
    for e in events.iter().filter(|e| ph(e) != "M") {
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        assert!(ts >= last_global, "global ts order violated");
        last_global = ts;
        let (last, depth) = track_state.entry(tid(e)).or_insert((f64::MIN, 0));
        assert!(ts >= *last, "per-track ts order violated on tid {}", tid(e));
        *last = ts;
        match ph(e).as_str() {
            "B" => {
                *depth += 1;
                assert!(
                    *depth <= 1,
                    "overlapping spans within one track (tid {})",
                    tid(e)
                );
            }
            "E" => {
                *depth -= 1;
                assert!(*depth >= 0);
            }
            _ => {}
        }
    }
    assert_eq!(track_state.len(), THREADS, "a worker track went missing");
    for (t, (_, depth)) in &track_state {
        assert_eq!(*depth, 0, "unbalanced track tid {t}");
    }
}
