//! End-to-end counting-allocator tests.
//!
//! This test binary installs [`CountingAlloc`] as its global
//! allocator, so the hooks genuinely fire — unlike the crate's unit
//! tests, which only exercise the bookkeeping. Tests here run
//! concurrently in one process, so every assertion is phrased over
//! *thread-local* deltas or test-unique sites; process-global
//! exact-equality invariants live in `crates/batch/tests/mem_stress.rs`,
//! whose binary runs a single test.

use std::hint::black_box;

use rowpoly_obs::mem::{self, CountingAlloc, MemSite};
use rowpoly_obs::{Phase, PhaseClock};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn allocator_counts_thread_deltas_exactly() {
    let _session = mem::accounting_session();
    assert!(mem::installed());

    let mark = mem::thread_mark();
    let v = black_box(vec![0u8; 4096]);
    let d = mem::thread_delta_since(&mark);
    assert!(d.alloc_bytes >= 4096, "alloc not counted: {d:?}");
    assert!(d.allocs >= 1);
    assert_eq!(d.deallocs, 0, "nothing freed yet: {d:?}");

    drop(black_box(v));
    let d = mem::thread_delta_since(&mark);
    assert!(d.freed_bytes >= 4096, "free not counted: {d:?}");
    assert!(d.deallocs >= 1);
    assert_eq!(d.net_bytes(), 0, "balanced window: {d:?}");
}

#[test]
fn reallocs_count_both_halves() {
    let _session = mem::accounting_session();
    let mark = mem::thread_mark();
    let mut v: Vec<u64> = Vec::with_capacity(4);
    for i in 0..1024u64 {
        v.push(i);
    }
    let d = mem::thread_delta_since(&mark);
    // Growing 4 → 1024 capacity reallocs several times; each one is
    // an alloc plus a dealloc of the old block.
    assert!(d.allocs >= 3, "{d:?}");
    assert!(d.deallocs >= 2, "{d:?}");
    assert!(d.alloc_bytes >= 1024 * 8, "{d:?}");
    drop(black_box(v));
}

#[test]
fn global_ledger_observes_this_thread() {
    let _session = mem::accounting_session();
    let before = mem::snapshot();
    let v = black_box(vec![0u8; 1 << 20]);
    let after = mem::snapshot();
    let d = after.delta_since(&before);
    // Other tests only ever add, so our megabyte is a floor.
    assert!(d.alloc_bytes >= 1 << 20, "{d:?}");
    assert!(after.peak_bytes >= before.peak_bytes, "peak is monotone");
    assert!(
        after.size_hist.iter().sum::<u64>() > before.size_hist.iter().sum::<u64>(),
        "size histogram advanced"
    );
    drop(black_box(v));
}

static OUTER: MemSite = MemSite::new("test.scope.outer");
static INNER: MemSite = MemSite::new("test.scope.inner");

#[test]
fn scopes_attribute_bytes_exclusively() {
    let _session = mem::accounting_session();
    {
        let _o = OUTER.scope();
        let a = black_box(vec![0u8; 10_000]);
        {
            let _i = INNER.scope();
            let b = black_box(vec![0u8; 20_000]);
            drop(black_box(b));
        }
        drop(black_box(a));
    }
    let sites = mem::site_snapshot();
    let outer = sites.iter().find(|s| s.name == "test.scope.outer").unwrap();
    let inner = sites.iter().find(|s| s.name == "test.scope.inner").unwrap();
    assert!(
        (10_000..15_000).contains(&outer.delta.alloc_bytes),
        "outer must get its own 10k but not the nested 20k: {outer:?}"
    );
    assert!(
        (20_000..25_000).contains(&inner.delta.alloc_bytes),
        "inner gets exactly the nested allocation: {inner:?}"
    );
    assert!(outer.delta.freed_bytes >= 10_000, "{outer:?}");
    assert!(inner.delta.freed_bytes >= 20_000, "{inner:?}");
    assert_eq!(outer.enters, 1);
    assert_eq!(inner.enters, 1);
}

#[test]
fn phase_clock_attributes_bytes_exclusively() {
    let _session = mem::accounting_session();
    let mut clock = PhaseClock::new();
    clock.enter(Phase::ApplyS);
    let a = black_box(vec![0u8; 50_000]);
    clock.enter(Phase::Project);
    let b = black_box(vec![0u8; 70_000]);
    clock.exit();
    clock.exit();
    assert!(
        (50_000..60_000).contains(&clock.alloc_bytes(Phase::ApplyS)),
        "applys gets its own 50k, not the nested 70k: {}",
        clock.alloc_bytes(Phase::ApplyS)
    );
    assert!(
        (70_000..80_000).contains(&clock.alloc_bytes(Phase::Project)),
        "project gets exactly the nested allocation: {}",
        clock.alloc_bytes(Phase::Project)
    );
    assert_eq!(clock.alloc_bytes(Phase::Unify), 0);
    drop(black_box((a, b)));
}

#[test]
fn worker_slots_survive_their_threads() {
    let _session = mem::accounting_session();
    let before = mem::slots_snapshot();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let v = black_box(vec![i as u8; 100_000]);
                drop(black_box(v));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let after = mem::slots_snapshot();
    assert!(
        after.len() >= before.len(),
        "slots are never dropped from the registry"
    );
    let merged = mem::slots_delta(&after, &before);
    // Each worker allocated at least 100k on its own (new) slot.
    assert!(merged.alloc_bytes >= 400_000, "{merged:?}");
    assert!(merged.freed_bytes >= 400_000, "{merged:?}");
}
