//! Minimal JSON support: a value type, a compact encoder, and a strict
//! recursive-descent parser.
//!
//! The exporters in [`crate::chrome`] and [`crate::report`] need to
//! *write* JSON; their golden tests (and the `fig9 --json` consumers)
//! need to *read* it back. Keeping both halves in one tiny module means
//! the shape tests exercise exactly the encoder that ships.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order so exported documents
/// are stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integral numbers are kept exact; timestamps in particular must
    /// not pick up floating-point noise.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to f64 (integers convert losslessly up
    /// to 2^53, far beyond any duration this crate records).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer payload, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{:.1}", x));
    } else {
        out.push_str(&format!("{}", x));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        let mut keys = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if keys.insert(key.clone(), ()).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates in exported documents never
                            // appear; reject rather than mis-decode.
                            let c =
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err("control character in string".to_string()),
                Some(_) => {
                    // Consume one UTF-8 scalar; input came from &str so
                    // boundaries are sound.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("a \"quoted\"\nthing".to_string())),
            ("n", Json::Int(-42)),
            ("x", Json::Float(1.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage_and_duplicates() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = parse(" { \"k\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            doc.get("k").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "A\t"
        );
    }

    #[test]
    fn integers_stay_exact() {
        let n = 9_007_199_254_740_993i64; // 2^53 + 1: lossy as f64
        assert_eq!(parse(&Json::Int(n).render()).unwrap().as_i64(), Some(n));
    }
}
