//! The global, feature-light event and metrics collector.
//!
//! Every instrumentation point in the workspace funnels through the
//! process-wide [`Collector`]. When collection is disabled — the
//! default — each call is one relaxed atomic load and an immediate
//! return, so the inference hot path pays essentially nothing. When
//! enabled (programmatically, via `--trace`, or via the
//! [`TRACE_ENV`]/`ROWPOLY_TRACE` environment variable) spans and
//! metrics accumulate behind a mutex until [`snapshot`]/[`reset`]
//! drains them into exporters.
//!
//! [`Collector`] is also an ordinary value: tests build private
//! instances so golden tests never race the global one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// Environment variable naming the Chrome trace output path. When set,
/// sessions enable the global collector and write a trace on completion.
pub const TRACE_ENV: &str = "ROWPOLY_TRACE";

/// Whether a [`SpanEvent`] opens or closes a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    Begin,
    End,
}

/// One recorded span edge. Timestamps are nanoseconds since the
/// collector's epoch and are non-decreasing in recording order.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    pub name: String,
    /// Small dense thread number (0 for the first thread seen).
    pub tid: u32,
    pub ts_ns: u64,
    pub kind: EventKind,
}

#[derive(Default)]
struct Inner {
    events: Vec<SpanEvent>,
    metrics: MetricsRegistry,
    /// Dense renumbering of OS thread ids for stable trace output.
    threads: HashMap<ThreadId, u32>,
    /// Per-thread stack of open span names, so `End` events always
    /// balance and carry the right name.
    open: HashMap<u32, Vec<String>>,
}

/// An immutable copy of everything collected so far.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub events: Vec<SpanEvent>,
    pub metrics: MetricsRegistry,
}

/// Thread-safe span and metrics sink. See the module docs.
pub struct Collector {
    enabled: AtomicBool,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new(false)
    }
}

impl Collector {
    pub fn new(enabled: bool) -> Collector {
        Collector {
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The one-atomic-load fast path guarding every instrumentation
    /// point.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Collection never holds the lock across user code, so a
        // poisoned mutex only means a panic mid-record; the data is
        // still structurally sound (at worst one unbalanced span, which
        // exporters tolerate by closing open spans at snapshot time).
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Opens a span. Balanced by [`Collector::end_span`] on the same
    /// thread.
    pub fn begin_span(&self, name: &str) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        // Timestamp under the lock so append order equals time order.
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        let tid = thread_number(&mut inner);
        inner.open.entry(tid).or_default().push(name.to_string());
        inner.events.push(SpanEvent {
            name: name.to_string(),
            tid,
            ts_ns,
            kind: EventKind::Begin,
        });
    }

    /// Closes the innermost open span on this thread. A stray call with
    /// no open span is ignored (this happens when collection was
    /// enabled between a guard's construction and drop).
    pub fn end_span(&self) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        let tid = thread_number(&mut inner);
        let Some(name) = inner.open.get_mut(&tid).and_then(Vec::pop) else {
            return;
        };
        inner.events.push(SpanEvent {
            name,
            tid,
            ts_ns,
            kind: EventKind::End,
        });
    }

    /// Adds `n` to counter `name`.
    pub fn counter_add(&self, name: &str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().metrics.add(name, n);
    }

    /// Raises maximum `name` to at least `value`.
    pub fn counter_max(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().metrics.raise_max(name, value);
    }

    /// Records `value` into histogram `name`.
    pub fn hist_record(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().metrics.record(name, value);
    }

    /// Folds a privately accumulated registry in (counters add, maxima
    /// max, histograms merge). Lets hot loops batch locally and pay the
    /// lock once.
    pub fn merge_metrics(&self, other: &MetricsRegistry) {
        if !self.is_enabled() {
            return;
        }
        self.lock().metrics.merge(other);
    }

    /// Copies out everything collected so far, closing any still-open
    /// spans at the current instant so exports are always balanced.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut events = inner.events.clone();
        let mut open: Vec<(u32, Vec<String>)> = inner
            .open
            .iter()
            .map(|(&tid, stack)| (tid, stack.clone()))
            .collect();
        open.sort_by_key(|&(tid, _)| tid);
        for (tid, stack) in &mut open {
            while let Some(name) = stack.pop() {
                events.push(SpanEvent {
                    name,
                    tid: *tid,
                    ts_ns,
                    kind: EventKind::End,
                });
            }
        }
        Snapshot {
            events,
            metrics: inner.metrics.clone(),
        }
    }

    /// Clears all collected events and metrics (the enabled flag is
    /// untouched).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.metrics = MetricsRegistry::new();
        inner.threads.clear();
        inner.open.clear();
    }
}

fn thread_number(inner: &mut Inner) -> u32 {
    let id = std::thread::current().id();
    let next = inner.threads.len() as u32;
    *inner.threads.entry(id).or_insert(next)
}

/// The process-wide collector used by the free functions below and all
/// workspace instrumentation.
pub fn collector() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::default)
}

/// Fast global enabled check.
#[inline]
pub fn enabled() -> bool {
    collector().is_enabled()
}

/// Enables global collection.
pub fn enable() {
    collector().set_enabled(true);
}

/// Disables global collection (already-collected data is kept).
pub fn disable() {
    collector().set_enabled(false);
}

/// Clears the global collector's data.
pub fn reset() {
    collector().reset();
}

/// Snapshots the global collector.
pub fn snapshot() -> Snapshot {
    collector().snapshot()
}

/// Reads [`TRACE_ENV`] once per process; if it names a path, enables
/// the global collector and returns the path. Sessions call this on
/// startup and export to the returned path when they finish.
pub fn init_from_env() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| match std::env::var(TRACE_ENV) {
        Ok(path) if !path.is_empty() => {
            enable();
            Some(path)
        }
        _ => None,
    })
    .as_deref()
}

/// RAII guard closing a span on drop. Inert (no work on drop) when
/// collection was disabled at construction time.
#[must_use = "a span guard closes its span when dropped"]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            collector().end_span();
        }
    }
}

/// Opens a span on the global collector. The name conversion only
/// happens when collection is enabled, so passing `&'static str` from
/// hot paths costs one atomic load when disabled.
pub fn span(name: &str) -> SpanGuard {
    let c = collector();
    if !c.is_enabled() {
        return SpanGuard { active: false };
    }
    c.begin_span(name);
    SpanGuard { active: true }
}

/// Like [`span`], but the name is computed lazily — use this when the
/// name needs a `format!` (e.g. per-definition spans).
pub fn span_lazy(name: impl FnOnce() -> String) -> SpanGuard {
    let c = collector();
    if !c.is_enabled() {
        return SpanGuard { active: false };
    }
    c.begin_span(&name());
    SpanGuard { active: true }
}

/// Adds to a global counter.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    collector().counter_add(name, n);
}

/// Raises a global maximum.
#[inline]
pub fn counter_max(name: &str, value: u64) {
    collector().counter_max(name, value);
}

/// Records into a global histogram.
#[inline]
pub fn hist_record(name: &str, value: u64) {
    collector().hist_record(name, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::new(false);
        c.begin_span("x");
        c.counter_add("n", 5);
        c.end_span();
        let snap = c.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.metrics.is_empty());
    }

    #[test]
    fn spans_balance_and_timestamps_are_monotone() {
        let c = Collector::new(true);
        c.begin_span("outer");
        c.begin_span("inner");
        c.end_span();
        c.end_span();
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert!(snap.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let kinds: Vec<EventKind> = snap.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Begin,
                EventKind::Begin,
                EventKind::End,
                EventKind::End
            ]
        );
        // End events carry the matching (innermost-first) names.
        assert_eq!(snap.events[2].name, "inner");
        assert_eq!(snap.events[3].name, "outer");
    }

    #[test]
    fn snapshot_closes_open_spans() {
        let c = Collector::new(true);
        c.begin_span("left-open");
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[1].kind, EventKind::End);
        assert_eq!(snap.events[1].name, "left-open");
        // The collector itself still considers the span open.
        c.end_span();
        assert_eq!(c.snapshot().events.len(), 2);
    }

    #[test]
    fn counters_merge_across_threads() {
        let c = std::sync::Arc::new(Collector::new(true));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.counter_add("hits", 1);
                }
                c.counter_max("peak", 17);
                c.hist_record("sizes", 3);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.metrics.counter("hits"), 8000);
        assert_eq!(snap.metrics.maximum("peak"), 17);
        assert_eq!(snap.metrics.histogram("sizes").unwrap().count(), 8);
    }

    #[test]
    fn thread_numbers_are_dense() {
        let c = Collector::new(true);
        c.begin_span("main-thread");
        std::thread::scope(|s| {
            s.spawn(|| c.begin_span("worker")).join().unwrap();
        });
        c.end_span();
        let snap = c.snapshot();
        let tids: Vec<u32> = snap.events.iter().map(|e| e.tid).collect();
        assert!(tids.contains(&0) && tids.contains(&1));
    }
}
