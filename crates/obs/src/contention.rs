//! Lock-contention accounting: who waited, on which lock, for how long.
//!
//! A parallel pipeline that shows no speedup is usually *waiting*
//! somewhere invisible — a queue mutex, a shared interner, a cache
//! lock. This module makes that waiting measurable without perturbing
//! it: each instrumented lock site declares a `static` [`LockTimer`],
//! and acquisitions go through [`LockTimer::lock`], which
//!
//! * is a plain `Mutex::lock` behind one relaxed atomic load while
//!   profiling is off (the default) — no timestamps, no counters;
//! * while profiling is on, tries `try_lock` first and only reaches
//!   for the clock on *contended* acquisitions, recording the wait
//!   into lock-free atomic accumulators (count, total, max, log₂
//!   buckets) plus a thread-local tally so schedulers can attribute
//!   wait time to the worker that suffered it.
//!
//! Profiling is reference-counted ([`profiling_session`]) so nested or
//! concurrent profilers compose, and the accumulators are process-wide
//! monotone — consumers snapshot at start and end and subtract
//! ([`LockWaitStats::delta_since`]).
//!
//! The deliberate design constraint: recording contention must not
//! *create* contention, so there is no mutex anywhere on the record
//! path — only atomics and TLS. The one mutex (the site registry) is
//! touched once per site per process.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, TryLockError};
use std::time::Instant;

use crate::json::Json;
use crate::metrics::{bucket_index, percentile_from_buckets};

/// Log₂ wait-time buckets: bucket 0 holds 0 ns, bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)` ns; 40 buckets cover waits up to ~9 minutes.
pub const WAIT_BUCKETS: usize = 40;

static SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// Whether any profiling session is active. One relaxed load.
#[inline]
pub fn profiling() -> bool {
    SESSIONS.load(Ordering::Relaxed) != 0
}

/// RAII handle keeping lock profiling on; sessions nest.
#[must_use = "dropping the session turns lock profiling back off"]
pub struct ProfilingSession(());

/// Turns lock profiling on for the lifetime of the returned handle.
pub fn profiling_session() -> ProfilingSession {
    SESSIONS.fetch_add(1, Ordering::Relaxed);
    ProfilingSession(())
}

impl Drop for ProfilingSession {
    fn drop(&mut self) {
        SESSIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    static THREAD_WAIT_NS: Cell<u64> = const { Cell::new(0) };
}

/// Drains this thread's accumulated lock-wait nanoseconds since the
/// last call. Schedulers call this at bucket boundaries to attribute
/// waits to the code region that suffered them.
pub fn take_thread_wait_ns() -> u64 {
    THREAD_WAIT_NS.with(|c| c.replace(0))
}

/// A named, statically-allocated lock instrumentation site.
///
/// ```
/// use std::sync::Mutex;
/// use rowpoly_obs::contention::LockTimer;
///
/// static QUEUE_LOCK: LockTimer = LockTimer::new("pool.queue");
/// let m = Mutex::new(0u32);
/// *QUEUE_LOCK.lock(&m) += 1;
/// ```
pub struct LockTimer {
    name: &'static str,
    registered: AtomicBool,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_ns: AtomicU64,
    max_wait_ns: AtomicU64,
    buckets: [AtomicU64; WAIT_BUCKETS],
}

impl LockTimer {
    /// A timer for the lock site `name` (reported as `lock.wait.<name>`).
    pub const fn new(name: &'static str) -> LockTimer {
        LockTimer {
            name,
            registered: AtomicBool::new(false),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            max_wait_ns: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; WAIT_BUCKETS],
        }
    }

    /// The site name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Locks `m`, timing the wait when profiling is on. Poisoned
    /// mutexes are recovered (`into_inner`): instrumented locks guard
    /// collector-style data that stays structurally sound across a
    /// panicking holder.
    pub fn lock<'a, T>(&'static self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        if !profiling() {
            return unpoisoned(m.lock());
        }
        self.register();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        match m.try_lock() {
            Ok(guard) => return guard,
            Err(TryLockError::Poisoned(p)) => return p.into_inner(),
            Err(TryLockError::WouldBlock) => {}
        }
        let start = Instant::now();
        let guard = unpoisoned(m.lock());
        let ns = start.elapsed().as_nanos() as u64;
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_wait_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns).min(WAIT_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        THREAD_WAIT_NS.with(|c| c.set(c.get() + ns));
        guard
    }

    fn register(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        registry().lock().unwrap().push(self);
    }

    fn stats(&self) -> LockWaitStats {
        LockWaitStats {
            name: self.name,
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
            max_wait_ns: self.max_wait_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

fn registry() -> &'static Mutex<Vec<&'static LockTimer>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static LockTimer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn unpoisoned<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A point-in-time copy of one lock site's accumulators. Monotone
/// except `max_wait_ns`; subtract two snapshots with
/// [`LockWaitStats::delta_since`] for a per-run view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockWaitStats {
    /// Site name (reported as `lock.wait.<name>`).
    pub name: &'static str,
    /// Total acquisitions while profiling was on.
    pub acquisitions: u64,
    /// Acquisitions that had to wait.
    pub contended: u64,
    /// Total nanoseconds spent waiting.
    pub wait_ns: u64,
    /// Longest single wait (process-lifetime maximum, not delta-able).
    pub max_wait_ns: u64,
    /// Raw log₂ wait buckets (`WAIT_BUCKETS` entries).
    pub buckets: Vec<u64>,
}

impl LockWaitStats {
    /// This snapshot minus an earlier `baseline` of the same site.
    /// `max_wait_ns` keeps the later (process-lifetime) maximum.
    pub fn delta_since(&self, baseline: &LockWaitStats) -> LockWaitStats {
        LockWaitStats {
            name: self.name,
            acquisitions: self.acquisitions.saturating_sub(baseline.acquisitions),
            contended: self.contended.saturating_sub(baseline.contended),
            wait_ns: self.wait_ns.saturating_sub(baseline.wait_ns),
            max_wait_ns: self.max_wait_ns,
            buckets: self
                .buckets
                .iter()
                .zip(baseline.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
        }
    }

    /// Estimated `p`-th percentile of the contended waits, using the
    /// shared [`percentile_from_buckets`] estimator so lock-wait
    /// percentiles agree with every other histogram surface. The site
    /// tracks no exact minimum, so the lowest non-empty bucket's
    /// lower bound stands in; the maximum is `max_wait_ns` clamped to
    /// the highest non-empty bucket (exact whenever the longest wait
    /// happened inside this window, which for per-run deltas it did).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let count: u64 = self.buckets.iter().sum();
        let min = self.buckets.iter().position(|&n| n > 0).map(|i| {
            if i == 0 {
                0
            } else {
                1u64 << (i - 1)
            }
        })?;
        let hi = self.buckets.iter().rposition(|&n| n > 0).map(|i| {
            if i == 0 {
                0
            } else {
                (1u64 << i) - 1
            }
        })?;
        let max = self.max_wait_ns.clamp(min, hi);
        percentile_from_buckets(&self.buckets, count, min, max, p)
    }

    /// Non-empty wait buckets as `(lower_bound_ns, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }

    /// Renders the per-site stats (the `lock.wait.<name>` object).
    /// The percentile fields use [`LockWaitStats::percentile`] — the
    /// same estimator the text report prints, verified by a parity
    /// test in `crates/batch/src/profile.rs`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("acquisitions", Json::Int(self.acquisitions as i64)),
            ("contended", Json::Int(self.contended as i64)),
            ("wait_ns", Json::Int(self.wait_ns as i64)),
            ("max_wait_ns", Json::Int(self.max_wait_ns as i64)),
            (
                "p50_ns",
                self.percentile(50.0)
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "p90_ns",
                self.percentile(90.0)
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "p99_ns",
                self.percentile(99.0)
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "wait_hist",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, n)| Json::Arr(vec![Json::Int(lo as i64), Json::Int(n as i64)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Snapshots every registered lock site, sorted by name.
pub fn snapshot() -> Vec<LockWaitStats> {
    let mut out: Vec<LockWaitStats> = registry()
        .lock()
        .unwrap()
        .iter()
        .map(|site| site.stats())
        .collect();
    out.sort_by_key(|s| s.name);
    out
}

/// `now` minus `baseline`, matched by site name; sites that appeared
/// after the baseline are kept whole. Sites with zero acquisitions in
/// the delta are dropped.
pub fn delta(now: &[LockWaitStats], baseline: &[LockWaitStats]) -> Vec<LockWaitStats> {
    now.iter()
        .map(|s| match baseline.iter().find(|b| b.name == s.name) {
            Some(b) => s.delta_since(b),
            None => s.clone(),
        })
        .filter(|s| s.acquisitions > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    static TEST_LOCK: LockTimer = LockTimer::new("test.contended");
    static IDLE_LOCK: LockTimer = LockTimer::new("test.idle");

    #[test]
    fn disabled_profiling_records_nothing() {
        // No session: the timer must not even register.
        let m = Mutex::new(0);
        let _g = IDLE_LOCK.lock(&m);
        assert!(!snapshot().iter().any(|s| s.name == "test.idle"));
    }

    #[test]
    fn contended_waits_are_counted_and_attributed() {
        let _session = profiling_session();
        let m = Arc::new(Mutex::new(0u32));
        let before = snapshot();
        let holder = {
            let m = m.clone();
            std::thread::spawn(move || {
                let guard = TEST_LOCK.lock(&m);
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(guard);
            })
        };
        // Give the holder time to take the lock, then contend.
        std::thread::sleep(std::time::Duration::from_millis(5));
        take_thread_wait_ns(); // clear any residue
        let g = TEST_LOCK.lock(&m);
        drop(g);
        holder.join().unwrap();

        let after = snapshot();
        let d = delta(&after, &before);
        let site = d
            .iter()
            .find(|s| s.name == "test.contended")
            .expect("site registered");
        assert!(site.acquisitions >= 2);
        assert!(site.contended >= 1, "the second lock must have waited");
        assert!(site.wait_ns > 0);
        assert!(site.max_wait_ns >= site.wait_ns / site.acquisitions.max(1));
        assert!(!site.nonzero_buckets().is_empty());
        // The waiting thread (us) saw its wait in TLS.
        assert!(take_thread_wait_ns() > 0);
    }

    #[test]
    fn delta_subtracts_counters() {
        let a = LockWaitStats {
            name: "x",
            acquisitions: 10,
            contended: 4,
            wait_ns: 1000,
            max_wait_ns: 900,
            buckets: vec![0, 2, 2],
        };
        let b = LockWaitStats {
            name: "x",
            acquisitions: 4,
            contended: 1,
            wait_ns: 100,
            max_wait_ns: 90,
            buckets: vec![0, 1, 0],
        };
        let d = a.delta_since(&b);
        assert_eq!(d.acquisitions, 6);
        assert_eq!(d.contended, 3);
        assert_eq!(d.wait_ns, 900);
        assert_eq!(d.max_wait_ns, 900);
        assert_eq!(d.nonzero_buckets(), vec![(1, 1), (2, 2)]);
    }
}
