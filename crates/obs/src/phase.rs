//! Exclusive-time attribution of wall time to the four paper phases.
//!
//! Fig. 9 of the paper splits inference time into unification,
//! substitution application, stale-flag projection, and SAT checking.
//! Those phases nest in the implementation — `applyS` projects flags
//! out of β mid-flight, SAT checks run inside definition finishing — so
//! naive `Instant::now()` bracketing double-counts: a nanosecond spent
//! projecting inside `applyS` lands in both buckets and the bucket sum
//! exceeds wall time.
//!
//! [`PhaseClock`] fixes this with a stack: entering a phase first
//! charges the elapsed time to whatever phase was running, then pushes;
//! exiting charges the popped phase and resumes its parent. Every
//! nanosecond between the first `enter` and the last `exit` is charged
//! to exactly one bucket, so bucket sums can never exceed wall time.

use std::time::{Duration, Instant};

/// The four measured phases of Fig. 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Syntactic unification (`mgu`).
    Unify,
    /// Substitution application and flow transport (`applyS`).
    ApplyS,
    /// Stale-flag projection / β compaction.
    Project,
    /// Satisfiability checks of β.
    Sat,
}

/// All phases, in report order.
pub const PHASES: [Phase; 4] = [Phase::Unify, Phase::ApplyS, Phase::Project, Phase::Sat];

impl Phase {
    /// Stable lowercase name used in spans, metrics, and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Unify => "unify",
            Phase::ApplyS => "applys",
            Phase::Project => "project",
            Phase::Sat => "sat",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Unify => 0,
            Phase::ApplyS => 1,
            Phase::Project => 2,
            Phase::Sat => 3,
        }
    }
}

/// Accumulates exclusive (self) time — and, when memory accounting is
/// on, exclusive allocated bytes — per phase. Not thread-safe by
/// design: inference is single-threaded per engine, and keeping the
/// clock local avoids any synchronisation on the hot path.
///
/// Byte attribution rides the same stack discipline as time: every
/// transition samples [`crate::mem::thread_alloc_bytes`] (this
/// thread's monotone allocation counter) and banks the delta to the
/// phase that was running, so a byte allocated between the first
/// `enter` and the last `exit` lands in exactly one bucket. While
/// accounting is off the sample is the constant 0 and every byte
/// bucket stays empty.
#[derive(Clone, Debug)]
pub struct PhaseClock {
    epoch: Instant,
    stack: Vec<Phase>,
    /// Timestamp at which the current top of stack resumed accruing.
    last_ns: u64,
    totals_ns: [u64; 4],
    /// Thread allocation counter at the last transition.
    last_alloc: u64,
    totals_alloc: [u64; 4],
}

impl Default for PhaseClock {
    fn default() -> PhaseClock {
        PhaseClock::new()
    }
}

impl PhaseClock {
    pub fn new() -> PhaseClock {
        PhaseClock {
            epoch: Instant::now(),
            stack: Vec::with_capacity(4),
            last_ns: 0,
            totals_ns: [0; 4],
            last_alloc: 0,
            totals_alloc: [0; 4],
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Enters `phase`, suspending whichever phase was running.
    pub fn enter(&mut self, phase: Phase) {
        let now = self.now_ns();
        self.enter_at(phase, now);
    }

    /// Exits the innermost phase, resuming its parent.
    pub fn exit(&mut self) {
        let now = self.now_ns();
        self.exit_at(now);
    }

    /// Testable core of [`PhaseClock::enter`]: timestamps are injected
    /// (the byte sample is always live — the constant 0 unless memory
    /// accounting is on).
    pub fn enter_at(&mut self, phase: Phase, now_ns: u64) {
        let alloc_now = crate::mem::thread_alloc_bytes();
        if let Some(&running) = self.stack.last() {
            self.totals_ns[running.index()] += now_ns.saturating_sub(self.last_ns);
            self.totals_alloc[running.index()] += alloc_now.saturating_sub(self.last_alloc);
        }
        self.stack.push(phase);
        self.last_ns = now_ns;
        self.last_alloc = alloc_now;
    }

    /// Testable core of [`PhaseClock::exit`].
    pub fn exit_at(&mut self, now_ns: u64) {
        let alloc_now = crate::mem::thread_alloc_bytes();
        let finished = self.stack.pop().expect("PhaseClock::exit without enter");
        self.totals_ns[finished.index()] += now_ns.saturating_sub(self.last_ns);
        self.totals_alloc[finished.index()] += alloc_now.saturating_sub(self.last_alloc);
        self.last_ns = now_ns;
        self.last_alloc = alloc_now;
    }

    /// Exclusive time accrued to `phase` so far.
    pub fn total(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.totals_ns[phase.index()])
    }

    /// Exclusive bytes allocated while `phase` was the innermost open
    /// phase (0 unless memory accounting was on).
    pub fn alloc_bytes(&self, phase: Phase) -> u64 {
        self.totals_alloc[phase.index()]
    }

    /// Depth of currently open phases (0 when idle).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Sum of all buckets; by construction ≤ wall time of the enclosing
    /// region.
    pub fn total_all(&self) -> Duration {
        Duration::from_nanos(self.totals_ns.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_phase_is_not_double_counted() {
        // applyS runs 10..50, with a projection 20..40 nested inside:
        // applyS must be charged 20ns exclusive, project 20ns, and the
        // sum must equal the 40ns the region actually spanned.
        let mut clock = PhaseClock::new();
        clock.enter_at(Phase::ApplyS, 10);
        clock.enter_at(Phase::Project, 20);
        clock.exit_at(40);
        clock.exit_at(50);
        assert_eq!(clock.total(Phase::ApplyS), Duration::from_nanos(20));
        assert_eq!(clock.total(Phase::Project), Duration::from_nanos(20));
        assert_eq!(clock.total_all(), Duration::from_nanos(40));
    }

    #[test]
    fn sequential_phases_accrue_independently() {
        let mut clock = PhaseClock::new();
        clock.enter_at(Phase::Unify, 0);
        clock.exit_at(5);
        clock.enter_at(Phase::Sat, 100);
        clock.exit_at(107);
        // The idle 5..100 gap belongs to no phase.
        assert_eq!(clock.total(Phase::Unify), Duration::from_nanos(5));
        assert_eq!(clock.total(Phase::Sat), Duration::from_nanos(7));
        assert_eq!(clock.total_all(), Duration::from_nanos(12));
    }

    #[test]
    fn reentrant_same_phase_still_sums_to_span() {
        let mut clock = PhaseClock::new();
        clock.enter_at(Phase::Project, 0);
        clock.enter_at(Phase::Project, 10);
        clock.exit_at(30);
        clock.exit_at(35);
        assert_eq!(clock.total(Phase::Project), Duration::from_nanos(35));
    }

    #[test]
    fn wall_clock_bracketing_is_monotone() {
        let mut clock = PhaseClock::new();
        let wall = Instant::now();
        clock.enter(Phase::Unify);
        clock.enter(Phase::Project);
        std::thread::sleep(Duration::from_millis(2));
        clock.exit();
        clock.exit();
        let wall = wall.elapsed();
        assert!(clock.total_all() <= wall + Duration::from_micros(200));
        assert!(clock.total(Phase::Project) >= Duration::from_millis(1));
        assert_eq!(clock.depth(), 0);
    }
}
