//! Named counters, maxima, and log-scale histograms.
//!
//! Metric names are dotted paths (`flow.unify.calls`,
//! `sat.checks.twosat`, `beta.clauses.live`); see
//! `docs/OBSERVABILITY.md` for the full naming scheme. Registries are
//! plain values — the global [`crate::Collector`] owns one behind its
//! mutex, engines may keep private ones, and [`MetricsRegistry::merge`]
//! combines them (counters add, maxima max, histograms merge
//! bucket-wise), which is also how per-thread registries fold together.

use std::collections::BTreeMap;

use crate::json::Json;

/// Power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range, so clause
/// counts and nanosecond durations share one shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `1 + floor(log2(v))`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Estimated `p`-th percentile (`0.0 ..= 100.0`) over log₂ buckets
/// (bucket `0` = the value 0, bucket `i ≥ 1` = `[2^(i-1), 2^i)`) with
/// a known sample `count` and observed `min`/`max`. This is the one
/// estimator every surface shares — [`Histogram::percentile`], the
/// lock-wait report, and the allocation-size report — so text and
/// JSON renderings of the same data can never disagree: the ranked
/// sample's bucket is found by walking counts, the position inside
/// the bucket is interpolated linearly, and the estimate is clamped
/// to `[min, max]` (exact at the extremes, within one bucket — a
/// factor of two — in between).
pub fn percentile_from_buckets(
    buckets: &[u64],
    count: u64,
    min: u64,
    max: u64,
    p: f64,
) -> Option<u64> {
    if count == 0 {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
    // The extreme ranks are tracked exactly; only interior ranks
    // need the bucket walk.
    if rank >= count {
        return Some(max);
    }
    if rank == 1 {
        return Some(min);
    }
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if seen + n >= rank {
            let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
            let hi = lo.saturating_mul(2).saturating_sub(1);
            let idx = rank - seen - 1; // 0-based position inside the bucket
            let est = if n <= 1 || hi <= lo {
                lo
            } else {
                lo + ((hi - lo) as u128 * idx as u128 / (n - 1) as u128) as u64
            };
            return Some(est.clamp(min, max));
        }
        seen += n;
    }
    Some(max)
}

impl Histogram {
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (`0.0 ..= 100.0`) of the recorded
    /// samples, via the shared [`percentile_from_buckets`] estimator
    /// (linear interpolation inside the ranked sample's power-of-two
    /// bucket, clamped to the observed `[min, max]`).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        percentile_from_buckets(&self.buckets, self.count, self.min, self.max, p)
    }

    /// Number of samples in bucket `i` (see [`bucket_index`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Non-empty buckets as `(lower_bound_inclusive, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            (
                "min",
                self.min().map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "max",
                self.max().map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "p50",
                self.percentile(50.0)
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "p90",
                self.percentile(90.0)
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "p99",
                self.percentile(99.0)
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, n)| Json::Arr(vec![Json::Int(lo as i64), Json::Int(n as i64)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A registry of named counters, maxima, and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    maxima: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Raises the maximum `name` to at least `value`.
    pub fn raise_max(&mut self, name: &str, value: u64) {
        match self.maxima.get_mut(name) {
            Some(m) => *m = (*m).max(value),
            None => {
                self.maxima.insert(name.to_string(), value);
            }
        }
    }

    /// Records `value` into the histogram `name`.
    pub fn record(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn maximum(&self, name: &str) -> u64 {
        self.maxima.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn maxima(&self) -> impl Iterator<Item = (&str, u64)> {
        self.maxima.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.maxima.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, maxima take the max,
    /// histograms merge bucket-wise. Associative and commutative, so
    /// per-thread registries can fold in any order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &n) in &other.counters {
            self.add(name, n);
        }
        for (name, &v) in &other.maxima {
            self.raise_max(name, v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v as i64)))
                        .collect(),
                ),
            ),
            (
                "maxima",
                Json::Obj(
                    self.maxima
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v as i64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::default();
        assert_eq!(h.min(), None);
        for v in [0u64, 1, 3, 8, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1020);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.bucket(0), 1); // the single 0
        assert_eq!(h.bucket(4), 2); // both 8s in [8,16)
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 1), (8, 2), (512, 1)]
        );
    }

    #[test]
    fn percentiles_from_buckets() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), None);

        let mut h = Histogram::default();
        h.record(7);
        // A single sample is every percentile.
        assert_eq!(h.percentile(0.0), Some(7));
        assert_eq!(h.percentile(50.0), Some(7));
        assert_eq!(h.percentile(100.0), Some(7));

        // 99 samples of 1 and one of 1000: the tail only shows past p99.
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.percentile(50.0), Some(1));
        assert_eq!(h.percentile(90.0), Some(1));
        assert_eq!(h.percentile(99.0), Some(1));
        assert_eq!(h.percentile(100.0), Some(1000));

        // Estimates stay inside the observed range and are monotone.
        let mut h = Histogram::default();
        for v in [3u64, 5, 9, 12, 70, 300, 301, 302, 900, 4000] {
            h.record(v);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let e = h.percentile(p).unwrap();
            assert!((3..=4000).contains(&e), "p{p} = {e} out of range");
            assert!(e >= last, "p{p} = {e} not monotone (prev {last})");
            last = e;
        }
        assert_eq!(h.percentile(100.0), Some(4000));
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [1u64, 5, 9] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 5, 700] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn registry_merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.add("calls", 3);
        a.raise_max("peak", 10);
        a.record("sizes", 4);
        let mut b = MetricsRegistry::new();
        b.add("calls", 2);
        b.add("other", 1);
        b.raise_max("peak", 7);
        b.record("sizes", 100);
        a.merge(&b);
        assert_eq!(a.counter("calls"), 5);
        assert_eq!(a.counter("other"), 1);
        assert_eq!(a.maximum("peak"), 10);
        assert_eq!(a.histogram("sizes").unwrap().count(), 2);
    }
}
