//! Chrome trace-event export.
//!
//! Produces the JSON Object Format understood by `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of
//! duration events (`"ph": "B"`/`"E"`) with microsecond timestamps,
//! preceded by process/thread metadata events. Counters from the
//! metrics registry are appended as `"ph": "C"` counter samples so the
//! viewer can chart them alongside the spans.

use std::io::Write;
use std::path::Path;

use crate::collector::{EventKind, Snapshot};
use crate::json::Json;
use crate::timeline::{TimelineEventKind, TimelineSnapshot};

/// Renders a snapshot as a Chrome trace-event JSON document.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(snap.events.len() + 8);

    events.push(Json::obj(vec![
        ("name", Json::Str("process_name".to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::Int(1)),
        ("tid", Json::Int(0)),
        ("ts", Json::Int(0)),
        (
            "args",
            Json::obj(vec![("name", Json::Str("rowpoly".to_string()))]),
        ),
    ]));

    let last_ts = snap.events.last().map_or(0, |e| e.ts_ns);
    for event in &snap.events {
        events.push(Json::obj(vec![
            ("name", Json::Str(event.name.clone())),
            ("cat", Json::Str("rowpoly".to_string())),
            (
                "ph",
                Json::Str(
                    match event.kind {
                        EventKind::Begin => "B",
                        EventKind::End => "E",
                    }
                    .to_string(),
                ),
            ),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(event.tid as i64)),
            // Microseconds with nanosecond precision kept in the
            // fraction, as the trace-event spec allows.
            ("ts", Json::Float(event.ts_ns as f64 / 1000.0)),
        ]));
    }

    // Counter samples land after the last span edge so `ts` stays
    // monotone over the whole document.
    for (name, value) in snap.metrics.counters() {
        events.push(Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str("rowpoly".to_string())),
            ("ph", Json::Str("C".to_string())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(0)),
            ("ts", Json::Float(last_ts as f64 / 1000.0)),
            (
                "args",
                Json::Obj(vec![("value".to_string(), Json::Int(value as i64))]),
            ),
        ]));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
    .render()
}

/// Writes the Chrome trace for `snap` to `path`.
pub fn write_chrome_trace(snap: &Snapshot, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_json(snap).as_bytes())?;
    file.write_all(b"\n")
}

/// Renders a parallel-run timeline snapshot as a Chrome trace-event
/// document with one named `tid` track per worker.
///
/// Track layout is stable: worker `w` maps to tid `w + 1` (tid 0 is
/// reserved for the single-track exporter above), each track opens
/// with a `thread_name` metadata record naming it `worker w`, and
/// steal / cache-hit / wave-boundary markers appear as thread-scoped
/// instant events (`"ph": "i"`, `"s": "t"`). Events are emitted in
/// global timestamp order so `ts` is monotone over the document.
pub fn chrome_trace_timelines(snap: &TimelineSnapshot) -> String {
    let n_events: usize = snap.workers.iter().map(|w| w.events.len()).sum();
    let mut events: Vec<Json> = Vec::with_capacity(n_events + snap.workers.len() + 1);

    events.push(Json::obj(vec![
        ("name", Json::Str("process_name".to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::Int(1)),
        ("tid", Json::Int(0)),
        ("ts", Json::Int(0)),
        (
            "args",
            Json::obj(vec![("name", Json::Str("rowpoly".to_string()))]),
        ),
    ]));
    for w in &snap.workers {
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".to_string())),
            ("ph", Json::Str("M".to_string())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(w.worker() as i64 + 1)),
            ("ts", Json::Int(0)),
            (
                "args",
                Json::obj(vec![("name", Json::Str(format!("worker {}", w.worker())))]),
            ),
        ]));
    }

    // Merge all worker tracks into one globally ts-ordered stream.
    // Each track is already non-decreasing, so a stable sort by ts
    // preserves per-track B/E nesting order.
    let mut merged: Vec<(u64, i64, &crate::timeline::TimelineEvent)> = Vec::with_capacity(n_events);
    for w in &snap.workers {
        let tid = w.worker() as i64 + 1;
        for e in &w.events {
            merged.push((e.t_ns, tid, e));
        }
    }
    merged.sort_by_key(|(t_ns, tid, _)| (*t_ns, *tid));

    // Allocator samples taken at wave boundaries become counter tracks
    // ("ph": "C" on tid 0) so Perfetto charts live/peak bytes under the
    // worker spans. Interleave them by timestamp to keep `ts` monotone.
    let mut wave_mem = snap.wave_mem.clone();
    wave_mem.sort_by_key(|wm| wm.t_ns);
    let push_wave = |events: &mut Vec<Json>, wm: &crate::timeline::WaveMem| {
        for (name, val) in [
            ("mem.live_bytes", wm.live_bytes),
            ("mem.peak_bytes", wm.peak_bytes),
        ] {
            events.push(Json::obj(vec![
                ("name", Json::Str(name.to_string())),
                ("cat", Json::Str("rowpoly".to_string())),
                ("ph", Json::Str("C".to_string())),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(0)),
                ("ts", Json::Float(wm.t_ns as f64 / 1000.0)),
                (
                    "args",
                    Json::Obj(vec![("value".to_string(), Json::Int(val))]),
                ),
            ]));
        }
    };
    let mut wm_idx = 0;

    for (t_ns, tid, e) in merged {
        while wm_idx < wave_mem.len() && wave_mem[wm_idx].t_ns <= t_ns {
            push_wave(&mut events, &wave_mem[wm_idx]);
            wm_idx += 1;
        }
        let mut fields = vec![
            ("name", Json::Str(e.name.clone())),
            ("cat", Json::Str("rowpoly".to_string())),
            (
                "ph",
                Json::Str(
                    match e.kind {
                        TimelineEventKind::Begin => "B",
                        TimelineEventKind::End => "E",
                        TimelineEventKind::Instant => "i",
                    }
                    .to_string(),
                ),
            ),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(tid)),
            ("ts", Json::Float(t_ns as f64 / 1000.0)),
        ];
        if e.kind == TimelineEventKind::Instant {
            fields.push(("s", Json::Str("t".to_string())));
        }
        events.push(Json::obj(fields));
    }
    while wm_idx < wave_mem.len() {
        push_wave(&mut events, &wave_mem[wm_idx]);
        wm_idx += 1;
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
    .render()
}

/// Writes the per-worker Chrome trace for `snap` to `path`.
pub fn write_chrome_trace_timelines(snap: &TimelineSnapshot, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_timelines(snap).as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::json;

    #[test]
    fn exported_trace_parses_and_orders() {
        let c = Collector::new(true);
        c.begin_span("session");
        c.begin_span("unify");
        c.end_span();
        c.counter_add("flow.unify.calls", 3);
        c.end_span();
        let doc = json::parse(&chrome_trace_json(&c.snapshot())).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // metadata + 4 span edges + 1 counter
        assert_eq!(events.len(), 6);
        let ts: Vec<f64> = events
            .iter()
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts monotone: {ts:?}");
    }

    #[test]
    fn timeline_trace_has_one_named_track_per_worker() {
        let profiler = crate::timeline::Profiler::new();
        let mut a = profiler.worker(0);
        a.begin_with(|| "job 0".to_string());
        a.instant("cache-hit");
        a.end();
        let mut b = profiler.worker(1);
        b.note_steal();
        b.begin_with(|| "job 1".to_string());
        b.end();
        profiler.submit(b);
        profiler.submit(a);
        let snap = profiler.finish();

        let doc = json::parse(&chrome_trace_timelines(&snap)).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ph = |e: &Json| e.get("ph").unwrap().as_str().unwrap().to_string();
        let tid = |e: &Json| e.get("tid").unwrap().as_i64().unwrap();

        // process_name + two thread_name records, workers sorted.
        let meta: Vec<&Json> = events.iter().filter(|e| ph(e) == "M").collect();
        assert_eq!(meta.len(), 3);
        assert_eq!(tid(meta[1]), 1, "worker 0 is tid 1");
        assert_eq!(tid(meta[2]), 2, "worker 1 is tid 2");
        assert_eq!(
            meta[1].get("args").unwrap().get("name").unwrap().as_str(),
            Some("worker 0")
        );

        // Instants are thread-scoped; span edges balance per track.
        for e in events.iter().filter(|e| ph(e) == "i") {
            assert_eq!(e.get("s").unwrap().as_str(), Some("t"));
        }
        for t in [1, 2] {
            let depth: i64 = events
                .iter()
                .filter(|e| tid(e) == t)
                .map(|e| match ph(e).as_str() {
                    "B" => 1,
                    "E" => -1,
                    _ => 0,
                })
                .sum();
            assert_eq!(depth, 0, "unbalanced spans on tid {t}");
        }
    }
}
