//! Chrome trace-event export.
//!
//! Produces the JSON Object Format understood by `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of
//! duration events (`"ph": "B"`/`"E"`) with microsecond timestamps,
//! preceded by process/thread metadata events. Counters from the
//! metrics registry are appended as `"ph": "C"` counter samples so the
//! viewer can chart them alongside the spans.

use std::io::Write;
use std::path::Path;

use crate::collector::{EventKind, Snapshot};
use crate::json::Json;

/// Renders a snapshot as a Chrome trace-event JSON document.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(snap.events.len() + 8);

    events.push(Json::obj(vec![
        ("name", Json::Str("process_name".to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::Int(1)),
        ("tid", Json::Int(0)),
        ("ts", Json::Int(0)),
        (
            "args",
            Json::obj(vec![("name", Json::Str("rowpoly".to_string()))]),
        ),
    ]));

    let last_ts = snap.events.last().map_or(0, |e| e.ts_ns);
    for event in &snap.events {
        events.push(Json::obj(vec![
            ("name", Json::Str(event.name.clone())),
            ("cat", Json::Str("rowpoly".to_string())),
            (
                "ph",
                Json::Str(
                    match event.kind {
                        EventKind::Begin => "B",
                        EventKind::End => "E",
                    }
                    .to_string(),
                ),
            ),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(event.tid as i64)),
            // Microseconds with nanosecond precision kept in the
            // fraction, as the trace-event spec allows.
            ("ts", Json::Float(event.ts_ns as f64 / 1000.0)),
        ]));
    }

    // Counter samples land after the last span edge so `ts` stays
    // monotone over the whole document.
    for (name, value) in snap.metrics.counters() {
        events.push(Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str("rowpoly".to_string())),
            ("ph", Json::Str("C".to_string())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(0)),
            ("ts", Json::Float(last_ts as f64 / 1000.0)),
            (
                "args",
                Json::Obj(vec![("value".to_string(), Json::Int(value as i64))]),
            ),
        ]));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
    .render()
}

/// Writes the Chrome trace for `snap` to `path`.
pub fn write_chrome_trace(snap: &Snapshot, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace_json(snap).as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::json;

    #[test]
    fn exported_trace_parses_and_orders() {
        let c = Collector::new(true);
        c.begin_span("session");
        c.begin_span("unify");
        c.end_span();
        c.counter_add("flow.unify.calls", 3);
        c.end_span();
        let doc = json::parse(&chrome_trace_json(&c.snapshot())).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // metadata + 4 span edges + 1 counter
        assert_eq!(events.len(), 6);
        let ts: Vec<f64> = events
            .iter()
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts monotone: {ts:?}");
    }
}
