//! Memory accounting: a counting global allocator with attribution.
//!
//! Every other instrument in this crate measures *time*; this module
//! measures *bytes*, with the same design constraints: zero
//! dependencies, one relaxed atomic load when accounting is off, and
//! no locks anywhere on the hot path. Binaries opt in by installing
//! [`CountingAlloc`] as their `#[global_allocator]`:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rowpoly_obs::mem::CountingAlloc = rowpoly_obs::mem::CountingAlloc;
//! ```
//!
//! Counting is then toggled by reference-counted sessions
//! ([`accounting_session`]) exactly like lock profiling. While a
//! session is live, every allocation and free is recorded into the
//! calling thread's **slot** — a small leaked counter block,
//! registered in a global list the first time the thread allocates.
//! Slots outlive their thread, so an orchestrator can read a worker's
//! exact totals *after* joining it — including allocations made
//! during thread teardown. The slot is the *only* per-allocation
//! write target, and the writing thread is its only writer, so the
//! updates are plain load/store pairs on thread-private cache lines
//! rather than `lock`-prefixed read-modify-writes; that is what keeps
//! the fig9 accounting overhead inside its < 5% wall budget.
//!
//! The **process-wide ledger** ([`snapshot`]) is derived on demand by
//! summing every slot, so `sum over slot deltas == global delta`
//! holds by construction over any quiesced window — the pool stress
//! test asserts byte equality. The only global state maintained near
//! the hot path is the live-bytes gauge behind the peak watermark,
//! and even that is batched: a thread publishes its pending net-live
//! change only once it exceeds [`LIVE_FLUSH_BYTES`], bounding the
//! watermark's under-estimate to `threads * LIVE_FLUSH_BYTES` (exact
//! reads via [`live_bytes`] and [`snapshot`] fold back into the
//! watermark, so `peak >= live` at every observation point).
//!
//! Attribution to *owners* uses statically-registered [`MemSite`]s
//! (the [`crate::contention::LockTimer`] pattern): a scoped
//! [`MemSite::scope`] guard charges the bytes its thread allocates to
//! the innermost open site, exclusively — entering a nested site
//! first banks the delta to the outer one, the same stack discipline
//! [`crate::PhaseClock`] uses for time. [`PhaseClock`] itself reads
//! [`thread_alloc_bytes`] at every phase transition, so the four
//! paper phases get byte attribution for free.
//!
//! [`PhaseClock`]: crate::PhaseClock

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;
use crate::metrics::{bucket_index, percentile_from_buckets};

/// Log₂ allocation-size buckets: bucket 0 holds 0-byte requests,
/// bucket `i ≥ 1` holds sizes in `[2^(i-1), 2^i)`; 48 buckets cover
/// any allocation the address space can hold.
pub const SIZE_BUCKETS: usize = 48;

static SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// Whether any accounting session is active. One relaxed load — this
/// is the entire cost of an allocation while accounting is off.
#[inline]
pub fn tracking() -> bool {
    SESSIONS.load(Ordering::Relaxed) != 0
}

/// RAII handle keeping allocation accounting on; sessions nest.
#[must_use = "dropping the session turns memory accounting back off"]
pub struct AccountingSession(());

/// Turns allocation accounting on for the lifetime of the handle.
pub fn accounting_session() -> AccountingSession {
    SESSIONS.fetch_add(1, Ordering::Relaxed);
    AccountingSession(())
}

impl Drop for AccountingSession {
    fn drop(&mut self) {
        SESSIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Turns accounting on for the rest of the process (a leaked session).
pub fn enable() {
    SESSIONS.fetch_add(1, Ordering::Relaxed);
}

/// Enables accounting when `ROWPOLY_MEM` is set to anything but `0`.
pub fn init_from_env() {
    if std::env::var_os("ROWPOLY_MEM").is_some_and(|v| v != "0") {
        enable();
    }
}

// ---------------------------------------------------------------------------
// Process-wide ledger (the batched live gauge; everything else is
// derived from the slots).

/// Live bytes gauge; `i64` because frees of memory allocated before
/// accounting was enabled legitimately drive it negative. Fed by
/// batched flushes of per-thread pending nets, so it may lag the
/// exact `sum(alloc - freed)` by up to [`LIVE_FLUSH_BYTES`] per
/// thread; it exists only to keep [`PEAK`] current between exact
/// reads.
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

/// Batched live-gauge granularity: a thread publishes its pending
/// net-live change to the global gauge once it exceeds this many
/// bytes in either direction. Bounds the peak watermark's
/// under-estimate to `threads * LIVE_FLUSH_BYTES` while keeping the
/// per-allocation cost to thread-private stores.
pub const LIVE_FLUSH_BYTES: u64 = 32 * 1024;

// ---------------------------------------------------------------------------
// Per-thread slots.

/// One thread's monotone allocation counters. Heap-allocated and
/// leaked on the thread's first tracked allocation so the block
/// outlives the thread; readers use relaxed loads.
///
/// The owning thread is the only writer (except [`ORPHAN`], which is
/// shared by TLS-torn-down threads and takes the atomic-RMW path), so
/// counter updates are relaxed load/store pairs — plain moves on
/// every mainstream ISA — not `fetch_add`s.
pub struct ThreadSlot {
    alloc_bytes: AtomicU64,
    freed_bytes: AtomicU64,
    allocs: AtomicU64,
    deallocs: AtomicU64,
    size_hist: [AtomicU64; SIZE_BUCKETS],
    /// Net live-bytes change not yet flushed to [`LIVE`].
    pending_net: AtomicI64,
}

/// Bumps one slot counter: a single-writer load/store pair normally,
/// a real RMW for the shared [`ORPHAN`] slot.
#[inline]
fn bump(counter: &AtomicU64, v: u64, shared: bool) {
    if shared {
        counter.fetch_add(v, Ordering::Relaxed);
    } else {
        counter.store(counter.load(Ordering::Relaxed) + v, Ordering::Relaxed);
    }
}

impl ThreadSlot {
    const fn new() -> ThreadSlot {
        ThreadSlot {
            alloc_bytes: AtomicU64::new(0),
            freed_bytes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            size_hist: [const { AtomicU64::new(0) }; SIZE_BUCKETS],
            pending_net: AtomicI64::new(0),
        }
    }

    fn counts(&self) -> MemDelta {
        MemDelta {
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
            freed_bytes: self.freed_bytes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
        }
    }

    /// Accumulates `d` into the pending net and flushes it to the
    /// global gauge once it crosses the batching granularity (always,
    /// for the multi-writer orphan slot).
    #[inline]
    fn shift_live(&self, d: i64, shared: bool) {
        if shared {
            let live = LIVE.fetch_add(d, Ordering::Relaxed) + d;
            PEAK.fetch_max(live, Ordering::Relaxed);
            return;
        }
        let net = self.pending_net.load(Ordering::Relaxed) + d;
        if net.unsigned_abs() >= LIVE_FLUSH_BYTES {
            self.pending_net.store(0, Ordering::Relaxed);
            let live = LIVE.fetch_add(net, Ordering::Relaxed) + net;
            if live > PEAK.load(Ordering::Relaxed) {
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
        } else {
            self.pending_net.store(net, Ordering::Relaxed);
        }
    }

    /// Forces any batched pending net into the global gauge and the
    /// peak watermark. Called on attribution-scope exit: a scope whose
    /// allocations never crossed [`LIVE_FLUSH_BYTES`] would otherwise
    /// leave the peak blind to its bytes — if they are freed after the
    /// scope (and before the next exact read), the section's residency
    /// never appears in [`peak_bytes`].
    fn flush_pending(&self) {
        let net = self.pending_net.swap(0, Ordering::Relaxed);
        if net != 0 {
            let live = LIVE.fetch_add(net, Ordering::Relaxed) + net;
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
    }
}

/// Catch-all slot for allocations on threads whose TLS is already
/// torn down (late thread-exit frees land here, keeping the slot sum
/// equal to the global ledger).
static ORPHAN: ThreadSlot = ThreadSlot::new();

fn slot_registry() -> &'static Mutex<Vec<&'static ThreadSlot>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static ThreadSlot>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Pointer to this thread's slot; null until first tracked
    /// allocation, [`ORPHAN`] while the slot itself is being created
    /// (slot creation allocates — the sentinel breaks the recursion).
    static SLOT: Cell<*const ThreadSlot> = const { Cell::new(std::ptr::null()) };
}

/// This thread's slot, creating and registering it on first use.
#[inline]
fn thread_slot() -> &'static ThreadSlot {
    #[cold]
    fn create(s: &Cell<*const ThreadSlot>) -> *const ThreadSlot {
        // Park on the orphan slot while allocating the real one:
        // the Box and registry push below re-enter the allocator.
        s.set(&ORPHAN as *const ThreadSlot);
        let slot: &'static ThreadSlot = Box::leak(Box::new(ThreadSlot::new()));
        slot_registry().lock().unwrap().push(slot);
        s.set(slot as *const ThreadSlot);
        slot as *const ThreadSlot
    }
    let p = SLOT
        .try_with(|s| {
            let p = s.get();
            if !p.is_null() {
                return p;
            }
            create(s)
        })
        .unwrap_or(&ORPHAN as *const ThreadSlot);
    // SAFETY: the pointer is either a leaked 'static Box or &ORPHAN.
    unsafe { &*p }
}

#[inline]
fn note_alloc(size: usize) {
    if !tracking() {
        return;
    }
    let slot = thread_slot();
    let shared = std::ptr::eq(slot, &ORPHAN);
    let sz = size as u64;
    bump(&slot.alloc_bytes, sz, shared);
    bump(&slot.allocs, 1, shared);
    bump(
        &slot.size_hist[bucket_index(sz).min(SIZE_BUCKETS - 1)],
        1,
        shared,
    );
    slot.shift_live(size as i64, shared);
}

#[inline]
fn note_dealloc(size: usize) {
    if !tracking() {
        return;
    }
    let slot = thread_slot();
    let shared = std::ptr::eq(slot, &ORPHAN);
    let sz = size as u64;
    bump(&slot.freed_bytes, sz, shared);
    bump(&slot.deallocs, 1, shared);
    slot.shift_live(-(size as i64), shared);
}

/// A counting allocator wrapping [`System`]. Install it with
/// `#[global_allocator]`; recording is gated on [`tracking`], so an
/// installed-but-idle allocator costs one relaxed load per call.
pub struct CountingAlloc;

// SAFETY: defers every allocation to `System` and only adds counter
// updates; sizes and pointers are passed through unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        note_dealloc(layout.size());
    }

    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

/// Whether a [`CountingAlloc`] is actually installed in this binary:
/// probes with a real allocation under a temporary session. Memoised —
/// installation is a property of the binary, not of time.
pub fn installed() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| {
        let _session = accounting_session();
        let before = thread_mark().allocs;
        let b = std::hint::black_box(vec![0u8; 64]);
        drop(std::hint::black_box(b));
        thread_mark().allocs != before
    })
}

// ---------------------------------------------------------------------------
// Snapshots and deltas.

/// A point-in-time copy of the process-wide ledger. All fields except
/// the gauges are monotone while accounting stays on; subtract two
/// snapshots with [`MemSnapshot::delta_since`] for a per-run view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Total bytes requested from the allocator.
    pub alloc_bytes: u64,
    /// Total bytes returned to the allocator.
    pub freed_bytes: u64,
    /// Allocation calls (including the alloc half of reallocs).
    pub allocs: u64,
    /// Deallocation calls (including the free half of reallocs).
    pub deallocs: u64,
    /// Live-bytes gauge (may be negative if accounting was enabled
    /// after some of the freed memory was allocated).
    pub live_bytes: i64,
    /// High-water mark of the live gauge (see [`reset_peak`]).
    pub peak_bytes: i64,
    /// Log₂ allocation-size histogram (counts per bucket).
    pub size_hist: Vec<u64>,
}

impl MemSnapshot {
    /// This snapshot minus an earlier `baseline`; gauges keep the
    /// later (absolute) values.
    pub fn delta_since(&self, baseline: &MemSnapshot) -> MemDelta {
        MemDelta {
            alloc_bytes: self.alloc_bytes.saturating_sub(baseline.alloc_bytes),
            freed_bytes: self.freed_bytes.saturating_sub(baseline.freed_bytes),
            allocs: self.allocs.saturating_sub(baseline.allocs),
            deallocs: self.deallocs.saturating_sub(baseline.deallocs),
        }
    }

    /// Allocation-size histogram delta as `(lower_bound, count)` pairs.
    pub fn size_hist_delta(&self, baseline: &MemSnapshot) -> Vec<(u64, u64)> {
        self.size_hist
            .iter()
            .zip(baseline.size_hist.iter().chain(std::iter::repeat(&0)))
            .enumerate()
            .map(|(i, (now, then))| {
                (
                    if i == 0 { 0 } else { 1u64 << (i - 1) },
                    now.saturating_sub(*then),
                )
            })
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

/// Every slot ever registered, plus the orphan slot. Materialises the
/// caller's slot *before* taking the registry lock: allocating while
/// holding it would re-enter slot creation and self-deadlock.
fn all_slots() -> Vec<&'static ThreadSlot> {
    let _ = thread_slot();
    let guard = slot_registry().lock().unwrap();
    let mut v = Vec::with_capacity(guard.len() + 1);
    v.extend(guard.iter().copied());
    drop(guard);
    v.push(&ORPHAN);
    v
}

/// Reads the process-wide ledger: the sum of every thread's slot, so
/// the global view and the per-slot view agree by construction. The
/// exact live gauge is folded into the peak watermark, so
/// `peak_bytes >= live_bytes` at every snapshot.
pub fn snapshot() -> MemSnapshot {
    let mut snap = MemSnapshot {
        size_hist: vec![0; SIZE_BUCKETS],
        ..MemSnapshot::default()
    };
    for slot in all_slots() {
        snap.alloc_bytes += slot.alloc_bytes.load(Ordering::Relaxed);
        snap.freed_bytes += slot.freed_bytes.load(Ordering::Relaxed);
        snap.allocs += slot.allocs.load(Ordering::Relaxed);
        snap.deallocs += slot.deallocs.load(Ordering::Relaxed);
        for (total, bucket) in snap.size_hist.iter_mut().zip(slot.size_hist.iter()) {
            *total += bucket.load(Ordering::Relaxed);
        }
    }
    snap.live_bytes = snap.alloc_bytes as i64 - snap.freed_bytes as i64;
    PEAK.fetch_max(snap.live_bytes, Ordering::Relaxed);
    snap.peak_bytes = PEAK.load(Ordering::Relaxed);
    snap
}

/// Current live-bytes gauge, exact: sums `alloc - freed` over every
/// slot (no allocation — safe to call with the registry briefly
/// locked), and folds the reading into the peak watermark so a
/// subsequent [`peak_bytes`] is never below it.
pub fn live_bytes() -> i64 {
    let _ = thread_slot();
    let guard = slot_registry().lock().unwrap();
    let mut live = ORPHAN.alloc_bytes.load(Ordering::Relaxed) as i64
        - ORPHAN.freed_bytes.load(Ordering::Relaxed) as i64;
    for slot in guard.iter() {
        live += slot.alloc_bytes.load(Ordering::Relaxed) as i64
            - slot.freed_bytes.load(Ordering::Relaxed) as i64;
    }
    drop(guard);
    PEAK.fetch_max(live, Ordering::Relaxed);
    live
}

/// Current peak watermark. Maintained from batched live-gauge
/// flushes plus every exact [`live_bytes`]/[`snapshot`] reading, so
/// between observation points it may under-estimate the true peak by
/// up to `threads * LIVE_FLUSH_BYTES`.
pub fn peak_bytes() -> i64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restarts the peak watermark from the current live gauge, so the
/// next [`peak_bytes`] reading is a per-run high-water mark rather
/// than a process-lifetime one.
pub fn reset_peak() {
    let live = live_bytes();
    PEAK.store(live, Ordering::Relaxed);
}

/// Bytes/calls accrued over some window, on one thread, one site, or
/// the whole process. Merging workers' deltas is field-wise addition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemDelta {
    /// Bytes requested.
    pub alloc_bytes: u64,
    /// Bytes returned.
    pub freed_bytes: u64,
    /// Allocation calls.
    pub allocs: u64,
    /// Deallocation calls.
    pub deallocs: u64,
}

impl MemDelta {
    /// Bytes still held at the end of the window (negative when the
    /// window freed more than it allocated).
    pub fn net_bytes(&self) -> i64 {
        self.alloc_bytes as i64 - self.freed_bytes as i64
    }

    /// Field-wise accumulation (how per-worker deltas merge at join).
    pub fn merge(&mut self, other: &MemDelta) {
        self.alloc_bytes += other.alloc_bytes;
        self.freed_bytes += other.freed_bytes;
        self.allocs += other.allocs;
        self.deallocs += other.deallocs;
    }

    /// Renders the delta as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("alloc_bytes", Json::Int(self.alloc_bytes as i64)),
            ("freed_bytes", Json::Int(self.freed_bytes as i64)),
            ("allocs", Json::Int(self.allocs as i64)),
            ("deallocs", Json::Int(self.deallocs as i64)),
            ("net_bytes", Json::Int(self.net_bytes())),
        ])
    }
}

/// This thread's monotone counters (its slot, plus nothing else).
/// Subtract two marks for an exact per-thread window.
pub fn thread_mark() -> MemDelta {
    thread_slot().counts()
}

/// This thread's counters minus an earlier [`thread_mark`].
pub fn thread_delta_since(mark: &MemDelta) -> MemDelta {
    let now = thread_mark();
    MemDelta {
        alloc_bytes: now.alloc_bytes.saturating_sub(mark.alloc_bytes),
        freed_bytes: now.freed_bytes.saturating_sub(mark.freed_bytes),
        allocs: now.allocs.saturating_sub(mark.allocs),
        deallocs: now.deallocs.saturating_sub(mark.deallocs),
    }
}

/// Monotone bytes this thread has allocated so far (what
/// [`crate::PhaseClock`] samples at phase transitions). Reads the
/// slot without creating one — 0 until this thread's first tracked
/// allocation, and stable (not resetting) across session boundaries,
/// so deltas bracketing a session toggle stay correct.
#[inline]
pub fn thread_alloc_bytes() -> u64 {
    SLOT.try_with(|s| {
        let p = s.get();
        if p.is_null() {
            0
        } else {
            // SAFETY: non-null slot pointers are leaked 'static blocks.
            unsafe { (*p).alloc_bytes.load(Ordering::Relaxed) }
        }
    })
    .unwrap_or(0)
}

/// Counters of every per-thread slot ever registered (plus the orphan
/// slot), keyed by a stable opaque id. Slots outlive their threads,
/// so reading after a join observes the joined workers' full totals.
pub fn slots_snapshot() -> Vec<(usize, MemDelta)> {
    // Materialise the caller's slot *before* taking the registry
    // lock: allocating while holding it (the collect below) would
    // otherwise re-enter slot creation and self-deadlock.
    let _ = thread_slot();
    let slots: Vec<&'static ThreadSlot> = {
        let guard = slot_registry().lock().unwrap();
        let mut v = Vec::with_capacity(guard.len() + 1);
        v.extend(guard.iter().copied());
        v
    };
    let mut out: Vec<(usize, MemDelta)> = slots
        .iter()
        .map(|s| (*s as *const ThreadSlot as usize, s.counts()))
        .collect();
    out.push((&ORPHAN as *const ThreadSlot as usize, ORPHAN.counts()));
    out.sort_by_key(|(id, _)| *id);
    out
}

/// Sums `now - baseline` across all slots, matching slots by id (new
/// slots count in full). The result must equal the global
/// [`MemSnapshot::delta_since`] over the same quiesced window — the
/// two ledgers are written by the same allocator hooks.
pub fn slots_delta(now: &[(usize, MemDelta)], baseline: &[(usize, MemDelta)]) -> MemDelta {
    let mut merged = MemDelta::default();
    for (id, counts) in now {
        let base = baseline
            .iter()
            .find(|(bid, _)| bid == id)
            .map(|(_, c)| *c)
            .unwrap_or_default();
        merged.merge(&MemDelta {
            alloc_bytes: counts.alloc_bytes.saturating_sub(base.alloc_bytes),
            freed_bytes: counts.freed_bytes.saturating_sub(base.freed_bytes),
            allocs: counts.allocs.saturating_sub(base.allocs),
            deallocs: counts.deallocs.saturating_sub(base.deallocs),
        });
    }
    merged
}

// ---------------------------------------------------------------------------
// Attribution sites.

/// A named, statically-allocated owner that bytes can be attributed
/// to — the memory analogue of [`crate::contention::LockTimer`].
///
/// ```
/// use rowpoly_obs::mem::MemSite;
///
/// static CACHE_MEM: MemSite = MemSite::new("batch.cache");
/// let _guard = CACHE_MEM.scope();
/// // ... allocations on this thread are now charged to batch.cache
/// ```
pub struct MemSite {
    name: &'static str,
    registered: AtomicBool,
    alloc_bytes: AtomicU64,
    freed_bytes: AtomicU64,
    allocs: AtomicU64,
    deallocs: AtomicU64,
    enters: AtomicU64,
}

impl MemSite {
    /// A site named `name` (reported as `mem.site.<name>`).
    pub const fn new(name: &'static str) -> MemSite {
        MemSite {
            name,
            registered: AtomicBool::new(false),
            alloc_bytes: AtomicU64::new(0),
            freed_bytes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            enters: AtomicU64::new(0),
        }
    }

    /// The site name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Opens an attribution scope: until the guard drops, bytes this
    /// thread allocates are charged to this site — exclusively, so a
    /// nested scope suspends the outer one (the [`crate::PhaseClock`]
    /// stack discipline applied to bytes). A no-op while accounting
    /// is off.
    pub fn scope(&'static self) -> MemScope {
        if !tracking() {
            return MemScope { active: false };
        }
        self.register();
        self.enters.fetch_add(1, Ordering::Relaxed);
        SCOPES.with(|stack| {
            let mut stack = stack.borrow_mut();
            let now = thread_mark();
            if let Some(top) = stack.sites.last() {
                top.charge(&delta_between(&stack.last, &now));
            }
            stack.sites.push(self);
            // Re-read after the push: growing the scope vector itself
            // allocates, and those bytes belong to no site.
            stack.last = thread_mark();
        });
        MemScope { active: true }
    }

    fn register(&'static self) {
        // Plain load on the hot path; the RMW only runs until the
        // site is registered.
        if self.registered.load(Ordering::Relaxed) || self.registered.swap(true, Ordering::Relaxed)
        {
            return;
        }
        site_registry().lock().unwrap().push(self);
    }

    fn charge(&self, d: &MemDelta) {
        self.alloc_bytes.fetch_add(d.alloc_bytes, Ordering::Relaxed);
        self.freed_bytes.fetch_add(d.freed_bytes, Ordering::Relaxed);
        self.allocs.fetch_add(d.allocs, Ordering::Relaxed);
        self.deallocs.fetch_add(d.deallocs, Ordering::Relaxed);
    }

    fn stats(&self) -> MemSiteStats {
        MemSiteStats {
            name: self.name,
            enters: self.enters.load(Ordering::Relaxed),
            delta: MemDelta {
                alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
                freed_bytes: self.freed_bytes.load(Ordering::Relaxed),
                allocs: self.allocs.load(Ordering::Relaxed),
                deallocs: self.deallocs.load(Ordering::Relaxed),
            },
        }
    }

    /// Bytes currently attributed to this site (allocated minus freed
    /// inside its scopes — the site's live residency if it frees its
    /// own memory under its own scopes).
    pub fn net_bytes(&self) -> i64 {
        self.alloc_bytes.load(Ordering::Relaxed) as i64
            - self.freed_bytes.load(Ordering::Relaxed) as i64
    }
}

fn delta_between(earlier: &MemDelta, later: &MemDelta) -> MemDelta {
    MemDelta {
        alloc_bytes: later.alloc_bytes.saturating_sub(earlier.alloc_bytes),
        freed_bytes: later.freed_bytes.saturating_sub(earlier.freed_bytes),
        allocs: later.allocs.saturating_sub(earlier.allocs),
        deallocs: later.deallocs.saturating_sub(earlier.deallocs),
    }
}

fn site_registry() -> &'static Mutex<Vec<&'static MemSite>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static MemSite>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct ScopeStack {
    sites: Vec<&'static MemSite>,
    last: MemDelta,
}

thread_local! {
    static SCOPES: RefCell<ScopeStack> = RefCell::new(ScopeStack {
        sites: Vec::new(),
        last: MemDelta::default(),
    });
}

/// RAII guard returned by [`MemSite::scope`].
#[must_use = "dropping the guard closes the attribution scope"]
pub struct MemScope {
    active: bool,
}

impl Drop for MemScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let _ = SCOPES.try_with(|stack| {
            let mut stack = stack.borrow_mut();
            let now = thread_mark();
            if let Some(site) = stack.sites.pop() {
                site.charge(&delta_between(&stack.last, &now));
            }
            stack.last = thread_mark();
        });
        // Fold this thread's un-flushed live bytes into the gauge so
        // the peak watermark covers the scope's residency even when it
        // stayed under the batching threshold.
        let _ = SLOT.try_with(|s| {
            let p = s.get();
            if !p.is_null() {
                unsafe { &*p }.flush_pending();
            }
        });
    }
}

/// A point-in-time copy of one site's accumulators. Monotone;
/// subtract with [`MemSiteStats::delta_since`] for a per-run view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemSiteStats {
    /// Site name (reported as `mem.site.<name>`).
    pub name: &'static str,
    /// Scope entries.
    pub enters: u64,
    /// Accumulated bytes/calls.
    pub delta: MemDelta,
}

impl MemSiteStats {
    /// This snapshot minus an earlier `baseline` of the same site.
    pub fn delta_since(&self, baseline: &MemSiteStats) -> MemSiteStats {
        MemSiteStats {
            name: self.name,
            enters: self.enters.saturating_sub(baseline.enters),
            delta: delta_between(&baseline.delta, &self.delta),
        }
    }

    /// Renders the per-site stats (the `mem.site.<name>` object).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("enters".to_string(), Json::Int(self.enters as i64))];
        match self.delta.to_json() {
            Json::Obj(inner) => fields.extend(inner),
            _ => unreachable!("MemDelta::to_json returns an object"),
        }
        Json::Obj(fields)
    }
}

/// Snapshots every registered site, sorted by name.
pub fn site_snapshot() -> Vec<MemSiteStats> {
    let mut out: Vec<MemSiteStats> = site_registry()
        .lock()
        .unwrap()
        .iter()
        .map(|site| site.stats())
        .collect();
    out.sort_by_key(|s| s.name);
    out
}

/// `now` minus `baseline`, matched by site name; sites that appeared
/// after the baseline are kept whole, sites with no activity in the
/// delta are dropped.
pub fn site_delta(now: &[MemSiteStats], baseline: &[MemSiteStats]) -> Vec<MemSiteStats> {
    now.iter()
        .map(|s| match baseline.iter().find(|b| b.name == s.name) {
            Some(b) => s.delta_since(b),
            None => s.clone(),
        })
        .filter(|s| s.enters > 0 || s.delta != MemDelta::default())
        .collect()
}

// ---------------------------------------------------------------------------
// Host / process facts (Linux procfs; `None` elsewhere).

fn proc_kib_field(path: &str, key: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let kib: u64 = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

/// Peak resident-set size of this process (`VmHWM`), in bytes.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_kib_field("/proc/self/status", "VmHWM")
}

/// Current resident-set size of this process (`VmRSS`), in bytes.
pub fn current_rss_bytes() -> Option<u64> {
    proc_kib_field("/proc/self/status", "VmRSS")
}

/// Total physical memory of the host (`MemTotal`), in bytes.
pub fn host_mem_bytes() -> Option<u64> {
    proc_kib_field("/proc/meminfo", "MemTotal")
}

// ---------------------------------------------------------------------------
// Reporting.

/// Estimated percentile of the allocation-size histogram delta
/// between two snapshots, using the same bucket-walk estimator as
/// [`crate::Histogram::percentile`].
pub fn size_percentile(now: &MemSnapshot, baseline: &MemSnapshot, p: f64) -> Option<u64> {
    let buckets: Vec<u64> = now
        .size_hist
        .iter()
        .zip(baseline.size_hist.iter().chain(std::iter::repeat(&0)))
        .map(|(n, b)| n.saturating_sub(*b))
        .collect();
    let count: u64 = buckets.iter().sum();
    let min = buckets
        .iter()
        .position(|&n| n > 0)
        .map(|i| if i == 0 { 0 } else { 1u64 << (i - 1) })?;
    let max = buckets.iter().rposition(|&n| n > 0).map(|i| {
        if i == 0 {
            0
        } else {
            (1u64 << i).saturating_sub(1)
        }
    })?;
    percentile_from_buckets(&buckets, count, min, max, p)
}

/// The standard `mem` JSON block shared by every report surface:
/// global deltas, watermarks, RSS, per-def ratios, the size
/// histogram, and per-site attribution. `defs` scales the per-def
/// ratios; pass 0 to omit them.
///
/// `enabled` records whether the block carries real measurements —
/// the allocator is installed and the delta saw allocations — rather
/// than whether a session happens to be active at render time, so
/// surfaces that track via scoped sessions (the fig9 overhead legs)
/// report truthfully.
pub fn report_json(
    delta: &MemDelta,
    baseline: &MemSnapshot,
    now: &MemSnapshot,
    sites: &[MemSiteStats],
    defs: u64,
) -> Json {
    let mut fields = vec![
        ("enabled", Json::Bool(installed() && delta.allocs > 0)),
        ("alloc_bytes", Json::Int(delta.alloc_bytes as i64)),
        ("freed_bytes", Json::Int(delta.freed_bytes as i64)),
        ("allocs", Json::Int(delta.allocs as i64)),
        ("deallocs", Json::Int(delta.deallocs as i64)),
        ("net_bytes", Json::Int(delta.net_bytes())),
        ("live_bytes", Json::Int(now.live_bytes)),
        ("peak_bytes", Json::Int(now.peak_bytes)),
        (
            "peak_rss_bytes",
            peak_rss_bytes().map_or(Json::Null, |v| Json::Int(v as i64)),
        ),
    ];
    if defs > 0 {
        fields.push((
            "bytes_per_def",
            Json::Float(delta.alloc_bytes as f64 / defs as f64),
        ));
        fields.push((
            "allocs_per_def",
            Json::Float(delta.allocs as f64 / defs as f64),
        ));
    }
    for (key, p) in [("size_p50", 50.0), ("size_p90", 90.0), ("size_p99", 99.0)] {
        fields.push((
            key,
            size_percentile(now, baseline, p).map_or(Json::Null, |v| Json::Int(v as i64)),
        ));
    }
    fields.push((
        "size_hist",
        Json::Arr(
            now.size_hist_delta(baseline)
                .into_iter()
                .map(|(lo, n)| Json::Arr(vec![Json::Int(lo as i64), Json::Int(n as i64)]))
                .collect(),
        ),
    ));
    fields.push((
        "sites",
        Json::Obj(
            sites
                .iter()
                .map(|s| (s.name.to_string(), s.to_json()))
                .collect(),
        ),
    ));
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: unit tests run without a `#[global_allocator]` install,
    // so the allocator hooks never fire here; these tests cover the
    // pure bookkeeping. The end-to-end counting paths are exercised
    // by `crates/obs/tests/mem.rs` and
    // `crates/batch/tests/mem_stress.rs`, which install the
    // allocator in their own test binaries.

    #[test]
    fn deltas_merge_and_subtract() {
        let a = MemDelta {
            alloc_bytes: 100,
            freed_bytes: 40,
            allocs: 3,
            deallocs: 2,
        };
        let mut b = MemDelta {
            alloc_bytes: 10,
            freed_bytes: 70,
            allocs: 1,
            deallocs: 4,
        };
        b.merge(&a);
        assert_eq!(b.alloc_bytes, 110);
        assert_eq!(b.net_bytes(), 0);
        let d = delta_between(&a, &b);
        assert_eq!(d.alloc_bytes, 10);
        assert_eq!(d.deallocs, 4);
    }

    #[test]
    fn snapshot_delta_and_hist() {
        let base = MemSnapshot {
            alloc_bytes: 100,
            freed_bytes: 50,
            allocs: 10,
            deallocs: 5,
            live_bytes: 50,
            peak_bytes: 80,
            size_hist: vec![0, 2, 1],
        };
        let now = MemSnapshot {
            alloc_bytes: 300,
            freed_bytes: 60,
            allocs: 14,
            deallocs: 6,
            live_bytes: 240,
            peak_bytes: 250,
            size_hist: vec![1, 2, 3, 4],
        };
        let d = now.delta_since(&base);
        assert_eq!(d.alloc_bytes, 200);
        assert_eq!(d.allocs, 4);
        assert_eq!(d.net_bytes(), 190);
        assert_eq!(now.size_hist_delta(&base), vec![(0, 1), (2, 2), (4, 4)]);
    }

    #[test]
    fn slots_delta_counts_new_slots_in_full() {
        let before = vec![(
            1usize,
            MemDelta {
                alloc_bytes: 10,
                freed_bytes: 0,
                allocs: 1,
                deallocs: 0,
            },
        )];
        let after = vec![
            (
                1usize,
                MemDelta {
                    alloc_bytes: 30,
                    freed_bytes: 5,
                    allocs: 3,
                    deallocs: 1,
                },
            ),
            (
                2usize,
                MemDelta {
                    alloc_bytes: 100,
                    freed_bytes: 0,
                    allocs: 7,
                    deallocs: 0,
                },
            ),
        ];
        let d = slots_delta(&after, &before);
        assert_eq!(d.alloc_bytes, 120);
        assert_eq!(d.allocs, 9);
        assert_eq!(d.deallocs, 1);
    }

    #[test]
    fn site_stats_json_shape() {
        let s = MemSiteStats {
            name: "test.site",
            enters: 2,
            delta: MemDelta {
                alloc_bytes: 64,
                freed_bytes: 16,
                allocs: 2,
                deallocs: 1,
            },
        };
        let j = s.to_json();
        assert_eq!(j.get("enters").unwrap().as_i64(), Some(2));
        assert_eq!(j.get("alloc_bytes").unwrap().as_i64(), Some(64));
        assert_eq!(j.get("net_bytes").unwrap().as_i64(), Some(48));
    }

    #[test]
    fn inactive_scopes_are_inert() {
        // Accounting is off in this test (no session), so scopes are
        // no-ops and the stack stays balanced.
        static SITE: MemSite = MemSite::new("test.inert");
        {
            let _g = SITE.scope();
            let _h = SITE.scope();
        }
        assert_eq!(SITE.net_bytes(), 0);
        assert_eq!(SITE.stats().enters, 0);
    }

    #[test]
    fn host_facts_are_plausible_on_linux() {
        if let Some(total) = host_mem_bytes() {
            assert!(total > 1 << 20, "host has at least a megabyte");
        }
        if let (Some(cur), Some(peak)) = (current_rss_bytes(), peak_rss_bytes()) {
            assert!(peak >= cur / 2, "peak RSS roughly bounds current");
        }
    }
}
