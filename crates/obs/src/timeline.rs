//! Per-worker timeline capture for parallel runs.
//!
//! The global [`crate::Collector`] funnels every span through one
//! mutex, which is fine for tracing a serial session and exactly wrong
//! for profiling a thread pool — the act of recording would serialize
//! the workers being measured. This module inverts the design:
//!
//! * a [`Profiler`] anchors one profiled run (shared epoch, lock-wait
//!   baseline, a place for finished timelines);
//! * each worker owns a private [`WorkerTimeline`] — an unsynchronised
//!   event buffer plus busy/idle/steal-search/lock-wait accumulators —
//!   and records into it with no locking whatsoever;
//! * at join, workers [`Profiler::submit`] their timelines; the
//!   orchestrator calls [`Profiler::finish`] to get a
//!   [`TimelineSnapshot`] with every track, the per-run lock-wait
//!   deltas (see [`crate::contention`]), and the run's wall time.
//!
//! Events carry nanosecond offsets from the profiler's epoch, so
//! tracks from different workers line up on one clock. The exporter
//! ([`crate::chrome::chrome_trace_timelines`]) gives each worker a
//! stable Chrome-trace `tid` (worker `w` → tid `w + 1`) with a named
//! thread track.
//!
//! Time attribution is *exclusive* by construction: the scheduler
//! brackets each loop region with [`WorkerTimeline::mark`] and one of
//! the `charge_*` methods, which subtract the lock-wait nanoseconds
//! accrued inside the region (drained from the contention TLS tally)
//! so `busy + idle + steal_search + lock_wait + other = wall` holds
//! per worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::contention::{self, LockWaitStats, ProfilingSession};
use crate::mem::MemDelta;

/// What one timeline event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimelineEventKind {
    /// Opens a span on this worker's track.
    Begin,
    /// Closes the innermost open span.
    End,
    /// A point-in-time marker (steal, cache hit, wave boundary).
    Instant,
}

/// One event on a worker's track. `t_ns` is nanoseconds since the
/// profiler's epoch; events are non-decreasing in buffer order.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Span or marker name (`End` events carry the name they close).
    pub name: String,
    /// Nanoseconds since the profiler epoch.
    pub t_ns: u64,
    /// Event kind.
    pub kind: TimelineEventKind,
}

/// One scheduled job as measured on the worker that ran it.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Scheduler job id (index into the run's dependency graph).
    pub job: usize,
    /// Display label (e.g. `file.rp:def+def`).
    pub label: String,
    /// Start offset from the profiler epoch.
    pub start_ns: u64,
    /// End offset from the profiler epoch.
    pub end_ns: u64,
    /// Whether the job was replayed from a cache rather than computed.
    pub cached: bool,
    /// Named phase durations measured inside the job (nanoseconds).
    pub phases: Vec<(&'static str, u64)>,
}

impl JobRecord {
    /// Job duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A worker's private recording surface. All methods are no-ops on a
/// [`WorkerTimeline::disabled`] instance, so schedulers can thread one
/// through unconditionally.
#[derive(Clone, Debug)]
pub struct WorkerTimeline {
    enabled: bool,
    worker: u32,
    epoch: Instant,
    /// Recorded events, non-decreasing in `t_ns`.
    pub events: Vec<TimelineEvent>,
    /// Names of currently-open spans (innermost last).
    open: Vec<String>,
    /// Jobs completed on this worker.
    pub jobs: Vec<JobRecord>,
    /// Nanoseconds spent executing jobs (lock waits subtracted).
    pub busy_ns: u64,
    /// Nanoseconds asleep waiting for work.
    pub idle_ns: u64,
    /// Nanoseconds scanning own and peer queues (lock waits subtracted).
    pub search_ns: u64,
    /// Nanoseconds blocked on instrumented locks.
    pub lock_wait_ns: u64,
    /// Jobs taken from another worker's queue.
    pub steals: u64,
    /// This worker thread's allocator delta over the run, captured by
    /// the scheduler just before [`Profiler::submit`] (all zeros when
    /// memory accounting is off).
    pub mem: MemDelta,
}

impl WorkerTimeline {
    /// An inert timeline: every call is a cheap no-op.
    pub fn disabled() -> WorkerTimeline {
        WorkerTimeline::new(0, Instant::now(), false)
    }

    fn new(worker: u32, epoch: Instant, enabled: bool) -> WorkerTimeline {
        WorkerTimeline {
            enabled,
            worker,
            epoch,
            events: Vec::new(),
            open: Vec::new(),
            jobs: Vec::new(),
            busy_ns: 0,
            idle_ns: 0,
            search_ns: 0,
            lock_wait_ns: 0,
            steals: 0,
            mem: MemDelta::default(),
        }
    }

    /// Whether this timeline records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// This worker's id (stable across the run).
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Nanoseconds since the profiler epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span named by `f` (only rendered when enabled).
    pub fn begin_with(&mut self, f: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        let name = f();
        let t_ns = self.now_ns();
        self.open.push(name.clone());
        self.events.push(TimelineEvent {
            name,
            t_ns,
            kind: TimelineEventKind::Begin,
        });
    }

    /// Closes the innermost open span. Stray calls are ignored.
    pub fn end(&mut self) {
        if !self.enabled {
            return;
        }
        let Some(name) = self.open.pop() else {
            return;
        };
        let t_ns = self.now_ns();
        self.events.push(TimelineEvent {
            name,
            t_ns,
            kind: TimelineEventKind::End,
        });
    }

    /// Records an instant marker.
    pub fn instant(&mut self, name: &str) {
        self.instant_with(|| name.to_string());
    }

    /// Records an instant marker named by `f` (only rendered when
    /// enabled).
    pub fn instant_with(&mut self, f: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        let t_ns = self.now_ns();
        self.events.push(TimelineEvent {
            name: f(),
            t_ns,
            kind: TimelineEventKind::Instant,
        });
    }

    /// Records a completed job.
    pub fn push_job(&mut self, record: JobRecord) {
        if !self.enabled {
            return;
        }
        self.jobs.push(record);
    }

    /// Notes a successful steal (instant marker + counter).
    pub fn note_steal(&mut self) {
        if !self.enabled {
            return;
        }
        self.steals += 1;
        self.instant("steal");
    }

    /// Starts timing a region; pass the result to one `charge_*`
    /// method. `None` when disabled, so the charge is free too.
    #[inline]
    pub fn mark(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    fn charge(&mut self, mark: Option<Instant>) -> (u64, u64) {
        let Some(t0) = mark else { return (0, 0) };
        let total = t0.elapsed().as_nanos() as u64;
        let wait = contention::take_thread_wait_ns();
        self.lock_wait_ns += wait.min(total);
        (total.saturating_sub(wait), wait)
    }

    /// Charges the region since `mark` to busy time (lock waits inside
    /// it go to `lock_wait_ns` instead).
    pub fn charge_busy(&mut self, mark: Option<Instant>) {
        let (ns, _) = self.charge(mark);
        self.busy_ns += ns;
    }

    /// Charges the region since `mark` to idle (sleeping) time.
    pub fn charge_idle(&mut self, mark: Option<Instant>) {
        let (ns, _) = self.charge(mark);
        self.idle_ns += ns;
    }

    /// Charges the region since `mark` to steal-search time.
    pub fn charge_search(&mut self, mark: Option<Instant>) {
        let (ns, _) = self.charge(mark);
        self.search_ns += ns;
    }
}

/// Utilization summary for one worker, derived from its accumulators
/// against the run's wall clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerUtil {
    /// Worker id.
    pub worker: u32,
    /// Jobs the worker completed.
    pub jobs: usize,
    /// Jobs it stole from peers.
    pub steals: u64,
    /// Nanoseconds executing jobs.
    pub busy_ns: u64,
    /// Nanoseconds asleep.
    pub idle_ns: u64,
    /// Nanoseconds scanning queues.
    pub search_ns: u64,
    /// Nanoseconds blocked on instrumented locks.
    pub lock_wait_ns: u64,
    /// Run wall nanoseconds (shared denominator).
    pub wall_ns: u64,
}

impl WorkerUtil {
    fn pct(&self, ns: u64) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            100.0 * ns as f64 / self.wall_ns as f64
        }
    }

    /// Percent of wall spent executing jobs.
    pub fn busy_pct(&self) -> f64 {
        self.pct(self.busy_ns)
    }

    /// Percent of wall spent asleep.
    pub fn idle_pct(&self) -> f64 {
        self.pct(self.idle_ns)
    }

    /// Percent of wall spent scanning for work.
    pub fn search_pct(&self) -> f64 {
        self.pct(self.search_ns)
    }

    /// Percent of wall spent blocked on instrumented locks.
    pub fn lock_wait_pct(&self) -> f64 {
        self.pct(self.lock_wait_ns)
    }

    /// Percent of wall not covered by the measured buckets (startup,
    /// result publishing, bookkeeping).
    pub fn other_pct(&self) -> f64 {
        (100.0 - self.busy_pct() - self.idle_pct() - self.search_pct() - self.lock_wait_pct())
            .max(0.0)
    }
}

/// A per-wave memory watermark sample, taken by the first worker to
/// start a job of each wave (no barrier — see
/// [`Profiler::first_of_wave`]). Values are the process-wide counting
/// allocator's `live`/`peak` at that instant, so the sequence shows
/// how the working set moves as the schedule advances wave by wave.
#[derive(Clone, Copy, Debug)]
pub struct WaveMem {
    /// Wave index in the scheduled dependency graph.
    pub wave: usize,
    /// Nanoseconds since the profiler epoch.
    pub t_ns: u64,
    /// Live (allocated − freed) bytes at the sample.
    pub live_bytes: i64,
    /// Peak live bytes so far (monotone across samples).
    pub peak_bytes: i64,
}

/// Everything a profiled run captured: one track per worker, the
/// per-run lock-wait deltas, and the wall time.
#[derive(Clone, Debug)]
pub struct TimelineSnapshot {
    /// Wall nanoseconds between [`Profiler::new`] and
    /// [`Profiler::finish`].
    pub wall_ns: u64,
    /// Per-worker timelines, sorted by worker id.
    pub workers: Vec<WorkerTimeline>,
    /// Lock-wait statistics accrued during the run (`lock.wait.*`).
    pub locks: Vec<LockWaitStats>,
    /// Per-wave memory watermarks, sorted by wave (empty when memory
    /// accounting was off for the run).
    pub wave_mem: Vec<WaveMem>,
}

impl TimelineSnapshot {
    /// Per-worker utilization against the run's wall clock.
    pub fn utilization(&self) -> Vec<WorkerUtil> {
        self.workers
            .iter()
            .map(|w| WorkerUtil {
                worker: w.worker,
                jobs: w.jobs.len(),
                steals: w.steals,
                busy_ns: w.busy_ns,
                idle_ns: w.idle_ns,
                search_ns: w.search_ns,
                lock_wait_ns: w.lock_wait_ns,
                wall_ns: self.wall_ns,
            })
            .collect()
    }

    /// All job records across workers, sorted by scheduler job id.
    pub fn jobs(&self) -> Vec<&JobRecord> {
        let mut jobs: Vec<&JobRecord> = self.workers.iter().flat_map(|w| w.jobs.iter()).collect();
        jobs.sort_by_key(|j| j.job);
        jobs
    }

    /// The workers' allocator deltas merged (how the run's totals are
    /// reconstructed from per-thread slots at join).
    pub fn mem_merged(&self) -> MemDelta {
        let mut total = MemDelta::default();
        for w in &self.workers {
            total.merge(&w.mem);
        }
        total
    }
}

/// Anchors one profiled run. Creating a profiler turns lock profiling
/// on (reference-counted); dropping it turns it back off.
pub struct Profiler {
    epoch: Instant,
    timelines: Mutex<Vec<WorkerTimeline>>,
    lock_baseline: Vec<LockWaitStats>,
    /// Highest wave index any worker has started (see
    /// [`Profiler::first_of_wave`]).
    wave_seen: AtomicU64,
    /// Per-wave memory samples (see [`Profiler::note_wave_mem`]).
    wave_mem: Mutex<Vec<WaveMem>>,
    _session: ProfilingSession,
}

impl Profiler {
    /// Starts a profiled run: fixes the epoch, snapshots the lock
    /// accumulators, and enables lock profiling.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Profiler {
        let session = contention::profiling_session();
        Profiler {
            epoch: Instant::now(),
            timelines: Mutex::new(Vec::new()),
            lock_baseline: contention::snapshot(),
            wave_seen: AtomicU64::new(0),
            wave_mem: Mutex::new(Vec::new()),
            _session: session,
        }
    }

    /// A live timeline for worker `worker`, sharing this run's epoch.
    pub fn worker(&self, worker: u32) -> WorkerTimeline {
        WorkerTimeline::new(worker, self.epoch, true)
    }

    /// Hands a finished worker timeline back to the profiler.
    pub fn submit(&self, timeline: WorkerTimeline) {
        self.timelines.lock().unwrap().push(timeline);
    }

    /// True exactly once per wave index: the calling worker is the
    /// first to start a job of wave `wave` (or any later wave). Used
    /// to place wave-boundary instant markers without a barrier.
    pub fn first_of_wave(&self, wave: usize) -> bool {
        let w = wave as u64 + 1;
        self.wave_seen.fetch_max(w, Ordering::Relaxed) < w
    }

    /// Records a per-wave memory watermark sample. Schedulers call
    /// this (with the allocator's current `live`/`peak`) from the
    /// worker that won [`Profiler::first_of_wave`], so each wave gets
    /// exactly one sample.
    pub fn note_wave_mem(&self, sample: WaveMem) {
        self.wave_mem.lock().unwrap().push(sample);
    }

    /// Ends the run: collects the submitted timelines (sorted by
    /// worker) and the per-run lock-wait deltas. The profiler can be
    /// dropped afterwards; lock profiling stays on until it is.
    pub fn finish(&self) -> TimelineSnapshot {
        let mut workers: Vec<WorkerTimeline> = std::mem::take(&mut *self.timelines.lock().unwrap());
        workers.sort_by_key(|t| t.worker);
        let mut wave_mem = std::mem::take(&mut *self.wave_mem.lock().unwrap());
        wave_mem.sort_by_key(|s| s.wave);
        TimelineSnapshot {
            wall_ns: self.epoch.elapsed().as_nanos() as u64,
            workers,
            locks: contention::delta(&contention::snapshot(), &self.lock_baseline),
            wave_mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timeline_is_inert() {
        let mut tl = WorkerTimeline::disabled();
        tl.begin_with(|| panic!("name must not be rendered when disabled"));
        tl.end();
        tl.instant("x");
        tl.note_steal();
        let mark = tl.mark();
        assert!(mark.is_none());
        tl.charge_busy(mark);
        assert!(tl.events.is_empty());
        assert_eq!(tl.busy_ns, 0);
        assert_eq!(tl.steals, 0);
        assert_eq!(tl.now_ns(), 0);
    }

    #[test]
    fn spans_balance_and_time_accumulates() {
        let profiler = Profiler::new();
        let mut tl = profiler.worker(3);
        tl.begin_with(|| "job a".to_string());
        tl.instant("cache-hit");
        tl.end();
        let mark = tl.mark();
        std::thread::sleep(std::time::Duration::from_millis(2));
        tl.charge_busy(mark);
        assert!(tl.busy_ns >= 1_000_000, "busy time recorded");
        assert_eq!(tl.events.len(), 3);
        assert_eq!(tl.events[2].name, "job a", "End carries the span name");
        assert!(tl.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        profiler.submit(tl);
        let snap = profiler.finish();
        assert_eq!(snap.workers.len(), 1);
        assert_eq!(snap.workers[0].worker(), 3);
        assert!(snap.wall_ns >= snap.workers[0].busy_ns);
    }

    #[test]
    fn utilization_buckets_fit_in_wall() {
        let profiler = Profiler::new();
        let mut tl = profiler.worker(0);
        let m = tl.mark();
        std::thread::sleep(std::time::Duration::from_millis(1));
        tl.charge_idle(m);
        let m = tl.mark();
        tl.charge_search(m);
        profiler.submit(tl);
        let snap = profiler.finish();
        let util = snap.utilization();
        assert_eq!(util.len(), 1);
        let u = &util[0];
        let sum = u.busy_pct() + u.idle_pct() + u.search_pct() + u.lock_wait_pct();
        assert!(sum <= 100.5, "buckets exceed wall: {sum}");
        assert!(u.idle_pct() > 0.0);
        assert!(u.other_pct() >= 0.0);
    }

    #[test]
    fn wave_markers_fire_once_per_wave() {
        let profiler = Profiler::new();
        assert!(profiler.first_of_wave(0));
        assert!(!profiler.first_of_wave(0));
        assert!(profiler.first_of_wave(2), "skipping ahead still fires");
        assert!(!profiler.first_of_wave(1), "earlier waves never re-fire");
    }

    #[test]
    fn job_records_sort_by_scheduler_id() {
        let profiler = Profiler::new();
        let mut a = profiler.worker(1);
        a.push_job(JobRecord {
            job: 2,
            label: "b".into(),
            start_ns: 10,
            end_ns: 30,
            cached: false,
            phases: vec![("unify", 5)],
        });
        let mut b = profiler.worker(0);
        b.push_job(JobRecord {
            job: 0,
            label: "a".into(),
            start_ns: 0,
            end_ns: 7,
            cached: true,
            phases: Vec::new(),
        });
        profiler.submit(a);
        profiler.submit(b);
        let snap = profiler.finish();
        let jobs = snap.jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].job, 0);
        assert_eq!(jobs[1].dur_ns(), 20);
    }
}
