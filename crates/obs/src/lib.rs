//! Zero-dependency observability layer for the rowpoly workspace.
//!
//! The paper's empirical story (Section 6, Fig. 9) is about *where time
//! goes* inside row-polymorphic inference: unification, substitution
//! application, stale-flag projection, and satisfiability checks. This
//! crate provides the plumbing to answer that question at any
//! granularity without pulling in a single external crate:
//!
//! - [`span`] / [`span_lazy`]: hierarchical RAII spans with monotonic
//!   timestamps, collected thread-safely into the global [`Collector`].
//! - [`metrics::MetricsRegistry`]: named counters, maxima, and log-scale
//!   histograms (unify calls, SAT checks per class, β clause growth,
//!   projection resolutions, env-meet version-tag hits/misses, ...).
//! - [`chrome`]: Chrome trace-event export (`chrome://tracing`,
//!   Perfetto) written to the path named by `ROWPOLY_TRACE` or a CLI
//!   flag.
//! - [`report`]: human text and JSON reports over a [`Snapshot`].
//! - [`phase::PhaseClock`]: exclusive (self-time) attribution of wall
//!   time to the four paper phases, so nested phases are never
//!   double-counted.
//! - [`rng::SplitMix64`]: a seeded PRNG so generators and property
//!   tests need no `rand` dependency.
//! - [`json`]: a minimal JSON value type with an encoder and a strict
//!   parser, shared by the exporters and their golden tests.
//! - [`timeline`] / [`contention`]: the concurrency profiler — private
//!   per-worker event buffers (no shared collector on the hot path),
//!   instrumented-lock wait accounting, and exclusive
//!   busy/idle/steal-search/lock-wait attribution for parallel runs.
//! - [`mem`]: memory accounting — a counting `#[global_allocator]`
//!   (wrapping `System`) with per-thread delta slots, live/peak
//!   watermarks, log₂ allocation-size histograms, and statically
//!   registered [`mem::MemSite`] attribution scopes; [`PhaseClock`]
//!   samples it so the four paper phases get byte attribution too.
//!
//! When collection is disabled (the default) every instrumentation
//! point costs one relaxed atomic load.

pub mod chrome;
pub mod collector;
pub mod contention;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod phase;
pub mod report;
pub mod rng;
pub mod timeline;

pub use collector::{
    collector, counter_add, counter_max, disable, enable, enabled, hist_record, init_from_env,
    reset, snapshot, span, span_lazy, Collector, EventKind, Snapshot, SpanEvent, SpanGuard,
    TRACE_ENV,
};
pub use contention::{LockTimer, LockWaitStats, ProfilingSession};
pub use mem::{AccountingSession, CountingAlloc, MemDelta, MemSite, MemSiteStats, MemSnapshot};
pub use metrics::{Histogram, MetricsRegistry};
pub use phase::{Phase, PhaseClock};
pub use timeline::{
    JobRecord, Profiler, TimelineEvent, TimelineEventKind, TimelineSnapshot, WaveMem,
    WorkerTimeline, WorkerUtil,
};

/// Number of property-test cases to run for a given default; the
/// non-default `exhaustive` feature multiplies sampling effort the way
/// the old `proptest` dependency's case count used to.
pub fn cases(default_cases: usize) -> usize {
    if cfg!(feature = "exhaustive") {
        default_cases * 8
    } else {
        default_cases
    }
}
