//! Human-readable and JSON reports over a [`Snapshot`].
//!
//! Span aggregation walks each thread's event stream with a stack,
//! accumulating per-name *total* (inclusive) and *self* (exclusive)
//! time — the same exclusive-attribution discipline as
//! [`crate::PhaseClock`], applied post hoc to recorded spans.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write;

use crate::collector::{EventKind, Snapshot};
use crate::json::Json;

/// Aggregated statistics for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Inclusive nanoseconds (children included).
    pub total_ns: u64,
    /// Exclusive nanoseconds (children subtracted).
    pub self_ns: u64,
}

/// Aggregates balanced span events into per-name totals.
pub fn aggregate_spans(snap: &Snapshot) -> BTreeMap<String, SpanStats> {
    let mut stats: BTreeMap<String, SpanStats> = BTreeMap::new();
    // Per-thread stack of (name, start_ns, child_ns).
    let mut stacks: HashMap<u32, Vec<(String, u64, u64)>> = HashMap::new();
    for event in &snap.events {
        let stack = stacks.entry(event.tid).or_default();
        match event.kind {
            EventKind::Begin => stack.push((event.name.clone(), event.ts_ns, 0)),
            EventKind::End => {
                let Some((name, start_ns, child_ns)) = stack.pop() else {
                    continue; // unbalanced input: skip the stray edge
                };
                let total_ns = event.ts_ns.saturating_sub(start_ns);
                let entry = stats.entry(name).or_default();
                entry.count += 1;
                entry.total_ns += total_ns;
                entry.self_ns += total_ns.saturating_sub(child_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.2 += total_ns;
                }
            }
        }
    }
    stats
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a plain-text report: spans (self/total/count), counters,
/// maxima, and histograms.
pub fn text_report(snap: &Snapshot) -> String {
    let mut out = String::new();
    let spans = aggregate_spans(snap);
    if !spans.is_empty() {
        out.push_str("spans (self / total / count):\n");
        let mut rows: Vec<(&String, &SpanStats)> = spans.iter().collect();
        rows.sort_by_key(|(_, s)| std::cmp::Reverse(s.self_ns));
        for (name, s) in rows {
            let _ = writeln!(
                out,
                "  {:<28} {:>10} {:>10} {:>8}",
                name,
                fmt_ns(s.self_ns),
                fmt_ns(s.total_ns),
                s.count
            );
        }
    }
    let counters: Vec<_> = snap.metrics.counters().collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<36} {value:>12}");
        }
    }
    let maxima: Vec<_> = snap.metrics.maxima().collect();
    if !maxima.is_empty() {
        out.push_str("maxima:\n");
        for (name, value) in maxima {
            let _ = writeln!(out, "  {name:<36} {value:>12}");
        }
    }
    let hists: Vec<_> = snap.metrics.histograms().collect();
    if !hists.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in hists {
            let _ = writeln!(
                out,
                "  {:<28} n={} mean={:.1} min={} max={} p50={} p90={} p99={}",
                name,
                h.count(),
                h.mean(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.percentile(50.0).unwrap_or(0),
                h.percentile(90.0).unwrap_or(0),
                h.percentile(99.0).unwrap_or(0)
            );
            for (lo, n) in h.nonzero_buckets() {
                let _ = writeln!(out, "    >= {lo:<12} {n}");
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no observability data collected)\n");
    }
    out
}

/// Renders the snapshot as a JSON document mirroring [`text_report`].
pub fn json_report(snap: &Snapshot) -> String {
    let spans = aggregate_spans(snap);
    Json::obj(vec![
        (
            "spans",
            Json::Obj(
                spans
                    .into_iter()
                    .map(|(name, s)| {
                        (
                            name,
                            Json::obj(vec![
                                ("count", Json::Int(s.count as i64)),
                                ("total_ns", Json::Int(s.total_ns as i64)),
                                ("self_ns", Json::Int(s.self_ns as i64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        ("metrics", snap.metrics.to_json()),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::SpanEvent;

    fn ev(name: &str, ts_ns: u64, kind: EventKind) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            tid: 0,
            ts_ns,
            kind,
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let snap = Snapshot {
            events: vec![
                ev("outer", 0, EventKind::Begin),
                ev("inner", 10, EventKind::Begin),
                ev("inner", 40, EventKind::End),
                ev("outer", 100, EventKind::End),
            ],
            metrics: Default::default(),
        };
        let stats = aggregate_spans(&snap);
        assert_eq!(stats["outer"].total_ns, 100);
        assert_eq!(stats["outer"].self_ns, 70);
        assert_eq!(stats["inner"].total_ns, 30);
        assert_eq!(stats["inner"].self_ns, 30);
    }

    #[test]
    fn reports_render_without_panicking() {
        let mut snap = Snapshot::default();
        assert!(text_report(&snap).contains("no observability data"));
        snap.metrics.add("flow.unify.calls", 2);
        snap.metrics.record("beta.clauses.live", 8);
        snap.metrics.record("beta.clauses.live", 32);
        snap.events.push(ev("sat", 5, EventKind::Begin));
        snap.events.push(ev("sat", 9, EventKind::End));
        let text = text_report(&snap);
        assert!(text.contains("flow.unify.calls"));
        assert!(text.contains("sat"));
        assert!(text.contains("p50=8"), "percentiles on hist line: {text}");
        assert!(text.contains("p99=32"), "percentiles on hist line: {text}");
        let doc = crate::json::parse(&json_report(&snap)).unwrap();
        assert_eq!(
            doc.get("spans")
                .unwrap()
                .get("sat")
                .unwrap()
                .get("total_ns"),
            Some(&Json::Int(4))
        );
    }
}
