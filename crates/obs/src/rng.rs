//! Seeded pseudo-random numbers without a `rand` dependency.
//!
//! The workload generators and property tests previously leaned on
//! `rand::rngs::StdRng`; the build environment has no crates.io access,
//! so this module supplies the three operations they actually used —
//! construction from a `u64` seed, `gen_range` over half-open integer
//! ranges, and `gen_bool` — on top of SplitMix64 (Steele, Lea &
//! Flood 2014). SplitMix64 passes BigCrush at this output width and its
//! whole state is the seed, which keeps generated programs reproducible
//! from a single printed number.

use std::ops::Range;

/// SplitMix64 generator. Deterministic per seed; not cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Builds a generator from a seed, mirroring the `SeedableRng`
    /// constructor the generators were written against.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_wide(x, bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform draw from a half-open range, for any primitive integer
    /// width the generators use (`0..64i64`, `0..4u8`, `0..fields.len()`).
    pub fn gen_range<T: RangeDraw>(&mut self, range: Range<T>) -> T {
        T::draw(self, range)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Fisher–Yates shuffle, occasionally handy in tests.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Integer types drawable from a half-open range.
pub trait RangeDraw: Copy {
    fn draw(rng: &mut SplitMix64, range: Range<Self>) -> Self;
}

macro_rules! impl_range_draw_unsigned {
    ($($t:ty),*) => {$(
        impl RangeDraw for $t {
            fn draw(rng: &mut SplitMix64, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_draw_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_range_draw_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeDraw for $t {
            fn draw(rng: &mut SplitMix64, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_draw_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference outputs for seed 1234567 from the SplitMix64
        // definition in Vigna's published C code.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..400 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 drawn: {seen:?}");
        for _ in 0..400 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
        for _ in 0..100 {
            assert!((10..11u8).contains(&rng.gen_range(10u8..11)));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }
}
