//! The content-addressed inference cache.
//!
//! A cache entry maps the *meaning-relevant content* of a definition
//! group to the closed schemes it produced. The key hashes, in order:
//!
//! 1. the cache format version,
//! 2. a fingerprint of the inference options (anything that changes
//!    verdicts or schemes),
//! 3. the group's definitions, pretty-printed (so whitespace and
//!    comments never invalidate),
//! 4. each dependency's name and *closed scheme*, sorted by name.
//!
//! Point 4 gives incremental builds early cutoff for free: editing a
//! definition re-keys it, but its dependents only miss if the edit
//! actually changed the closed scheme they consume. There is no
//! explicit invalidation anywhere — a stale entry is simply a key
//! nobody computes any more.
//!
//! Only fully-successful groups are stored. Errors and timeouts are
//! re-inferred every run: they are cheap to reproduce (inference stops
//! at the first failure) and their diagnostics carry spans that would
//! go stale the moment the file is edited.
//!
//! Persistence is one mini-JSON document per cache directory. Loading
//! tolerates anything — a missing, truncated, corrupted, or
//! wrong-version file is an empty cache, never an error. Saving writes
//! only the entries this run touched (hit or inserted), so entries for
//! deleted code age out instead of accumulating.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rowpoly_boolfun::SatClass;
use rowpoly_lang::Symbol;
use rowpoly_obs::contention::LockTimer;
use rowpoly_obs::json::{self, Json};
use rowpoly_obs::MemSite;
use rowpoly_types::Scheme;

use crate::codec;

/// Bump when the key derivation or entry layout changes.
const FORMAT: &str = "rowpoly-batch-cache-v1";

/// File name inside the cache directory.
pub const CACHE_FILE: &str = "cache.json";

/// One cached definition outcome: the closed scheme and its SAT class.
#[derive(Clone, Debug)]
pub struct CachedDef {
    /// Definition name.
    pub name: Symbol,
    /// The closed scheme (safe to instantiate from any engine).
    pub scheme: Scheme,
    /// SAT class of the closed flow.
    pub sat_class: SatClass,
}

/// An in-memory view of the persistent cache.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<u64, Vec<CachedDef>>,
    touched: BTreeSet<u64>,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing (or an undecodable entry).
    pub misses: u64,
}

impl Cache {
    /// Loads the cache from `dir`, treating every failure mode —
    /// missing directory, unreadable file, corrupt JSON, wrong format
    /// version — as an empty cache.
    pub fn load(dir: &Path) -> Cache {
        let mut cache = Cache::default();
        let Ok(text) = std::fs::read_to_string(dir.join(CACHE_FILE)) else {
            return cache;
        };
        let Ok(doc) = json::parse(&text) else {
            return cache;
        };
        if doc.get("version").and_then(Json::as_str) != Some(FORMAT) {
            return cache;
        }
        let Some(entries) = doc.get("entries").and_then(Json::as_arr) else {
            return cache;
        };
        for entry in entries {
            let Some(defs) = decode_entry(entry) else {
                continue; // one bad entry must not poison the rest
            };
            if let Some(key) = entry
                .get("key")
                .and_then(Json::as_str)
                .and_then(|k| u64::from_str_radix(k, 16).ok())
            {
                cache.entries.insert(key, defs);
            }
        }
        cache
    }

    /// Computes a group's cache key from its rendered content.
    pub fn key(options_fingerprint: &str, group_source: &str, deps: &[(Symbol, Scheme)]) -> u64 {
        let rendered: Vec<(Symbol, String)> = deps
            .iter()
            .map(|(name, scheme)| (*name, codec::scheme_to_json(scheme).render()))
            .collect();
        let refs: Vec<(Symbol, &str)> = rendered.iter().map(|(n, s)| (*n, s.as_str())).collect();
        Cache::key_prerendered(options_fingerprint, group_source, &refs)
    }

    /// [`Cache::key`] over dependency schemes that are already rendered
    /// to their canonical JSON. The batch pipeline renders each closed
    /// scheme once when its group publishes and hashes the stored
    /// string per dependent, instead of re-serialising every scheme
    /// for every dependent group; keys are identical to [`Cache::key`]
    /// by construction (it delegates here).
    pub fn key_prerendered(
        options_fingerprint: &str,
        group_source: &str,
        deps: &[(Symbol, &str)],
    ) -> u64 {
        let mut h = FxHash64::default();
        h.write(FORMAT.as_bytes());
        h.write(options_fingerprint.as_bytes());
        h.write(group_source.as_bytes());
        for (name, scheme_json) in deps {
            h.write(name.as_str().as_bytes());
            h.write(scheme_json.as_bytes());
        }
        h.finish()
    }

    /// Looks up a key, counting the hit or miss.
    pub fn lookup(&mut self, key: u64) -> Option<Vec<CachedDef>> {
        match self.entries.get(&key) {
            Some(defs) => {
                self.hits += 1;
                self.touched.insert(key);
                Some(defs.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a fully-successful group outcome.
    pub fn insert(&mut self, key: u64, defs: Vec<CachedDef>) {
        self.touched.insert(key);
        self.entries.insert(key, defs);
    }

    /// Writes the entries touched this run to `dir`, creating it if
    /// needed. Best-effort: IO failures are reported, not fatal.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut entries = Vec::new();
        for &key in &self.touched {
            let Some(defs) = self.entries.get(&key) else {
                continue;
            };
            entries.push(encode_entry(key, defs));
        }
        let doc = Json::obj(vec![
            ("version", Json::Str(FORMAT.to_string())),
            ("entries", Json::Arr(entries)),
        ]);
        // Write-then-rename so a crashed run leaves either the old
        // cache or the new one, never a torn file.
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}", std::process::id()));
        let target = dir.join(CACHE_FILE);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(doc.render().as_bytes())?;
            f.write_all(b"\n")?;
        }
        std::fs::rename(&tmp, &target)
    }

    /// Number of entries currently loaded or inserted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The default cache directory under a workspace root.
pub fn default_dir() -> PathBuf {
    PathBuf::from(".rowpoly-cache")
}

/// Number of [`Sharded`] stripes. A power of two so stripe selection is
/// a mask over the (already well-mixed) content fingerprint.
pub const STRIPES: usize = 8;

/// Per-stripe wait-time accounting. Each stripe is its own static
/// site (`lock.wait.batch.cache.s0` … `.s7`), so a profile shows not
/// just that cache waiting went down after sharding but how evenly the
/// fingerprints spread across stripes.
/// Attribution site for the bytes the in-memory cache holds and clones:
/// loading `cache.json`, hit clones, and inserted entries all land here
/// (see `rowpoly-obs::mem`).
static CACHE_MEM: MemSite = MemSite::new("batch.cache");

static STRIPE_LOCKS: [LockTimer; STRIPES] = [
    LockTimer::new("batch.cache.s0"),
    LockTimer::new("batch.cache.s1"),
    LockTimer::new("batch.cache.s2"),
    LockTimer::new("batch.cache.s3"),
    LockTimer::new("batch.cache.s4"),
    LockTimer::new("batch.cache.s5"),
    LockTimer::new("batch.cache.s6"),
    LockTimer::new("batch.cache.s7"),
];

/// The inference cache sharded into [`STRIPES`] independently locked
/// stripes, routed by definition-group fingerprint. Workers touching
/// different groups almost never contend: with one global mutex the
/// PR 5 profile showed `batch.cache` lock-wait reaching ~12% of worker
/// time at 8 workers, and every acquisition serialised the whole pool.
///
/// Persistence stays a single `cache.json` — [`Sharded::load`] deals
/// the entries out by fingerprint and [`Sharded::save`] merges the
/// touched entries back, so the on-disk format (and its corruption
/// tolerance) is exactly the unsharded [`Cache`]'s.
#[derive(Debug)]
pub struct Sharded {
    stripes: Vec<Mutex<Cache>>,
}

impl Sharded {
    /// An empty sharded cache (no persistence yet).
    pub fn new() -> Sharded {
        Sharded {
            stripes: (0..STRIPES).map(|_| Mutex::new(Cache::default())).collect(),
        }
    }

    /// Loads `dir` (tolerating every failure mode, like [`Cache::load`])
    /// and deals the entries out across the stripes.
    pub fn load(dir: &Path) -> Sharded {
        let _mem = CACHE_MEM.scope();
        let whole = Cache::load(dir);
        let sharded = Sharded::new();
        for (key, defs) in whole.entries {
            sharded.stripes[stripe_of(key)]
                .lock()
                .unwrap()
                .entries
                .insert(key, defs);
        }
        sharded
    }

    fn stripe(&self, key: u64) -> std::sync::MutexGuard<'_, Cache> {
        let i = stripe_of(key);
        STRIPE_LOCKS[i].lock(&self.stripes[i])
    }

    /// Looks up a key in its stripe, counting the hit or miss there.
    pub fn lookup(&self, key: u64) -> Option<Vec<CachedDef>> {
        let _mem = CACHE_MEM.scope();
        self.stripe(key).lookup(key)
    }

    /// Stores a fully-successful group outcome in the key's stripe.
    pub fn insert(&self, key: u64, defs: Vec<CachedDef>) {
        let _mem = CACHE_MEM.scope();
        self.stripe(key).insert(key, defs);
    }

    /// Total hits across stripes.
    pub fn hits(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().unwrap().hits).sum()
    }

    /// Total misses across stripes.
    pub fn misses(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().unwrap().misses).sum()
    }

    /// Merges every stripe's touched entries and writes one
    /// `cache.json`, with [`Cache::save`]'s write-then-rename safety.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut merged = Cache::default();
        for stripe in &self.stripes {
            let cache = stripe.lock().unwrap();
            for &key in &cache.touched {
                if let Some(defs) = cache.entries.get(&key) {
                    merged.insert(key, defs.clone());
                }
            }
        }
        merged.save(dir)
    }
}

impl Default for Sharded {
    fn default() -> Sharded {
        Sharded::new()
    }
}

fn stripe_of(key: u64) -> usize {
    // The fingerprint already went through FxHash64's multiply, so the
    // high bits are the best-mixed ones.
    (key >> (64 - STRIPES.trailing_zeros())) as usize
}

fn encode_entry(key: u64, defs: &[CachedDef]) -> Json {
    Json::obj(vec![
        ("key", Json::Str(format!("{key:016x}"))),
        (
            "defs",
            Json::Arr(
                defs.iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("name", Json::Str(d.name.to_string())),
                            ("class", codec::sat_class_to_json(d.sat_class)),
                            ("scheme", codec::scheme_to_json(&d.scheme)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_entry(entry: &Json) -> Option<Vec<CachedDef>> {
    let defs = entry.get("defs")?.as_arr()?;
    let mut out = Vec::with_capacity(defs.len());
    for d in defs {
        let name = Symbol::intern(d.get("name")?.as_str()?);
        let sat_class = codec::sat_class_from_json(d.get("class")?).ok()?;
        let scheme = codec::scheme_from_json(d.get("scheme")?).ok()?;
        out.push(CachedDef {
            name,
            scheme,
            sat_class,
        });
    }
    Some(out)
}

/// The 64-bit Fx hash (the FxHasher folding step over byte blocks):
/// fast, deterministic across runs and platforms, and entirely
/// dependency-free. Not cryptographic — a cache key, not a defence.
#[derive(Default)]
pub struct FxHash64 {
    hash: u64,
}

impl FxHash64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    /// Folds bytes into the state, 8 at a time.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            self.add(word);
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= (b as u64) << (8 * i);
        }
        // Always fold the tail (even when empty) so "ab"+"" and
        // "a"+"b" reach different states than plain "ab" would not.
        self.add(tail ^ (bytes.len() as u64));
    }

    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_types::Ty;

    fn defs() -> Vec<CachedDef> {
        vec![CachedDef {
            name: Symbol::intern("one"),
            scheme: Scheme::new(vec![], Ty::Int),
            sat_class: SatClass::Trivial,
        }]
    }

    #[test]
    fn keys_separate_source_options_and_deps() {
        let dep = (Symbol::intern("d"), Scheme::new(vec![], Ty::Int));
        let dep2 = (Symbol::intern("d"), Scheme::new(vec![], Ty::Str));
        let base = Cache::key("fp", "def a = 1", std::slice::from_ref(&dep));
        assert_ne!(
            base,
            Cache::key("fp", "def a = 2", std::slice::from_ref(&dep))
        );
        assert_ne!(base, Cache::key("fp2", "def a = 1", &[dep]));
        assert_ne!(base, Cache::key("fp", "def a = 1", &[dep2]));
        assert_ne!(base, Cache::key("fp", "def a = 1", &[]));
    }

    #[test]
    fn roundtrips_through_disk_and_counts_hits() {
        let dir = std::env::temp_dir().join(format!("rowpoly-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = Cache::default();
        cache.insert(42, defs());
        cache.save(&dir).expect("saves");

        let mut back = Cache::load(&dir);
        assert_eq!(back.len(), 1);
        let got = back.lookup(42).expect("hit");
        assert_eq!(got[0].name, Symbol::intern("one"));
        assert_eq!(back.hits, 1);
        assert!(back.lookup(7).is_none());
        assert_eq!(back.misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_or_alien_files_load_as_empty() {
        let dir =
            std::env::temp_dir().join(format!("rowpoly-cache-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for bad in [
            "",
            "not json",
            "{\"version\":\"other\",\"entries\":[]}",
            "[1,2]",
        ] {
            std::fs::write(dir.join(CACHE_FILE), bad).unwrap();
            assert!(Cache::load(&dir).is_empty(), "loaded entries from {bad:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_prunes_untouched_entries() {
        let dir =
            std::env::temp_dir().join(format!("rowpoly-cache-prune-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = Cache::default();
        cache.insert(1, defs());
        cache.insert(2, defs());
        cache.save(&dir).expect("saves");

        let mut second = Cache::load(&dir);
        assert_eq!(second.len(), 2);
        let _ = second.lookup(1);
        second.save(&dir).expect("saves");

        let third = Cache::load(&dir);
        assert_eq!(third.len(), 1, "untouched entry survived the save");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
