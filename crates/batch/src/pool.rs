//! A std-only work-stealing pool for dependency graphs of jobs.
//!
//! The batch engine needs to run a DAG of inference jobs on N OS
//! threads with nothing but the standard library. Each worker owns a
//! deque; finishing a job pushes the dependents it unblocked onto the
//! finishing worker's own deque (they share the job's inputs, so
//! locality is worth keeping), and idle workers steal from the front of
//! their peers' deques. A seed queue ("injector") spreads the initially
//! ready jobs.
//!
//! Two things keep the scheduler itself off the profile:
//!
//! * **Worker-local state.** [`run_graph`] takes a `mk_worker` factory
//!   and threads one `&mut S` through every job a worker executes, so
//!   engines can reuse scratch buffers (arenas, dep-scheme vectors,
//!   pretty-printing strings) across jobs instead of reallocating per
//!   definition — the pool owns the only safe place to keep such state
//!   without cross-worker sharing.
//! * **Eventcount wakeups.** A push bumps an atomic version counter
//!   and only touches the condvar mutex when a sleeper is actually
//!   parked (`sleepers > 0`), so the saturated steady state — every
//!   worker busy — publishes work with one atomic increment instead of
//!   a mutex acquisition per job. Sleepers re-check the version under
//!   the mutex before parking (with a bounded timeout as backstop), so
//!   wakeups cannot be lost.
//!
//! The queue locks remain instrumented [`LockTimer`] sites
//! (`lock.wait.pool.queue`, `lock.wait.pool.wake`), and when a
//! [`Profiler`] is supplied each worker keeps a private
//! [`WorkerTimeline`] with exclusive busy / idle / steal-search /
//! lock-wait accounting plus steal instant markers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use rowpoly_obs::contention::LockTimer;
use rowpoly_obs::timeline::{Profiler, WorkerTimeline};

/// Wait-time accounting for the per-worker deque locks.
static QUEUE_LOCK: LockTimer = LockTimer::new("pool.queue");
/// Wait-time accounting for the condvar wake lock (only taken when a
/// sleeper is parked or about to park).
static WAKE_LOCK: LockTimer = LockTimer::new("pool.wake");

/// What the pool observed while draining a graph.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Jobs taken from another worker's deque.
    pub steals: u64,
    /// Worker threads used.
    pub workers: usize,
}

/// Runs `n_jobs` jobs respecting `deps` (for each job, the indices it
/// must wait for) on `threads` workers; jobs share no worker state.
/// Convenience wrapper over [`run_graph_with`] for callers that don't
/// need per-worker scratch.
pub fn run_graph<R, F>(
    n_jobs: usize,
    deps: &[Vec<usize>],
    threads: usize,
    profiler: Option<&Profiler>,
    run: F,
) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize, &mut WorkerTimeline) -> R + Sync,
{
    run_graph_with(
        n_jobs,
        deps,
        threads,
        profiler,
        |_| (),
        |i, (), tl| run(i, tl),
    )
}

/// Runs `n_jobs` jobs respecting `deps` on `threads` workers, with
/// per-worker state. `mk_worker(w)` builds worker `w`'s state once at
/// thread start; `run(i, state, tl)` executes job `i` with exclusive
/// access to its worker's state and may record onto the worker's
/// timeline `tl` (inert unless `profiler` is supplied). Results are
/// collected in job order. Panics if `deps` contains a cycle (the pool
/// would deadlock, so it asserts instead).
pub fn run_graph_with<R, S, I, F>(
    n_jobs: usize,
    deps: &[Vec<usize>],
    threads: usize,
    profiler: Option<&Profiler>,
    mk_worker: I,
    run: F,
) -> (Vec<R>, PoolStats)
where
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(usize, &mut S, &mut WorkerTimeline) -> R + Sync,
{
    assert_eq!(deps.len(), n_jobs);
    let threads = threads.max(1).min(n_jobs.max(1));

    // Static shape: dependents and initial indegrees.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_jobs];
    let mut indegree_init: Vec<usize> = vec![0; n_jobs];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            assert!(d < n_jobs, "dependency {d} out of range");
            dependents[d].push(i);
            indegree_init[i] += 1;
        }
    }

    let shared = Shared {
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        indegree: indegree_init.into_iter().map(AtomicUsize::new).collect(),
        remaining: AtomicUsize::new(n_jobs),
        steals: AtomicU64::new(0),
        version: AtomicU64::new(0),
        sleepers: AtomicUsize::new(0),
        wake: Mutex::new(()),
        bell: Condvar::new(),
    };

    // Seed: round-robin the initially ready jobs across workers.
    {
        let mut next = 0usize;
        for i in 0..n_jobs {
            if shared.indegree[i].load(Ordering::Relaxed) == 0 {
                shared.queues[next % threads].lock().unwrap().push_back(i);
                next += 1;
            }
        }
        assert!(
            n_jobs == 0 || next > 0,
            "dependency graph has no ready job (cycle)"
        );
    }

    let results: Vec<Mutex<Option<R>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let shared = &shared;
            let results = &results;
            let dependents = &dependents;
            let run = &run;
            let mk_worker = &mk_worker;
            scope.spawn(move || {
                let mut tl = match profiler {
                    Some(p) => p.worker(w as u32),
                    None => WorkerTimeline::disabled(),
                };
                // Allocator delta for this worker thread, bracketing the
                // whole drain (all zeros when accounting is off). The
                // mark also materializes the thread's slot, so the
                // orchestrator's slot registry sees every worker.
                let mem_mark = rowpoly_obs::mem::thread_mark();
                let mut state = mk_worker(w);
                worker(w, shared, dependents, results, run, &mut state, &mut tl);
                tl.mem = rowpoly_obs::mem::thread_delta_since(&mem_mark);
                if let Some(p) = profiler {
                    p.submit(tl);
                }
            });
        }
    });

    let executed: Vec<R> = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("graph drained but a job never ran (cycle in deps)")
        })
        .collect();
    let stats = PoolStats {
        steals: shared.steals.load(Ordering::Relaxed),
        workers: threads,
    };
    (executed, stats)
}

struct Shared {
    queues: Vec<Mutex<VecDeque<usize>>>,
    indegree: Vec<AtomicUsize>,
    remaining: AtomicUsize,
    steals: AtomicU64,
    /// Eventcount version: bumped on every push (and at drain) so
    /// sleepers can detect work that arrived between their scan and
    /// their park. `SeqCst` pairs it with `sleepers` below.
    version: AtomicU64,
    /// Workers currently parked (or committed to parking) on the bell.
    /// Pushers skip the condvar mutex entirely when this is zero.
    sleepers: AtomicUsize,
    wake: Mutex<()>,
    bell: Condvar,
}

impl Shared {
    fn push(&self, worker: usize, job: usize) {
        QUEUE_LOCK.lock(&self.queues[worker]).push_back(job);
        self.version.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // One job, one worker: a single wakeup suffices. The
            // sleeper re-checks the version under this mutex before
            // parking, so the notify cannot be lost.
            drop(WAKE_LOCK.lock(&self.wake));
            self.bell.notify_one();
        }
    }

    fn announce_drain(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
        drop(WAKE_LOCK.lock(&self.wake));
        self.bell.notify_all();
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<R, S, F>(
    me: usize,
    shared: &Shared,
    dependents: &[Vec<usize>],
    results: &[Mutex<Option<R>>],
    run: &F,
    state: &mut S,
    tl: &mut WorkerTimeline,
) where
    R: Send,
    F: Fn(usize, &mut S, &mut WorkerTimeline) -> R + Sync,
{
    loop {
        if shared.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let search = tl.mark();
        let seen = shared.version.load(Ordering::SeqCst);
        let job = pop_local(shared, me).or_else(|| steal(shared, me, tl));
        tl.charge_search(search);
        let Some(job) = job else {
            if shared.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            // Park unless a push happened since we read `seen`.
            let idle = tl.mark();
            shared.sleepers.fetch_add(1, Ordering::SeqCst);
            if shared.version.load(Ordering::SeqCst) == seen {
                let guard = WAKE_LOCK.lock(&shared.wake);
                if shared.version.load(Ordering::SeqCst) == seen {
                    // Timed wait: a bounded backstop keeps shutdown
                    // robust even if a wakeup is somehow missed.
                    let _ = shared
                        .bell
                        .wait_timeout(guard, std::time::Duration::from_millis(50))
                        .unwrap();
                }
            }
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            tl.charge_idle(idle);
            continue;
        };

        let busy = tl.mark();
        let result = run(job, state, tl);
        *results[job].lock().unwrap() = Some(result);
        for &d in &dependents[job] {
            if shared.indegree[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                shared.push(me, d);
            }
        }
        tl.charge_busy(busy);
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last job: wake everyone so they observe remaining == 0.
            shared.announce_drain();
        }
    }
}

fn pop_local(shared: &Shared, me: usize) -> Option<usize> {
    QUEUE_LOCK.lock(&shared.queues[me]).pop_back()
}

fn steal(shared: &Shared, me: usize, tl: &mut WorkerTimeline) -> Option<usize> {
    let n = shared.queues.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(job) = QUEUE_LOCK.lock(&shared.queues[victim]).pop_front() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            tl.note_steal();
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_job_once_and_respects_dependencies() {
        // Chain 0 -> 1 -> 2 plus independents; record finish order.
        let deps = vec![vec![], vec![0], vec![1], vec![], vec![]];
        let order = Mutex::new(Vec::new());
        let (results, stats) = run_graph(5, &deps, 4, None, |i, _| {
            order.lock().unwrap().push(i);
            i * 10
        });
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
        assert_eq!(stats.workers, 4);
        let order = order.into_inner().unwrap();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2));
    }

    #[test]
    fn wide_graphs_use_parallel_workers() {
        let n = 64;
        let deps = vec![Vec::new(); n];
        let live = AtomicU32::new(0);
        let peak = AtomicU32::new(0);
        let (_, stats) = run_graph(n, &deps, 4, None, |i, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert_eq!(stats.workers, 4);
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "no two jobs ever overlapped"
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let (results, _) = run_graph(0, &[], 8, None, |i: usize, _| i);
        assert!(results.is_empty());
    }

    #[test]
    fn single_thread_drains_the_whole_graph() {
        let deps = vec![vec![], vec![], vec![0, 1]];
        let order = Mutex::new(Vec::new());
        let (_, stats) = run_graph(3, &deps, 1, None, |i, _| order.lock().unwrap().push(i));
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(order[2], 2, "dependent ran before its inputs");
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn worker_state_is_exclusive_and_reused_across_jobs() {
        // Each worker carries a private job counter; every job reports
        // the counter *after* incrementing. If the pool rebuilt state
        // per job every result would be 1; if two workers shared state
        // the borrow checker would have refused to compile this.
        let n = 200;
        let deps = vec![Vec::new(); n];
        let (counts, stats) = run_graph_with(
            n,
            &deps,
            4,
            None,
            |_| 0usize,
            |_, seen: &mut usize, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(stats.workers, 4);
        assert_eq!(counts.len(), n);
        let max_seen = counts.iter().copied().max().unwrap();
        assert!(
            max_seen > 1,
            "worker state was not reused across jobs (max count {max_seen})"
        );
        // The per-worker sequences 1..=k partition the job set.
        let total_ones = counts.iter().filter(|&&c| c == 1).count();
        assert!(total_ones <= 4, "more first-jobs than workers");
    }

    #[test]
    fn deep_diamond_results_are_independent_of_worker_count() {
        // A stack of diamonds: 0 fans out to (1,2), both join at 3,
        // which fans out to (4,5), joining at 6, ... Each node's value
        // folds its dependencies' values, so any scheduling error
        // (missed dependency, double run, lost result) changes the
        // final value. The whole graph must produce identical results
        // for every worker count.
        let layers = 64;
        let n = 1 + 3 * layers;
        let mut deps: Vec<Vec<usize>> = vec![vec![]];
        for l in 0..layers {
            let join = 3 * l; // previous join node (0 for the first)
            deps.push(vec![join]); // left
            deps.push(vec![join]); // right
            deps.push(vec![3 * l + 1, 3 * l + 2]); // next join
        }
        assert_eq!(deps.len(), n);
        let run_once = |threads: usize| -> (Vec<u64>, PoolStats) {
            let results: Mutex<Vec<u64>> = Mutex::new(vec![0; n]);
            let (out, stats) = run_graph(n, &deps, threads, None, |i, _| {
                let r = results.lock().unwrap();
                let folded: u64 = deps[i].iter().fold(0u64, |a, &d| a.wrapping_add(r[d]));
                drop(r);
                let v = folded.wrapping_mul(31).wrapping_add(i as u64 + 1);
                results.lock().unwrap()[i] = v;
                v
            });
            (out, stats)
        };
        let (base, base_stats) = run_once(1);
        assert_eq!(base_stats.steals, 0);
        for threads in [2, 4, 8] {
            let (got, stats) = run_once(threads);
            assert_eq!(got, base, "results diverged at {threads} workers");
            assert_eq!(stats.workers, threads.min(n));
        }
    }

    #[test]
    fn profiled_run_captures_every_worker_and_job() {
        let n = 16;
        let deps = vec![Vec::new(); n];
        let profiler = Profiler::new();
        let (_, stats) = run_graph(n, &deps, 4, Some(&profiler), |i, tl| {
            tl.begin_with(|| format!("job {i}"));
            std::thread::sleep(std::time::Duration::from_micros(200));
            tl.end();
            i
        });
        let snap = profiler.finish();
        assert_eq!(snap.workers.len(), 4, "one timeline per worker");
        let events: usize = snap.workers.iter().map(|w| w.events.len()).sum();
        assert!(events >= 2 * n, "every job left a begin and an end");
        let steals: u64 = snap.workers.iter().map(|w| w.steals).sum();
        assert_eq!(steals, stats.steals, "timelines agree with pool stats");
        let busy: u64 = snap.workers.iter().map(|w| w.busy_ns).sum();
        assert!(busy > 0, "busy time attributed");
        for u in snap.utilization() {
            let sum = u.busy_pct() + u.idle_pct() + u.search_pct() + u.lock_wait_pct();
            assert!(
                sum <= 100.5,
                "worker {} buckets exceed wall: {sum}",
                u.worker
            );
        }
    }
}
