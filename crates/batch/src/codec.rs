//! Lossless JSON encoding of closed schemes for the on-disk cache.
//!
//! The cache stores the *result* of checking a definition group — each
//! member's closed scheme and SAT class — and replays it on a hit. A
//! replayed report must render byte-identically to a fresh one, so the
//! codec round-trips every structural detail: variable numbers, flag
//! numbers (including `NO_FLAG`), field order, and CNF clauses. The
//! decoder is total: any malformed document becomes an `Err`, which the
//! cache treats as a miss, never a crash.

use rowpoly_boolfun::{Clause, Cnf, Flag, Lit, SatClass};
use rowpoly_lang::Symbol;
use rowpoly_obs::json::Json;
use rowpoly_types::{FieldEntry, Row, RowTail, Scheme, Ty, Var};

/// Encodes a scheme.
pub fn scheme_to_json(s: &Scheme) -> Json {
    Json::obj(vec![
        (
            "vars",
            Json::Arr(s.vars.iter().map(|v| Json::Int(v.0 as i64)).collect()),
        ),
        ("ty", ty_to_json(&s.ty)),
        ("flow", cnf_to_json(&s.flow)),
    ])
}

/// Decodes a scheme; any structural mismatch is an error.
pub fn scheme_from_json(j: &Json) -> Result<Scheme, String> {
    let vars = j
        .get("vars")
        .and_then(Json::as_arr)
        .ok_or("scheme: missing vars")?
        .iter()
        .map(|v| Ok(Var(u32_from(v, "var")?)))
        .collect::<Result<Vec<Var>, String>>()?;
    let ty = ty_from_json(j.get("ty").ok_or("scheme: missing ty")?)?;
    let mut flow = cnf_from_json(j.get("flow").ok_or("scheme: missing flow")?)?;
    // Cached schemes are written normalized (closing a scheme
    // normalizes its flow), so this is a no-op re-sort that restores
    // the `normalized` invariant on the decoded value.
    flow.normalize();
    let mut scheme = Scheme::new(vars, ty);
    scheme.flow = flow;
    Ok(scheme)
}

/// Encodes a SAT class by name.
pub fn sat_class_to_json(c: SatClass) -> Json {
    Json::Str(c.name().to_string())
}

/// Decodes a SAT class from its name.
pub fn sat_class_from_json(j: &Json) -> Result<SatClass, String> {
    let name = j.as_str().ok_or("class: not a string")?;
    for c in [
        SatClass::Trivial,
        SatClass::Unsat,
        SatClass::TwoSat,
        SatClass::Horn,
        SatClass::DualHorn,
        SatClass::General,
    ] {
        if c.name() == name {
            return Ok(c);
        }
    }
    Err(format!("class: unknown name {name:?}"))
}

fn ty_to_json(ty: &Ty) -> Json {
    match ty {
        Ty::Var(v, f) => Json::obj(vec![
            ("var", Json::Int(v.0 as i64)),
            ("flag", Json::Int(f.0 as i64)),
        ]),
        Ty::Int => Json::Str("Int".to_string()),
        Ty::Str => Json::Str("Str".to_string()),
        Ty::List(t) => Json::obj(vec![("list", ty_to_json(t))]),
        Ty::Fun(a, b) => Json::obj(vec![("fun", Json::Arr(vec![ty_to_json(a), ty_to_json(b)]))]),
        Ty::Record(row) => {
            let fields = row
                .fields
                .iter()
                .map(|e| {
                    Json::Arr(vec![
                        Json::Str(e.name.to_string()),
                        Json::Int(e.flag.0 as i64),
                        ty_to_json(&e.ty),
                    ])
                })
                .collect();
            let tail = match row.tail {
                RowTail::Var(v, f) => Json::obj(vec![
                    ("var", Json::Int(v.0 as i64)),
                    ("flag", Json::Int(f.0 as i64)),
                ]),
                RowTail::Closed => Json::Str("closed".to_string()),
            };
            Json::obj(vec![("fields", Json::Arr(fields)), ("tail", tail)])
        }
    }
}

fn ty_from_json(j: &Json) -> Result<Ty, String> {
    match j {
        Json::Str(s) if s == "Int" => Ok(Ty::Int),
        Json::Str(s) if s == "Str" => Ok(Ty::Str),
        Json::Obj(_) => {
            if let Some(t) = j.get("list") {
                return Ok(Ty::List(Box::new(ty_from_json(t)?)));
            }
            if let Some(pair) = j.get("fun").and_then(Json::as_arr) {
                if pair.len() != 2 {
                    return Err("ty: fun arity".to_string());
                }
                return Ok(Ty::Fun(
                    Box::new(ty_from_json(&pair[0])?),
                    Box::new(ty_from_json(&pair[1])?),
                ));
            }
            if let Some(fields) = j.get("fields").and_then(Json::as_arr) {
                let mut entries = Vec::with_capacity(fields.len());
                for f in fields {
                    let parts = f.as_arr().ok_or("ty: field not a triple")?;
                    if parts.len() != 3 {
                        return Err("ty: field arity".to_string());
                    }
                    let name = parts[0].as_str().ok_or("ty: field name")?;
                    entries.push(FieldEntry {
                        name: Symbol::intern(name),
                        flag: Flag(u32_from(&parts[1], "field flag")?),
                        ty: ty_from_json(&parts[2])?,
                    });
                }
                let tail = match j.get("tail").ok_or("ty: missing tail")? {
                    Json::Str(s) if s == "closed" => RowTail::Closed,
                    t => RowTail::Var(
                        Var(u32_from(t.get("var").ok_or("ty: tail var")?, "tail var")?),
                        Flag(u32_from(
                            t.get("flag").ok_or("ty: tail flag")?,
                            "tail flag",
                        )?),
                    ),
                };
                return Ok(Ty::Record(Row {
                    fields: entries,
                    tail,
                }));
            }
            if let (Some(v), Some(f)) = (j.get("var"), j.get("flag")) {
                return Ok(Ty::Var(
                    Var(u32_from(v, "var")?),
                    Flag(u32_from(f, "flag")?),
                ));
            }
            Err("ty: unrecognised object".to_string())
        }
        other => Err(format!("ty: unrecognised {other:?}")),
    }
}

fn cnf_to_json(cnf: &Cnf) -> Json {
    // A literal is a signed flag index: +(f+1) positive, -(f+1) negated.
    let clauses = cnf
        .clauses()
        .iter()
        .map(|c| {
            Json::Arr(
                c.lits()
                    .iter()
                    .map(|l| {
                        let mag = l.flag().0 as i64 + 1;
                        Json::Int(if l.is_neg() { -mag } else { mag })
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Arr(clauses)
}

fn cnf_from_json(j: &Json) -> Result<Cnf, String> {
    let mut cnf = Cnf::top();
    for clause in j.as_arr().ok_or("cnf: not an array")? {
        let mut lits = Vec::new();
        for lit in clause.as_arr().ok_or("cnf: clause not an array")? {
            let n = lit.as_i64().ok_or("cnf: literal not an int")?;
            if n == 0 {
                return Err("cnf: zero literal".to_string());
            }
            let flag = Flag(u32::try_from(n.unsigned_abs() - 1).map_err(|_| "cnf: flag range")?);
            lits.push(if n < 0 {
                Lit::neg(flag)
            } else {
                Lit::pos(flag)
            });
        }
        if let Some(c) = Clause::new(lits) {
            cnf.add_clause(c); // `None` is a tautology: dropped, as normalisation would
        }
    }
    Ok(cnf)
}

fn u32_from(j: &Json, what: &str) -> Result<u32, String> {
    let n = j.as_i64().ok_or_else(|| format!("{what}: not an int"))?;
    u32::try_from(n).map_err(|_| format!("{what}: out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_core::Session;

    #[test]
    fn roundtrips_inferred_schemes() {
        let src = "def mk r = @{foo = 1} r\ndef sel r = #foo (mk r)\ndef f x = x + 1";
        let report = Session::default().infer_source(src).expect("checks");
        for d in &report.defs {
            let mut original = d.scheme.clone();
            original.flow.normalize();
            let json = scheme_to_json(&original);
            let text = json.render();
            let parsed = rowpoly_obs::json::parse(&text).expect("parses");
            let back = scheme_from_json(&parsed).expect("decodes");
            assert_eq!(back, original, "scheme for {} changed", d.name);
            assert_eq!(
                rowpoly_types::render_scheme(&back, true),
                rowpoly_types::render_scheme(&original, true)
            );
        }
    }

    #[test]
    fn roundtrips_sat_classes() {
        for c in [
            SatClass::Trivial,
            SatClass::Unsat,
            SatClass::TwoSat,
            SatClass::Horn,
            SatClass::DualHorn,
            SatClass::General,
        ] {
            let back = sat_class_from_json(&sat_class_to_json(c)).expect("decodes");
            assert_eq!(back, c);
        }
    }

    #[test]
    fn malformed_documents_are_errors_not_panics() {
        for bad in [
            "{}",
            "{\"vars\":[],\"ty\":\"Nope\",\"flow\":[]}",
            "{\"vars\":[-1],\"ty\":\"Int\",\"flow\":[]}",
            "{\"vars\":[],\"ty\":\"Int\",\"flow\":[[0]]}",
            "{\"vars\":[],\"ty\":{\"fields\":[[1,2]],\"tail\":\"closed\"},\"flow\":[]}",
        ] {
            let doc = rowpoly_obs::json::parse(bad).expect("valid json");
            assert!(scheme_from_json(&doc).is_err(), "accepted {bad}");
        }
    }
}
