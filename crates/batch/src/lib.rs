//! `rowpoly-batch`: parallel multi-file checking with an incremental,
//! content-addressed inference cache.
//!
//! The serial [`rowpoly_core::Session`] checks one file on one thread.
//! This crate scales the same inference to many files and many cores:
//!
//! * [`graph`] slices each file into definition groups with explicit
//!   dependency edges (topological waves bound the parallelism);
//! * [`pool`] drains the resulting DAG on a std-only work-stealing
//!   thread pool;
//! * [`cache`] keys each group by the content that determines its
//!   outcome — pretty-printed source, options, and the closed schemes
//!   of its dependencies — and persists results across runs;
//! * [`rowpoly_core::DefJob`] (the per-group unit of work) honours a
//!   per-definition SAT step budget, so one pathological definition
//!   degrades to a `timeout` verdict while the rest of the batch
//!   completes.
//!
//! Output is deterministic by construction: every group runs in a
//! fresh engine whose flag numbering depends only on the group's
//! inputs, and the report orders files by path and definitions by
//! source position. `--jobs 1` and `--jobs 8` produce byte-identical
//! text; scheduling artefacts (steals, cache hits, wall time) surface
//! only in the machine-readable stats.
//!
//! # Example
//!
//! ```
//! use rowpoly_batch::{check_sources, BatchOptions, FileInput};
//!
//! let files = vec![FileInput {
//!     path: "demo.rp".to_string(),
//!     source: "def inc x = x + 1\ndef use = inc 41".to_string(),
//! }];
//! let report = check_sources(files, &BatchOptions::in_memory(2));
//! assert!(report.ok());
//! assert!(report.render().contains("use : Int"));
//! ```

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use rowpoly_boolfun::SatClass;
use rowpoly_core::{
    group_source_into, run_group_spec, DefVerdict, EngineScratch, GroupSpec, Options,
};
use rowpoly_lang::{parse_program, Program, Symbol};
use rowpoly_obs as obs;
use rowpoly_obs::json::Json;
use rowpoly_obs::timeline::{JobRecord, Profiler, WorkerTimeline};
use rowpoly_types::Scheme;

pub mod cache;
pub mod codec;
pub mod graph;
pub mod pool;
pub mod profile;

use cache::{Cache, CachedDef, Sharded};
use graph::ProgramGraph;
use profile::ProfileReport;

/// Batch configuration.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Inference options shared by every definition group (carries the
    /// SAT step budget and the cancellation flag, if any).
    pub opts: Options,
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Whether to read and write the persistent cache.
    pub use_cache: bool,
    /// Directory holding `cache.json`.
    pub cache_dir: PathBuf,
    /// Render error diagnostics with the proof-evidence summary
    /// (minimal unsat core) appended.
    pub explain: bool,
    /// Emit a live progress line to stderr while the batch drains.
    /// Only takes effect when stderr is a terminal, so piped and CI
    /// runs stay clean regardless.
    pub progress: bool,
    /// Capture per-worker timelines, lock contention, and the
    /// dependency-graph critical path; the result lands in
    /// [`BatchReport::profile`]. Off by default: a disabled profiler
    /// costs one relaxed atomic load per instrumentation point.
    pub profile: bool,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            opts: Options::default(),
            jobs: 0,
            use_cache: true,
            cache_dir: cache::default_dir(),
            explain: false,
            progress: false,
            profile: false,
        }
    }
}

impl BatchOptions {
    /// Options for `jobs` workers with the persistent cache disabled —
    /// the right setup for tests and one-shot in-memory checking.
    pub fn in_memory(jobs: usize) -> BatchOptions {
        BatchOptions {
            jobs,
            use_cache: false,
            ..BatchOptions::default()
        }
    }
}

/// One source file to check.
#[derive(Clone, Debug)]
pub struct FileInput {
    /// Display path (diagnostics are reported against it).
    pub path: String,
    /// File contents.
    pub source: String,
}

/// The verdict for one definition, pre-rendered for display.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Checked; `scheme` is the rendered closed scheme.
    Ok {
        /// Rendered scheme (no flags).
        scheme: String,
        /// SAT class of the definition's closed flow.
        sat_class: SatClass,
    },
    /// Rejected by inference.
    Error {
        /// One-line message.
        message: String,
        /// Full diagnostic rendered against the file's source.
        diagnostic: String,
        /// Proof evidence (minimal unsat core) for β-conflict errors.
        proof: Option<Box<rowpoly_core::ProofInfo>>,
    },
    /// The SAT budget ran out (or the run was cancelled) — not a
    /// typing verdict.
    Timeout {
        /// One-line message.
        message: String,
    },
    /// Not attempted because `after` (an earlier group member or a
    /// failed dependency) stopped.
    Skipped {
        /// The definition whose failure shadowed this one.
        after: String,
    },
}

impl Verdict {
    fn word(&self) -> &'static str {
        match self {
            Verdict::Ok { .. } => "ok",
            Verdict::Error { .. } => "error",
            Verdict::Timeout { .. } => "timeout",
            Verdict::Skipped { .. } => "skipped",
        }
    }
}

/// The outcome for one definition.
#[derive(Clone, Debug)]
pub struct DefResult {
    /// Definition name.
    pub name: String,
    /// What happened.
    pub verdict: Verdict,
}

/// The outcome for one file.
#[derive(Clone, Debug)]
pub struct FileReport {
    /// Display path, as given in the input.
    pub path: String,
    /// Per-definition results in source order, or the rendered parse
    /// diagnostic.
    pub defs: Result<Vec<DefResult>, String>,
}

impl FileReport {
    /// Whether every definition checked.
    pub fn ok(&self) -> bool {
        match &self.defs {
            Ok(defs) => defs.iter().all(|d| matches!(d.verdict, Verdict::Ok { .. })),
            Err(_) => false,
        }
    }
}

/// Aggregate batch statistics. Everything here except the counts is
/// scheduling-dependent and deliberately kept out of the text report.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Files submitted.
    pub files: usize,
    /// Definitions across parsed files.
    pub defs: usize,
    /// Definitions that checked.
    pub ok: usize,
    /// Definitions rejected.
    pub errors: usize,
    /// Definitions whose SAT budget ran out.
    pub timeouts: usize,
    /// Definitions shadowed by an earlier failure.
    pub skipped: usize,
    /// Files that failed to parse.
    pub parse_errors: usize,
    /// Definition groups replayed from the cache.
    pub cache_hits: u64,
    /// Definition groups inferred from scratch.
    pub cache_misses: u64,
    /// Jobs taken from another worker's queue.
    pub steals: u64,
    /// Deepest dependency chain (in groups) over all files.
    pub waves: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

/// The result of checking a batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-file reports, sorted by path.
    pub files: Vec<FileReport>,
    /// Aggregate statistics.
    pub stats: BatchStats,
    /// The concurrency profile, when [`BatchOptions::profile`] was set.
    pub profile: Option<ProfileReport>,
    /// The memory-accounting block, when the counting allocator was
    /// tracking (`ROWPOLY_MEM=1`). JSON-only: memory numbers are
    /// scheduling-dependent and never appear in the text report.
    pub mem: Option<Json>,
}

impl BatchReport {
    /// Whether every file parsed and every definition checked.
    pub fn ok(&self) -> bool {
        self.files.iter().all(FileReport::ok)
    }

    /// Renders the deterministic text report: one line per definition,
    /// files sorted by path, definitions in source order, followed by a
    /// summary of the verdict counts. Contains no timing, scheduling,
    /// or cache information, so it is byte-identical across `--jobs`
    /// settings and cache states.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for file in &self.files {
            match &file.defs {
                Err(diag) => {
                    out.push_str(&format!("{}: parse error\n", file.path));
                    for line in diag.lines() {
                        out.push_str(&format!("  {line}\n"));
                    }
                }
                Ok(defs) => {
                    for d in defs {
                        match &d.verdict {
                            Verdict::Ok { scheme, .. } => {
                                out.push_str(&format!("{}: {} : {}\n", file.path, d.name, scheme));
                            }
                            Verdict::Error { diagnostic, .. } => {
                                out.push_str(&format!("{}: {}: error\n", file.path, d.name));
                                for line in diagnostic.lines() {
                                    out.push_str(&format!("  {line}\n"));
                                }
                            }
                            Verdict::Timeout { message } => {
                                out.push_str(&format!(
                                    "{}: {}: timeout: {}\n",
                                    file.path, d.name, message
                                ));
                            }
                            Verdict::Skipped { after } => {
                                out.push_str(&format!(
                                    "{}: {}: skipped (after `{}`)\n",
                                    file.path, d.name, after
                                ));
                            }
                        }
                    }
                }
            }
        }
        let s = &self.stats;
        out.push_str(&format!(
            "batch: {} files, {} definitions: {} ok, {} errors, {} timeouts, {} skipped{}\n",
            s.files,
            s.defs,
            s.ok,
            s.errors,
            s.timeouts,
            s.skipped,
            if s.parse_errors > 0 {
                format!(", {} parse errors", s.parse_errors)
            } else {
                String::new()
            }
        ));
        out
    }

    /// The machine-readable report, including the scheduling-dependent
    /// statistics the text report omits.
    pub fn to_json(&self) -> Json {
        let files = self
            .files
            .iter()
            .map(|f| {
                let mut members = vec![("path", Json::Str(f.path.clone()))];
                match &f.defs {
                    Err(diag) => members.push(("parse_error", Json::Str(diag.clone()))),
                    Ok(defs) => members.push((
                        "defs",
                        Json::Arr(
                            defs.iter()
                                .map(|d| {
                                    let mut m = vec![
                                        ("name", Json::Str(d.name.clone())),
                                        ("status", Json::Str(d.verdict.word().to_string())),
                                    ];
                                    match &d.verdict {
                                        Verdict::Ok { scheme, sat_class } => {
                                            m.push(("scheme", Json::Str(scheme.clone())));
                                            m.push((
                                                "class",
                                                Json::Str(sat_class.name().to_string()),
                                            ));
                                        }
                                        Verdict::Error { message, proof, .. } => {
                                            m.push(("message", Json::Str(message.clone())));
                                            if let Some(p) = proof {
                                                m.push((
                                                    "proof",
                                                    Json::obj(vec![
                                                        (
                                                            "class",
                                                            Json::Str(p.sat_class.to_string()),
                                                        ),
                                                        (
                                                            "beta_clauses",
                                                            Json::Int(p.beta_clauses as i64),
                                                        ),
                                                        (
                                                            "core",
                                                            Json::Arr(
                                                                p.core_clauses
                                                                    .iter()
                                                                    .map(|&i| Json::Int(i as i64))
                                                                    .collect(),
                                                            ),
                                                        ),
                                                        (
                                                            "minimized_core",
                                                            Json::Arr(
                                                                p.minimized_core_clauses
                                                                    .iter()
                                                                    .map(|&i| Json::Int(i as i64))
                                                                    .collect(),
                                                            ),
                                                        ),
                                                        (
                                                            "derivation_steps",
                                                            Json::Int(p.derivation_steps as i64),
                                                        ),
                                                    ]),
                                                ));
                                            }
                                        }
                                        Verdict::Timeout { message } => {
                                            m.push(("message", Json::Str(message.clone())));
                                        }
                                        Verdict::Skipped { after } => {
                                            m.push(("after", Json::Str(after.clone())));
                                        }
                                    }
                                    Json::obj(m)
                                })
                                .collect(),
                        ),
                    )),
                }
                Json::obj(members)
            })
            .collect();
        let s = &self.stats;
        let mut members = vec![
            ("files", Json::Arr(files)),
            (
                "stats",
                Json::obj(vec![
                    ("files", Json::Int(s.files as i64)),
                    ("defs", Json::Int(s.defs as i64)),
                    ("ok", Json::Int(s.ok as i64)),
                    ("errors", Json::Int(s.errors as i64)),
                    ("timeouts", Json::Int(s.timeouts as i64)),
                    ("skipped", Json::Int(s.skipped as i64)),
                    ("parse_errors", Json::Int(s.parse_errors as i64)),
                    ("cache_hits", Json::Int(s.cache_hits as i64)),
                    ("cache_misses", Json::Int(s.cache_misses as i64)),
                    ("steals", Json::Int(s.steals as i64)),
                    ("waves", Json::Int(s.waves as i64)),
                    ("workers", Json::Int(s.workers as i64)),
                    ("wall_ms", Json::Float(s.wall.as_secs_f64() * 1e3)),
                ]),
            ),
        ];
        if let Some(mem) = &self.mem {
            members.push(("mem", mem.clone()));
        }
        Json::obj(members)
    }
}

/// Live progress line for interactive runs: one `\r`-rewritten stderr
/// line tracking completed jobs against the total, plus cache hits.
/// Under ready-set dispatch waves are not the scheduling unit — a
/// worker may be three "waves" deep in one file while another file's
/// wave 0 is still queued — so the line counts *jobs*; the wave depth
/// survives only as a graph statistic ([`BatchStats::waves`]). Active
/// only when requested *and* stderr is a terminal, so piped output,
/// `--json` pipelines, and CI logs never see control characters.
///
/// Clearing the line is handled by `Drop`, so every exit path —
/// including early returns and panics unwinding out of the pool —
/// leaves stderr at column zero instead of a stale partial line.
struct Progress {
    total: usize,
    done: std::sync::atomic::AtomicUsize,
    /// Serializes writers; holds the length of the last printed line
    /// so `finish` can blank exactly what was written.
    line: Mutex<usize>,
    finished: std::sync::atomic::AtomicBool,
    active: bool,
}

impl Progress {
    fn new(requested: bool, total: usize) -> Progress {
        use std::io::IsTerminal;
        Progress {
            total,
            done: std::sync::atomic::AtomicUsize::new(0),
            line: Mutex::new(0),
            finished: std::sync::atomic::AtomicBool::new(false),
            active: requested && std::io::stderr().is_terminal(),
        }
    }

    /// Called by a worker after each job finishes. The completion
    /// counter here is the *only* source of the displayed job count —
    /// cache hits are reported alongside but never folded into it, so
    /// a warm run (every job answered from cache) still counts each
    /// job exactly once.
    fn tick(&self, cache: Option<&Sharded>) {
        use std::sync::atomic::Ordering;
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.active {
            return;
        }
        let hits = cache.map_or(0, Sharded::hits);
        let line = progress_line(done, self.total, hits);
        let mut last_len = self.line.lock().unwrap();
        // Pad with spaces when the new line is shorter (hit counts can
        // make earlier lines longer than later ones).
        let pad = last_len.saturating_sub(line.len());
        *last_len = line.len();
        eprint!("\r{line}{:pad$}", "");
    }

    /// Clears the line so whatever prints next starts at column zero.
    /// Idempotent; also invoked by `Drop` on early exits.
    fn finish(&self) {
        use std::sync::atomic::Ordering;
        if self.active && !self.finished.swap(true, Ordering::Relaxed) {
            let width = *self.line.lock().unwrap();
            eprint!("\r{:width$}\r", "");
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Renders the progress line. Pure so the shape is unit-testable; the
/// displayed count is clamped to the total, so even a miscounted tick
/// (a completion recorded outside the dispatch loop) can never show
/// `k/N` with `k > N`.
fn progress_line(done: usize, total: usize, hits: u64) -> String {
    format!(
        "checking: {}/{total} jobs | {hits} cache hits",
        done.min(total)
    )
}

/// A parsed file awaiting scheduling.
struct ParsedFile {
    path: String,
    source: String,
    program: Arc<Program>,
    graph: ProgramGraph,
    /// Index of this file's first job in the global job list.
    job_base: usize,
}

/// One group's outcome, published for dependent jobs.
struct GroupResult {
    /// `(def index, verdict)` per member, in group order.
    items: Vec<(usize, DefVerdict)>,
    /// Canonical JSON of each `Ok` member's closed scheme, aligned
    /// with `items`. Rendered once when the group publishes (and only
    /// when a cache is in play) so every dependent hashes its cache
    /// key from these strings instead of re-serialising the schemes.
    scheme_json: Vec<Option<String>>,
}

impl GroupResult {
    /// Publishes `items`, pre-rendering the closed schemes' JSON when
    /// `render` is set (i.e. when dependents will compute cache keys).
    fn publish(items: Vec<(usize, DefVerdict)>, render: bool) -> GroupResult {
        let scheme_json = if render {
            items
                .iter()
                .map(|(_, v)| {
                    v.report()
                        .map(|r| codec::scheme_to_json(&r.scheme).render())
                })
                .collect()
        } else {
            Vec::new()
        };
        GroupResult { items, scheme_json }
    }
}

/// Per-worker scratch threaded through the pool: reusable engine
/// allocations plus the content-key string buffer. Nothing in here
/// affects results — only allocation traffic.
#[derive(Default)]
struct WorkerScratch {
    engine: EngineScratch,
    /// Buffer for the pretty-printed group source (the content key).
    content: String,
}

/// Checks a batch of in-memory sources. This is the whole engine; the
/// CLI's `check` command is a thin wrapper that reads files into
/// [`FileInput`]s and renders the result.
pub fn check_sources(mut inputs: Vec<FileInput>, options: &BatchOptions) -> BatchReport {
    let wall_start = Instant::now();
    let trace_path = obs::init_from_env();
    // Memory baseline for the whole batch: snapshot the process-wide
    // counters and attribution sites before any work, so the report's
    // `mem` block is a clean delta over this run.
    let mem_baseline =
        obs::mem::tracking().then(|| (obs::mem::snapshot(), obs::mem::site_snapshot()));
    inputs.sort_by(|a, b| a.path.cmp(&b.path));
    inputs.dedup_by(|a, b| a.path == b.path);

    let threads = if options.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.jobs
    };

    // Parse every file and lay the groups out in one global job list.
    let mut parsed: Vec<Result<ParsedFile, (String, String)>> = Vec::new();
    let mut n_jobs = 0usize;
    for input in inputs {
        match parse_program(&input.source) {
            Err(diag) => {
                parsed.push(Err((input.path, diag.render(&input.source))));
            }
            Ok(program) => {
                let graph = ProgramGraph::build(&program);
                let job_base = n_jobs;
                n_jobs += graph.groups.len();
                parsed.push(Ok(ParsedFile {
                    path: input.path,
                    source: input.source,
                    program: Arc::new(program),
                    graph,
                    job_base,
                }));
            }
        }
    }

    let jobs: Vec<(usize, usize)> = parsed
        .iter()
        .enumerate()
        .filter_map(|(f, p)| p.as_ref().ok().map(|pf| (f, pf)))
        .flat_map(|(f, pf)| (0..pf.graph.groups.len()).map(move |g| (f, g)))
        .collect();
    let deps: Vec<Vec<usize>> = jobs
        .iter()
        .map(|&(f, g)| {
            let pf = parsed[f].as_ref().expect("jobs index parsed files");
            pf.graph.groups[g]
                .dep_groups
                .iter()
                .map(|&d| pf.job_base + d)
                .collect()
        })
        .collect();

    let cache = options.use_cache.then(|| Sharded::load(&options.cache_dir));
    let fingerprint = options.opts.fingerprint();
    let results: Vec<OnceLock<GroupResult>> = (0..n_jobs).map(|_| OnceLock::new()).collect();

    let progress = Progress::new(options.progress, n_jobs);
    let profiler = options.profile.then(Profiler::new);
    let (_, pool_stats) = pool::run_graph_with(
        n_jobs,
        &deps,
        threads,
        profiler.as_ref(),
        |_| WorkerScratch::default(),
        |j, ws, tl| {
            let (f, g) = jobs[j];
            let pf = parsed[f].as_ref().expect("jobs index parsed files");
            let wave = pf.graph.groups[g].wave;
            if let Some(p) = &profiler {
                if p.first_of_wave(wave) {
                    tl.instant_with(|| format!("wave {wave}"));
                    if obs::mem::tracking() {
                        p.note_wave_mem(obs::WaveMem {
                            wave,
                            t_ns: tl.now_ns(),
                            live_bytes: obs::mem::live_bytes(),
                            peak_bytes: obs::mem::peak_bytes(),
                        });
                    }
                }
            }
            let result = run_group(
                pf,
                g,
                j,
                &results,
                cache.as_ref(),
                &fingerprint,
                options,
                ws,
                tl,
            );
            assert!(results[j].set(result).is_ok(), "job ran twice");
            progress.tick(cache.as_ref());
        },
    );
    progress.finish();
    let profile = profiler.map(|p| ProfileReport::build(p.finish(), &deps));

    if let Some(cache) = cache.as_ref() {
        if let Err(e) = cache.save(&options.cache_dir) {
            eprintln!(
                "rowpoly: warning: could not save cache to {}: {e}",
                options.cache_dir.display()
            );
        }
    }

    let mut report = assemble(
        parsed,
        &results,
        cache.as_ref(),
        pool_stats,
        threads,
        wall_start,
        options.explain,
    );
    report.profile = profile;
    if let Some((base_snap, base_sites)) = mem_baseline {
        let now = obs::mem::snapshot();
        let delta = now.delta_since(&base_snap);
        let sites = obs::mem::site_delta(&obs::mem::site_snapshot(), &base_sites);
        report.mem = Some(obs::mem::report_json(
            &delta,
            &base_snap,
            &now,
            &sites,
            report.stats.defs as u64,
        ));
    }
    flush_batch_metrics(&report.stats);
    if let Some(path) = trace_path {
        let snap = obs::snapshot();
        if let Err(e) = obs::chrome::write_chrome_trace(&snap, std::path::Path::new(path)) {
            eprintln!(
                "rowpoly: failed to write {TRACE}={path}: {e}",
                TRACE = obs::TRACE_ENV
            );
        }
    }
    report
}

/// Renders `file.rp:def+def` for a group — the label jobs carry in
/// profiles and traces.
fn group_label(pf: &ParsedFile, group: &graph::Group) -> String {
    let names: Vec<String> = group
        .def_indices
        .iter()
        .map(|&i| pf.program.defs[i].name.to_string())
        .collect();
    format!("{}:{}", pf.path, names.join("+"))
}

/// Runs (or replays) one definition group. `job` is the group's global
/// scheduler id; `ws` is the executing worker's private scratch; `tl`
/// is its timeline (inert unless profiling).
#[allow(clippy::too_many_arguments)]
fn run_group(
    pf: &ParsedFile,
    g: usize,
    job: usize,
    results: &[OnceLock<GroupResult>],
    cache: Option<&Sharded>,
    fingerprint: &str,
    options: &BatchOptions,
    ws: &mut WorkerScratch,
    tl: &mut WorkerTimeline,
) -> GroupResult {
    let group = &pf.graph.groups[g];
    tl.begin_with(|| group_label(pf, group));
    let start_ns = tl.now_ns();
    let (result, cached, phases) =
        run_group_inner(pf, group, results, cache, fingerprint, options, ws, tl);
    let end_ns = tl.now_ns();
    tl.end();
    if tl.enabled() {
        tl.push_job(JobRecord {
            job,
            label: group_label(pf, group),
            start_ns,
            end_ns,
            cached,
            phases,
        });
    }
    result
}

/// The body of [`run_group`]; returns the result plus the profile
/// attributes (replayed-from-cache flag, inference-phase breakdown).
#[allow(clippy::too_many_arguments)]
fn run_group_inner(
    pf: &ParsedFile,
    group: &graph::Group,
    results: &[OnceLock<GroupResult>],
    cache: Option<&Sharded>,
    fingerprint: &str,
    options: &BatchOptions,
    ws: &mut WorkerScratch,
    tl: &mut WorkerTimeline,
) -> (GroupResult, bool, Vec<(&'static str, u64)>) {
    // Collect dependency schemes from already-finished groups — by
    // reference: nothing is cloned unless the group actually has to
    // run. The pool guarantees dependencies completed; a failed one
    // poisons this group into `Skipped`.
    let render = cache.is_some();
    let mut dep_schemes: Vec<(Symbol, &Scheme)> = Vec::with_capacity(group.deps.len());
    let mut dep_json: Vec<(Symbol, &str)> =
        Vec::with_capacity(if render { group.deps.len() } else { 0 });
    for (&name, &def_idx) in &group.deps {
        let dep_job = pf.job_base + pf.graph.group_of[def_idx];
        let dep_result = results[dep_job].get().expect("dependency not finished");
        let pos = dep_result
            .items
            .iter()
            .position(|(i, _)| *i == def_idx)
            .expect("dependency definition missing from its group");
        match &dep_result.items[pos].1 {
            DefVerdict::Ok(report) => {
                dep_schemes.push((name, &report.scheme));
                if render {
                    let json = dep_result.scheme_json[pos]
                        .as_deref()
                        .expect("Ok member published without scheme JSON");
                    dep_json.push((name, json));
                }
            }
            _ => {
                let items = group
                    .def_indices
                    .iter()
                    .map(|&i| (i, DefVerdict::Skipped { after: name }))
                    .collect();
                return (GroupResult::publish(items, render), false, Vec::new());
            }
        }
    }

    // Content-addressed lookup: options + pretty-printed group source +
    // dependency schemes (hashed from the JSON their groups already
    // rendered — nothing is re-serialised here).
    let mut key = None;
    if let Some(cache) = cache {
        group_source_into(&mut ws.content, &pf.program, &group.def_indices);
        let k = Cache::key_prerendered(fingerprint, &ws.content, &dep_json);
        if let Some(cached) = cache.lookup(k) {
            if let Some(items) = replay(group, &cached, pf) {
                obs::counter_add("batch.cache.hits", 1);
                tl.instant("cache-hit");
                return (GroupResult::publish(items, render), true, Vec::new());
            }
            // Undecodable or mismatched entry: fall through and re-run.
        }
        obs::counter_add("batch.cache.misses", 1);
        key = Some(k);
    }

    let spec = GroupSpec {
        opts: &options.opts,
        program: &pf.program,
        def_indices: &group.def_indices,
        deps: &dep_schemes,
        free_names: Some(&group.free_names),
    };
    let outcome = run_group_spec(&spec, &mut ws.engine);
    let phases = outcome.stats.phase_durations();

    if outcome.all_ok() {
        if let (Some(cache), Some(key)) = (cache, key) {
            let defs = outcome
                .items
                .iter()
                .map(|(_, v)| {
                    let report = v.report().expect("all_ok");
                    CachedDef {
                        name: report.name,
                        scheme: report.scheme.clone(),
                        sat_class: report.sat_class,
                    }
                })
                .collect();
            cache.insert(key, defs);
        }
    }
    (GroupResult::publish(outcome.items, render), false, phases)
}

/// Rebuilds a group's verdicts from a cache entry. Returns `None` when
/// the entry does not line up with the program (hash collision or a
/// stale decode) — the caller then re-infers.
fn replay(
    group: &graph::Group,
    cached: &[CachedDef],
    pf: &ParsedFile,
) -> Option<Vec<(usize, DefVerdict)>> {
    if cached.len() != group.def_indices.len() {
        return None;
    }
    let mut items = Vec::with_capacity(cached.len());
    for (&i, c) in group.def_indices.iter().zip(cached) {
        if pf.program.defs[i].name != c.name {
            return None;
        }
        items.push((
            i,
            DefVerdict::Ok(rowpoly_core::DefReport {
                name: c.name,
                scheme: c.scheme.clone(),
                sat_class: c.sat_class,
            }),
        ));
    }
    Some(items)
}

/// Sews the per-group results back into per-file, source-ordered
/// reports and tallies the statistics.
#[allow(clippy::too_many_arguments)]
fn assemble(
    parsed: Vec<Result<ParsedFile, (String, String)>>,
    results: &[OnceLock<GroupResult>],
    cache: Option<&Sharded>,
    pool_stats: pool::PoolStats,
    workers: usize,
    wall_start: Instant,
    explain: bool,
) -> BatchReport {
    let mut stats = BatchStats {
        files: parsed.len(),
        steals: pool_stats.steals,
        workers,
        ..BatchStats::default()
    };
    if let Some(cache) = cache {
        stats.cache_hits = cache.hits();
        stats.cache_misses = cache.misses();
    }

    let mut files = Vec::with_capacity(parsed.len());
    for entry in parsed {
        match entry {
            Err((path, diag)) => {
                stats.parse_errors += 1;
                files.push(FileReport {
                    path,
                    defs: Err(diag),
                });
            }
            Ok(pf) => {
                stats.waves = stats.waves.max(pf.graph.waves);
                obs::hist_record("batch.file.waves", pf.graph.waves as u64);
                let mut defs = Vec::with_capacity(pf.program.defs.len());
                for (i, def) in pf.program.defs.iter().enumerate() {
                    let job = pf.job_base + pf.graph.group_of[i];
                    let result = results[job].get().expect("group never ran");
                    let verdict = result
                        .items
                        .iter()
                        .find(|(idx, _)| *idx == i)
                        .map(|(_, v)| v)
                        .expect("definition missing from its group");
                    stats.defs += 1;
                    let rendered = match verdict {
                        DefVerdict::Ok(report) => {
                            stats.ok += 1;
                            Verdict::Ok {
                                scheme: report.render(false),
                                sat_class: report.sat_class,
                            }
                        }
                        DefVerdict::Error(e) => {
                            stats.errors += 1;
                            let diag = if explain {
                                e.to_diag_explained()
                            } else {
                                e.to_diag()
                            };
                            Verdict::Error {
                                message: e.message(),
                                diagnostic: diag.render(&pf.source),
                                proof: e.proof.clone(),
                            }
                        }
                        DefVerdict::Timeout(e) => {
                            stats.timeouts += 1;
                            obs::counter_add("batch.timeouts", 1);
                            Verdict::Timeout {
                                message: e.message(),
                            }
                        }
                        DefVerdict::Skipped { after } => {
                            stats.skipped += 1;
                            Verdict::Skipped {
                                after: after.to_string(),
                            }
                        }
                    };
                    defs.push(DefResult {
                        name: def.name.to_string(),
                        verdict: rendered,
                    });
                }
                files.push(FileReport {
                    path: pf.path,
                    defs: Ok(defs),
                });
            }
        }
    }
    stats.wall = wall_start.elapsed();
    BatchReport {
        files,
        stats,
        profile: None,
        mem: None,
    }
}

fn flush_batch_metrics(stats: &BatchStats) {
    if !obs::enabled() {
        return;
    }
    obs::counter_add("batch.files", stats.files as u64);
    obs::counter_add("batch.defs", stats.defs as u64);
    obs::counter_add("batch.steals", stats.steals);
    obs::counter_max("batch.waves.max", stats.waves as u64);
    obs::counter_max("batch.workers", stats.workers as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, source: &str) -> FileInput {
        FileInput {
            path: path.to_string(),
            source: source.to_string(),
        }
    }

    #[test]
    fn matches_serial_session_on_a_simple_program() {
        let src = "def inc x = x + 1\ndef use = inc 41\ndef mk r = @{foo = 1} r";
        let report = check_sources(vec![file("a.rp", src)], &BatchOptions::in_memory(2));
        assert!(report.ok());
        let serial = rowpoly_core::Session::default()
            .infer_source(src)
            .expect("serial checks");
        let Ok(defs) = &report.files[0].defs else {
            panic!("parse failed")
        };
        for (batch, serial) in defs.iter().zip(&serial.defs) {
            let Verdict::Ok { scheme, .. } = &batch.verdict else {
                panic!("{} failed in batch", batch.name)
            };
            assert_eq!(scheme, &serial.render(false), "scheme of {}", batch.name);
        }
    }

    #[test]
    fn errors_are_reported_and_independent_defs_still_check() {
        let src = "def bad = #foo {}\ndef fine = 1";
        let report = check_sources(vec![file("a.rp", src)], &BatchOptions::in_memory(2));
        assert!(!report.ok());
        let Ok(defs) = &report.files[0].defs else {
            panic!("parse failed")
        };
        assert!(matches!(defs[0].verdict, Verdict::Error { .. }));
        assert!(
            matches!(defs[1].verdict, Verdict::Ok { .. }),
            "independent definition should still check"
        );
        assert_eq!(report.stats.errors, 1);
        assert_eq!(report.stats.ok, 1);
    }

    #[test]
    fn failed_dependency_skips_dependents() {
        let src = "def bad = #foo {}\ndef use = bad";
        let report = check_sources(vec![file("a.rp", src)], &BatchOptions::in_memory(2));
        let Ok(defs) = &report.files[0].defs else {
            panic!("parse failed")
        };
        assert!(matches!(defs[0].verdict, Verdict::Error { .. }));
        assert!(matches!(&defs[1].verdict, Verdict::Skipped { after } if after == "bad"));
    }

    #[test]
    fn parse_errors_do_not_stop_other_files() {
        let report = check_sources(
            vec![file("b.rp", "def broken = ("), file("a.rp", "def x = 1")],
            &BatchOptions::in_memory(2),
        );
        assert!(!report.ok());
        assert_eq!(report.stats.parse_errors, 1);
        // Files come back sorted by path.
        assert_eq!(report.files[0].path, "a.rp");
        assert!(report.files[0].ok());
        assert!(report.files[1].defs.is_err());
    }

    #[test]
    fn profiled_run_reports_utilization_and_critical_path() {
        let src = "def a = 1\ndef b = a + 1\ndef c = b + 1\ndef d = {x = 1}\ndef e = #x d";
        let mut options = BatchOptions::in_memory(2);
        options.profile = true;
        let report = check_sources(vec![file("a.rp", src)], &options);
        assert!(report.ok());
        let profile = report.profile.as_ref().expect("profile requested");
        assert!(!profile.workers.is_empty(), "at least one worker timeline");
        for u in &profile.workers {
            let sum = u.busy_pct() + u.idle_pct() + u.search_pct() + u.lock_wait_pct();
            assert!(
                sum <= 100.5,
                "worker {} buckets exceed wall: {sum}",
                u.worker
            );
        }
        let c = &profile.critical;
        assert!(c.path_ns > 0, "critical path measured");
        assert!(c.path_ns <= c.wall_ns, "chain cannot exceed wall");
        assert!(c.serial_ns >= c.path_ns, "serial work includes the chain");
        assert!(!c.chain.is_empty() && c.chain[0].starts_with("a.rp:"));
        assert_eq!(
            profile.jobs.len(),
            5,
            "every definition group left a job record"
        );
        assert!(profile.jobs.iter().any(|j| !j.phases.is_empty()));

        // Profiling never perturbs the deterministic report.
        let plain = check_sources(vec![file("a.rp", src)], &BatchOptions::in_memory(2));
        assert!(plain.profile.is_none());
        assert_eq!(report.render(), plain.render());
    }

    #[test]
    fn tiny_sat_budget_times_out_only_the_pathological_def() {
        // Symmetric concatenation generates general CNF — the only
        // class that reaches CDCL, where the budget applies. Aggressive
        // compaction would project the general structure away before
        // the check, so the pathological case needs the per-definition
        // compaction ablation (where β genuinely blows up).
        let src = "def hard = {a = 1} @@ {b = 2}\ndef easy = 1";
        let mut options = BatchOptions::in_memory(2);
        options.opts.compaction = rowpoly_core::Compaction::PerDef;
        options.opts.sat_budget = Some(0);
        let report = check_sources(vec![file("a.rp", src)], &options);
        let Ok(defs) = &report.files[0].defs else {
            panic!("parse failed")
        };
        assert!(
            matches!(defs[0].verdict, Verdict::Timeout { .. }),
            "expected timeout, got {:?}",
            defs[0].verdict
        );
        assert!(matches!(defs[1].verdict, Verdict::Ok { .. }));
        assert_eq!(report.stats.timeouts, 1);
        assert!(report.render().contains("timeout"));
    }

    #[test]
    fn progress_line_clamps_to_total() {
        assert_eq!(
            progress_line(3, 10, 0),
            "checking: 3/10 jobs | 0 cache hits"
        );
        assert_eq!(
            progress_line(10, 10, 10),
            "checking: 10/10 jobs | 10 cache hits"
        );
        // A completion recorded outside the dispatch loop (the warm-run
        // double-count) must not push the display past the total.
        assert_eq!(
            progress_line(12, 10, 10),
            "checking: 10/10 jobs | 10 cache hits"
        );
        assert_eq!(progress_line(0, 0, 0), "checking: 0/0 jobs | 0 cache hits");
    }
}
