//! Per-definition dependency graphs over parsed programs.
//!
//! The serial driver threads one environment through a file's
//! definitions in source order, which serialises everything. Most of
//! that order is incidental: a definition only *needs* the definitions
//! it references. This module recovers the real structure:
//!
//! * A reference resolves to the **latest preceding** definition of
//!   that name, mirroring the serial driver's environment overwrites.
//!   Forward references (and anything else unresolved that is not a
//!   list built-in) are *ambient*: the driver binds them to fresh
//!   monomorphic types.
//! * Definitions that share an ambient variable are correlated through
//!   the shared monomorphic binding, so they are grouped into one unit
//!   and checked serially inside it — splitting them could accept
//!   programs the serial driver rejects.
//! * Groups are closed to contiguous index intervals. This keeps every
//!   dependency edge pointing at a strictly earlier interval, so the
//!   group graph is acyclic by construction (a group can never need a
//!   scheme produced after its own first member).
//!
//! The result is a DAG of [`Group`]s whose topological *waves* bound
//! the parallelism available in the file.

use std::collections::{BTreeMap, BTreeSet};

use rowpoly_lang::{Program, Symbol};

/// Names bound by [`rowpoly_core`]'s built-in environment; references
/// to them are neither dependencies nor ambient variables.
const BUILTINS: [&str; 4] = ["null", "head", "tail", "cons"];

/// One schedulable unit: a contiguous run of definitions checked
/// serially in a single engine.
#[derive(Clone, Debug)]
pub struct Group {
    /// Indices into `program.defs`, ascending and contiguous.
    pub def_indices: Vec<usize>,
    /// For every out-of-group definition the group references: the
    /// referenced name and the index of the definition it resolves to.
    /// Sorted by name, one entry per name.
    pub deps: BTreeMap<Symbol, usize>,
    /// Groups (by index into [`ProgramGraph::groups`]) this group needs
    /// schemes from. Strictly smaller indices.
    pub dep_groups: Vec<usize>,
    /// Topological level: 1 + the maximum wave of any dependency
    /// (wave 0 for independent groups).
    pub wave: usize,
    /// The union of the members' free variables, sorted. Dependency
    /// resolution already walked every body, so the per-group union is
    /// kept here and handed to `rowpoly_core::GroupSpec::free_names` —
    /// jobs must not re-walk their ASTs on every (re-)run.
    pub free_names: Vec<Symbol>,
}

/// The dependency structure of one parsed program.
#[derive(Clone, Debug)]
pub struct ProgramGraph {
    /// Groups in ascending interval order (group `g`'s definitions all
    /// precede group `g+1`'s).
    pub groups: Vec<Group>,
    /// For each definition index, the group that owns it.
    pub group_of: Vec<usize>,
    /// Number of topological waves (0 for an empty program).
    pub waves: usize,
}

impl ProgramGraph {
    /// Builds the graph for a parsed program.
    pub fn build(program: &Program) -> ProgramGraph {
        let n = program.defs.len();
        let builtins: BTreeSet<Symbol> = BUILTINS.iter().map(|s| Symbol::intern(s)).collect();

        // Resolve references and find each definition's ambient names,
        // keeping the raw free-variable sets: the groups publish their
        // union so jobs never re-walk the ASTs.
        let mut resolved: Vec<BTreeMap<Symbol, usize>> = Vec::with_capacity(n);
        let mut ambient: Vec<BTreeSet<Symbol>> = Vec::with_capacity(n);
        let mut free_of: Vec<BTreeSet<Symbol>> = Vec::with_capacity(n);
        let mut latest: BTreeMap<Symbol, usize> = BTreeMap::new();
        for (i, def) in program.defs.iter().enumerate() {
            let free = def.body.free_vars();
            let mut deps = BTreeMap::new();
            let mut amb = BTreeSet::new();
            for &name in &free {
                if name == def.name {
                    // Self-recursion, handled by the fixpoint inside
                    // `infer_def`; not a dependency edge.
                    continue;
                }
                if let Some(&j) = latest.get(&name) {
                    deps.insert(name, j);
                } else if !builtins.contains(&name) {
                    amb.insert(name);
                }
            }
            resolved.push(deps);
            ambient.push(amb);
            free_of.push(free);
            latest.insert(def.name, i);
        }

        // Union definitions sharing an ambient name, then close each
        // component to a contiguous interval (merging overlaps).
        let mut uf = UnionFind::new(n);
        let mut first_with: BTreeMap<Symbol, usize> = BTreeMap::new();
        for (i, amb) in ambient.iter().enumerate() {
            for &name in amb {
                match first_with.get(&name) {
                    Some(&j) => uf.union(i, j),
                    None => {
                        first_with.insert(name, i);
                    }
                }
            }
        }
        let mut span_of: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        for i in 0..n {
            let root = uf.find(i);
            let entry = span_of.entry(root).or_insert((i, i));
            entry.0 = entry.0.min(i);
            entry.1 = entry.1.max(i);
        }
        let mut intervals: Vec<(usize, usize)> = span_of.values().copied().collect();
        intervals.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::new();
        for (lo, hi) in intervals {
            match merged.last_mut() {
                Some((_, phi)) if lo <= *phi => *phi = (*phi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        // Intervals cover singletons too, so `merged` partitions 0..n.

        let mut group_of = vec![0usize; n];
        let mut groups: Vec<Group> = Vec::with_capacity(merged.len());
        for (g, &(lo, hi)) in merged.iter().enumerate() {
            for slot in &mut group_of[lo..=hi] {
                *slot = g;
            }
            let mut free_union: BTreeSet<Symbol> = BTreeSet::new();
            for free in &free_of[lo..=hi] {
                free_union.extend(free.iter().copied());
            }
            groups.push(Group {
                def_indices: (lo..=hi).collect(),
                deps: BTreeMap::new(),
                dep_groups: Vec::new(),
                wave: 0,
                free_names: free_union.into_iter().collect(),
            });
        }

        // Lift definition dependencies to group edges; in-group
        // references are satisfied by the group's serial environment.
        for (g, group) in groups.iter_mut().enumerate() {
            let mut dep_groups: BTreeSet<usize> = BTreeSet::new();
            let lo = group.def_indices[0];
            for &i in &group.def_indices {
                for (&name, &j) in &resolved[i] {
                    if j >= lo {
                        continue;
                    }
                    group.deps.insert(name, j);
                    dep_groups.insert(group_of[j]);
                }
            }
            debug_assert!(dep_groups.iter().all(|&d| d < g));
            group.dep_groups = dep_groups.into_iter().collect();
        }

        // Waves: groups are already in topological (interval) order.
        let mut waves = 0usize;
        for g in 0..groups.len() {
            let wave = groups[g]
                .dep_groups
                .iter()
                .map(|&d| groups[d].wave + 1)
                .max()
                .unwrap_or(0);
            groups[g].wave = wave;
            waves = waves.max(wave + 1);
        }

        ProgramGraph {
            groups,
            group_of,
            waves,
        }
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::parse_program;

    fn graph(src: &str) -> ProgramGraph {
        ProgramGraph::build(&parse_program(src).expect("parses"))
    }

    #[test]
    fn independent_defs_get_singleton_groups_in_one_wave() {
        let g = graph("def a = 1\ndef b = 2\ndef c = 3");
        assert_eq!(g.groups.len(), 3);
        assert_eq!(g.waves, 1);
        assert!(g.groups.iter().all(|gr| gr.dep_groups.is_empty()));
    }

    #[test]
    fn references_create_backward_edges_and_waves() {
        let g = graph("def a = 1\ndef b = a + 1\ndef c = b + a");
        assert_eq!(g.groups.len(), 3);
        assert_eq!(g.groups[1].dep_groups, vec![0]);
        assert_eq!(g.groups[2].dep_groups, vec![0, 1]);
        assert_eq!(g.waves, 3);
    }

    #[test]
    fn shadowing_resolves_to_latest_preceding() {
        let g = graph("def a = 1\ndef a = \"s\"\ndef use = a");
        let dep = *g.groups[2].deps.values().next().expect("one dep");
        assert_eq!(dep, 1);
    }

    #[test]
    fn shared_ambient_variable_merges_the_interval() {
        // `a` and `c` share the ambient `mystery`; `b` sits between
        // them, so the whole interval [0, 2] becomes one group.
        let g = graph("def a = mystery\ndef b = 2\ndef c = mystery\ndef d = 4");
        assert_eq!(g.groups.len(), 2);
        assert_eq!(g.groups[0].def_indices, vec![0, 1, 2]);
        assert_eq!(g.groups[1].def_indices, vec![3]);
    }

    #[test]
    fn builtins_and_self_recursion_are_not_ambient() {
        let g = graph("def f xs = if null xs then 0 else f (tail xs)\ndef g2 = 1");
        assert_eq!(g.groups.len(), 2);
        assert!(g.groups[0].deps.is_empty());
    }
}
