//! Parallel-run profiling: utilization, contention, and critical path.
//!
//! This module turns the raw [`TimelineSnapshot`] a profiled batch run
//! produces into the three answers the scaling work needs:
//!
//! 1. **Utilization** — for each worker, what fraction of the wall was
//!    spent executing jobs vs asleep vs scanning for work vs blocked on
//!    instrumented locks (`worker 3: 41% busy, 52% idle, 7% lock-wait`).
//! 2. **Contention** — per-site lock wait totals and histograms
//!    (`lock.wait.pool.queue`, `lock.wait.batch.cache.s0` …
//!    `lock.wait.batch.cache.s7`, `lock.wait.lang.interner.s0` …
//!    `lock.wait.lang.interner.s15`, ...), restricted to this run.
//! 3. **Critical path** — the longest weighted chain through the
//!    definition dependency graph using *measured* per-job durations.
//!    Comparing it to wall time separates "the graph is inherently
//!    serial" (`critical/wall ≈ 1`) from "the scheduler is serializing
//!    us" (`critical/wall ≪ 1` while `wall ≈ serial`).
//!
//! The report renders three ways: a text table for humans, JSON for
//! the bench harness and CI schema checks, and a Chrome trace with one
//! named track per worker for `chrome://tracing` / Perfetto.

use std::path::Path;

use rowpoly_obs::contention::LockWaitStats;
use rowpoly_obs::json::Json;
use rowpoly_obs::mem::MemDelta;
use rowpoly_obs::timeline::{TimelineSnapshot, WorkerUtil};

/// One scheduled job in the profile, flattened from the worker
/// timelines and keyed by scheduler job id.
#[derive(Clone, Debug)]
pub struct JobProfile {
    /// Scheduler job id (index into the dependency graph).
    pub job: usize,
    /// Display label (`file.rp:def+def`).
    pub label: String,
    /// Worker that executed it.
    pub worker: u32,
    /// Start offset from the profile epoch, nanoseconds.
    pub start_ns: u64,
    /// Measured duration, nanoseconds.
    pub dur_ns: u64,
    /// Whether it was replayed from the cache.
    pub cached: bool,
    /// Inference-phase breakdown measured inside the job.
    pub phases: Vec<(&'static str, u64)>,
}

/// The longest weighted chain through the job dependency graph.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Sum of measured durations along the heaviest chain.
    pub path_ns: u64,
    /// Sum of all measured job durations (perfect-serial work).
    pub serial_ns: u64,
    /// Wall time of the profiled run.
    pub wall_ns: u64,
    /// Labels along the critical path, in execution order.
    pub chain: Vec<String>,
}

impl CriticalPath {
    /// `critical path / wall` — how much of the run the inherently
    /// serial chain explains. Near 1.0 the graph itself is the limit;
    /// far below 1.0 the scheduler (or contention) is.
    pub fn ratio(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.path_ns as f64 / self.wall_ns as f64
        }
    }

    /// `serial work / critical path` — the speedup an ideal scheduler
    /// with unlimited workers could reach on this graph.
    pub fn ideal_speedup(&self) -> f64 {
        if self.path_ns == 0 {
            1.0
        } else {
            self.serial_ns as f64 / self.path_ns as f64
        }
    }
}

/// Everything a profiled batch run learned, ready to render.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Per-worker utilization against the run's wall clock.
    pub workers: Vec<WorkerUtil>,
    /// Per-site lock waits accrued during the run.
    pub locks: Vec<LockWaitStats>,
    /// Per-job measurements, sorted by scheduler job id.
    pub jobs: Vec<JobProfile>,
    /// Longest weighted dependency chain vs wall.
    pub critical: CriticalPath,
    /// The raw snapshot, kept for Chrome-trace export.
    pub snapshot: TimelineSnapshot,
}

impl ProfileReport {
    /// Builds the report from a finished snapshot and the dependency
    /// edges the scheduler ran (for each job, the strictly smaller job
    /// ids it waited for).
    pub fn build(snapshot: TimelineSnapshot, deps: &[Vec<usize>]) -> ProfileReport {
        let mut jobs: Vec<JobProfile> = Vec::new();
        for w in &snapshot.workers {
            for j in &w.jobs {
                jobs.push(JobProfile {
                    job: j.job,
                    label: j.label.clone(),
                    worker: w.worker(),
                    start_ns: j.start_ns,
                    dur_ns: j.dur_ns(),
                    cached: j.cached,
                    phases: j.phases.clone(),
                });
            }
        }
        jobs.sort_by_key(|j| j.job);

        let critical = critical_path(&jobs, deps, snapshot.wall_ns);
        ProfileReport {
            workers: snapshot.utilization(),
            locks: snapshot.locks.clone(),
            jobs,
            critical,
            snapshot,
        }
    }

    /// The human-readable profile: utilization table, lock table,
    /// critical path summary, and the heaviest jobs.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let wall_ms = self.critical.wall_ns as f64 / 1e6;
        out.push_str(&format!(
            "profile: {} workers, {} jobs, wall {wall_ms:.1} ms\n",
            self.workers.len(),
            self.jobs.len(),
        ));

        out.push_str("\nworker utilization\n");
        for u in &self.workers {
            out.push_str(&format!(
                "  worker {}: {:5.1}% busy, {:5.1}% idle, {:5.1}% lock-wait, {:5.1}% steal-scan, {:5.1}% other  ({} jobs, {} steals)\n",
                u.worker,
                u.busy_pct(),
                u.idle_pct(),
                u.lock_wait_pct(),
                u.search_pct(),
                u.other_pct(),
                u.jobs,
                u.steals,
            ));
        }

        out.push_str("\nlock waits\n");
        if self.locks.is_empty() {
            out.push_str("  (no instrumented lock was acquired)\n");
        }
        for l in &self.locks {
            out.push_str(&format!(
                "  lock.wait.{}: {} acquisitions, {} contended, total {:.3} ms, max {:.3} ms",
                l.name,
                l.acquisitions,
                l.contended,
                l.wait_ns as f64 / 1e6,
                l.max_wait_ns as f64 / 1e6,
            ));
            if let (Some(p50), Some(p90), Some(p99)) =
                (l.percentile(50.0), l.percentile(90.0), l.percentile(99.0))
            {
                out.push_str(&format!(", p50 {p50} ns, p90 {p90} ns, p99 {p99} ns"));
            }
            out.push('\n');
        }

        let c = &self.critical;
        out.push_str(&format!(
            "\ncritical path: {:.1} ms of {:.1} ms wall (ratio {:.2}); serial work {:.1} ms, ideal speedup {:.2}x\n",
            c.path_ns as f64 / 1e6,
            c.wall_ns as f64 / 1e6,
            c.ratio(),
            c.serial_ns as f64 / 1e6,
            c.ideal_speedup(),
        ));
        if !c.chain.is_empty() {
            let shown = c.chain.len().min(8);
            out.push_str(&format!(
                "  chain ({} jobs): {}{}\n",
                c.chain.len(),
                c.chain[..shown].join(" -> "),
                if c.chain.len() > shown { " -> ..." } else { "" },
            ));
        }

        let mut heaviest: Vec<&JobProfile> = self.jobs.iter().collect();
        heaviest.sort_by_key(|j| std::cmp::Reverse(j.dur_ns));
        if !heaviest.is_empty() {
            out.push_str("\nheaviest jobs\n");
            for j in heaviest.iter().take(5) {
                out.push_str(&format!(
                    "  {:8.3} ms  worker {}  {}{}\n",
                    j.dur_ns as f64 / 1e6,
                    j.worker,
                    j.label,
                    if j.cached { "  (cached)" } else { "" },
                ));
            }
        }

        let merged = self.snapshot.mem_merged();
        if merged != MemDelta::default() || !self.snapshot.wave_mem.is_empty() {
            const MIB: f64 = 1024.0 * 1024.0;
            out.push_str("\nmemory (counting allocator)\n");
            out.push_str(&format!(
                "  all workers: {:.2} MiB allocated in {} allocations, net {:+.2} MiB\n",
                merged.alloc_bytes as f64 / MIB,
                merged.allocs,
                merged.net_bytes() as f64 / MIB,
            ));
            for w in &self.snapshot.workers {
                if w.mem == MemDelta::default() {
                    continue;
                }
                out.push_str(&format!(
                    "  worker {}: {:.2} MiB allocated in {} allocations, net {:+.2} MiB\n",
                    w.worker(),
                    w.mem.alloc_bytes as f64 / MIB,
                    w.mem.allocs,
                    w.mem.net_bytes() as f64 / MIB,
                ));
            }
            for wm in &self.snapshot.wave_mem {
                out.push_str(&format!(
                    "  wave {} (t={:.1} ms): live {:.2} MiB, peak {:.2} MiB\n",
                    wm.wave,
                    wm.t_ns as f64 / 1e6,
                    wm.live_bytes as f64 / MIB,
                    wm.peak_bytes as f64 / MIB,
                ));
            }
        }
        out
    }

    /// The machine-readable profile (schema checked by
    /// `scripts/check_profile.py`).
    pub fn to_json(&self) -> Json {
        let workers = self
            .workers
            .iter()
            .map(|u| {
                Json::obj(vec![
                    ("worker", Json::Int(u.worker as i64)),
                    ("jobs", Json::Int(u.jobs as i64)),
                    ("steals", Json::Int(u.steals as i64)),
                    ("busy_pct", Json::Float(u.busy_pct())),
                    ("idle_pct", Json::Float(u.idle_pct())),
                    ("lock_wait_pct", Json::Float(u.lock_wait_pct())),
                    ("steal_scan_pct", Json::Float(u.search_pct())),
                    ("other_pct", Json::Float(u.other_pct())),
                ])
            })
            .collect();
        // Delegates to `LockWaitStats::to_json` so the JSON percentiles
        // come from the same `percentile_from_buckets` estimator the
        // text report prints (parity test below).
        let locks = self
            .locks
            .iter()
            .map(|l| (format!("lock.wait.{}", l.name), l.to_json()))
            .collect::<Vec<_>>();
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                Json::obj(vec![
                    ("job", Json::Int(j.job as i64)),
                    ("label", Json::Str(j.label.clone())),
                    ("worker", Json::Int(j.worker as i64)),
                    ("start_ns", Json::Int(j.start_ns as i64)),
                    ("dur_ns", Json::Int(j.dur_ns as i64)),
                    ("cached", Json::Bool(j.cached)),
                    (
                        "phases",
                        Json::Obj(
                            j.phases
                                .iter()
                                .map(|(n, ns)| (n.to_string(), Json::Int(*ns as i64)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let merged = self.snapshot.mem_merged();
        let mem = Json::obj(vec![
            ("merged", merged.to_json()),
            (
                "workers",
                Json::Arr(
                    self.snapshot
                        .workers
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("worker", Json::Int(w.worker() as i64)),
                                ("delta", w.mem.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "waves",
                Json::Arr(
                    self.snapshot
                        .wave_mem
                        .iter()
                        .map(|wm| {
                            Json::obj(vec![
                                ("wave", Json::Int(wm.wave as i64)),
                                ("t_ns", Json::Int(wm.t_ns as i64)),
                                ("live_bytes", Json::Int(wm.live_bytes)),
                                ("peak_bytes", Json::Int(wm.peak_bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let c = &self.critical;
        Json::obj(vec![
            ("wall_ns", Json::Int(c.wall_ns as i64)),
            ("workers", Json::Arr(workers)),
            ("locks", Json::Obj(locks)),
            ("jobs", Json::Arr(jobs)),
            ("mem", mem),
            (
                "critical_path",
                Json::obj(vec![
                    ("path_ns", Json::Int(c.path_ns as i64)),
                    ("serial_ns", Json::Int(c.serial_ns as i64)),
                    ("wall_ns", Json::Int(c.wall_ns as i64)),
                    ("ratio", Json::Float(c.ratio())),
                    ("ideal_speedup", Json::Float(c.ideal_speedup())),
                    (
                        "chain",
                        Json::Arr(c.chain.iter().map(|s| Json::Str(s.clone())).collect()),
                    ),
                ]),
            ),
        ])
    }

    /// Writes the per-worker Chrome trace next to the JSON profile.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        rowpoly_obs::chrome::write_chrome_trace_timelines(&self.snapshot, path)
    }
}

/// Longest weighted chain through the DAG. `deps[j]` only names ids
/// `< j` (the graph layer guarantees it), so one forward pass suffices.
fn critical_path(jobs: &[JobProfile], deps: &[Vec<usize>], wall_ns: u64) -> CriticalPath {
    let n = deps.len();
    // Duration per job id; jobs the profiler never saw weigh 0.
    let mut dur = vec![0u64; n];
    let mut label: Vec<&str> = vec![""; n];
    for j in jobs {
        if j.job < n {
            dur[j.job] = j.dur_ns;
            label[j.job] = &j.label;
        }
    }
    let mut longest = vec![0u64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for j in 0..n {
        let (best_ns, best_pred) = deps[j]
            .iter()
            .filter(|&&d| d < j)
            .map(|&d| (longest[d], Some(d)))
            .max()
            .unwrap_or((0, None));
        longest[j] = dur[j] + best_ns;
        pred[j] = best_pred;
    }
    let end = (0..n).max_by_key(|&j| longest[j]);
    let mut chain = Vec::new();
    let mut cursor = end;
    while let Some(j) = cursor {
        chain.push(if label[j].is_empty() {
            format!("job {j}")
        } else {
            label[j].to_string()
        });
        cursor = pred[j];
    }
    chain.reverse();
    CriticalPath {
        path_ns: end.map_or(0, |j| longest[j]),
        serial_ns: dur.iter().sum(),
        wall_ns,
        chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_obs::timeline::{JobRecord, Profiler};

    fn snapshot_with_jobs(specs: &[(usize, u64, &str)]) -> TimelineSnapshot {
        let profiler = Profiler::new();
        let mut tl = profiler.worker(0);
        let mut t = 0u64;
        for &(job, dur, label) in specs {
            tl.push_job(JobRecord {
                job,
                label: label.to_string(),
                start_ns: t,
                end_ns: t + dur,
                cached: false,
                phases: vec![("unify", dur / 2)],
            });
            t += dur;
        }
        profiler.submit(tl);
        profiler.finish()
    }

    #[test]
    fn critical_path_follows_the_heaviest_chain() {
        // 0 -> 2, 1 -> 2; job 1 is heavier, so the chain is 1 -> 2.
        let deps = vec![vec![], vec![], vec![0, 1]];
        let snap = snapshot_with_jobs(&[(0, 100, "a"), (1, 900, "b"), (2, 50, "c")]);
        let report = ProfileReport::build(snap, &deps);
        assert_eq!(report.critical.path_ns, 950);
        assert_eq!(report.critical.serial_ns, 1050);
        assert_eq!(report.critical.chain, vec!["b", "c"]);
        assert!((report.critical.ideal_speedup() - 1050.0 / 950.0).abs() < 1e-9);
    }

    #[test]
    fn independent_jobs_critical_path_is_the_heaviest_job() {
        let deps = vec![vec![], vec![], vec![]];
        let snap = snapshot_with_jobs(&[(0, 10, "a"), (1, 30, "b"), (2, 20, "c")]);
        let report = ProfileReport::build(snap, &deps);
        assert_eq!(report.critical.path_ns, 30);
        assert_eq!(report.critical.chain, vec!["b"]);
        assert_eq!(report.critical.serial_ns, 60);
    }

    /// The text report and the JSON report must quote the *same*
    /// percentile estimates for lock waits: both go through
    /// `LockWaitStats::percentile` (the shared bucket estimator), so a
    /// golden site with a known wait distribution must round-trip
    /// identically through both renderings.
    #[test]
    fn lock_percentiles_agree_between_text_and_json() {
        let mut report = ProfileReport::build(snapshot_with_jobs(&[(0, 10, "a")]), &[vec![]]);
        report.locks = vec![LockWaitStats {
            name: "golden",
            acquisitions: 10,
            contended: 4,
            wait_ns: 1000,
            max_wait_ns: 700,
            // One wait in [2,4) ns, two in [256,512) ns, one at max.
            buckets: {
                let mut b = vec![0u64; 11];
                b[2] = 1;
                b[9] = 2;
                b[10] = 1;
                b
            },
        }];
        let l = &report.locks[0];
        let (p50, p90, p99) = (
            l.percentile(50.0).unwrap(),
            l.percentile(90.0).unwrap(),
            l.percentile(99.0).unwrap(),
        );

        let text = report.render_text();
        assert!(
            text.contains(&format!("p50 {p50} ns, p90 {p90} ns, p99 {p99} ns")),
            "text report must quote the shared estimator: {text}"
        );

        let doc = rowpoly_obs::json::parse(&report.to_json().render()).expect("valid JSON");
        let lock = doc.get("locks").unwrap().get("lock.wait.golden").unwrap();
        assert_eq!(lock.get("p50_ns").and_then(Json::as_i64), Some(p50 as i64));
        assert_eq!(lock.get("p90_ns").and_then(Json::as_i64), Some(p90 as i64));
        assert_eq!(lock.get("p99_ns").and_then(Json::as_i64), Some(p99 as i64));
    }

    #[test]
    fn report_json_carries_workers_locks_and_critical_path() {
        let deps = vec![vec![], vec![0]];
        let snap = snapshot_with_jobs(&[(0, 40, "x"), (1, 60, "y")]);
        let report = ProfileReport::build(snap, &deps);
        let text = report.render_text();
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        let doc = rowpoly_obs::json::parse(&report.to_json().render()).expect("valid JSON");
        let workers = doc.get("workers").and_then(Json::as_arr).unwrap();
        assert_eq!(workers.len(), 1);
        assert!(workers[0].get("busy_pct").and_then(Json::as_f64).is_some());
        let cp = doc.get("critical_path").unwrap();
        assert_eq!(cp.get("path_ns").and_then(Json::as_i64), Some(100));
        assert!(cp.get("ratio").and_then(Json::as_f64).is_some());
    }
}
