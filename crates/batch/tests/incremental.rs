//! Cache-correctness and determinism tests for the batch engine.
//!
//! These exercise the persistent cache through the public
//! `check_sources` entry point: warm runs must be byte-identical to
//! cold ones, edits must invalidate exactly the definitions whose
//! *consumed content* changed, and a damaged cache directory must be
//! treated as empty, never as an error.

use std::path::PathBuf;

use rowpoly_batch::{cache, check_sources, BatchOptions, BatchReport, FileInput};

/// A unique temp cache directory per test, cleaned up on drop.
struct TempCache {
    dir: PathBuf,
}

impl TempCache {
    fn new(tag: &str) -> TempCache {
        let dir =
            std::env::temp_dir().join(format!("rowpoly-batch-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache { dir }
    }

    fn options(&self, jobs: usize) -> BatchOptions {
        BatchOptions {
            use_cache: true,
            cache_dir: self.dir.clone(),
            ..BatchOptions::in_memory(jobs)
        }
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn file(path: &str, source: &str) -> FileInput {
    FileInput {
        path: path.to_string(),
        source: source.to_string(),
    }
}

fn check(sources: &[(&str, &str)], options: &BatchOptions) -> BatchReport {
    check_sources(sources.iter().map(|(p, s)| file(p, s)).collect(), options)
}

/// Every `.rp` file in the repository's `programs/` corpus.
fn corpus() -> Vec<FileInput> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("programs/ exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rp"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus is empty");
    files
        .into_iter()
        .map(|p| FileInput {
            path: p.file_name().unwrap().to_string_lossy().into_owned(),
            source: std::fs::read_to_string(&p).expect("readable program"),
        })
        .collect()
}

#[test]
fn warm_run_is_byte_identical_and_hits() {
    let tmp = TempCache::new("warm");
    let sources = [
        ("a.rp", "def inc x = x + 1\ndef two = inc 1"),
        ("b.rp", "def tag r = @{t = 1} r\ndef use = #t (tag {})"),
    ];
    let cold = check(&sources, &tmp.options(2));
    assert!(cold.ok());
    assert_eq!(cold.stats.cache_hits, 0);

    let warm = check(&sources, &tmp.options(2));
    assert_eq!(warm.render(), cold.render());
    assert!(warm.stats.cache_hits > 0, "second run never hit the cache");
    assert_eq!(warm.stats.cache_misses, 0);
}

#[test]
fn jobs_do_not_change_the_report() {
    let sources = [
        ("m.rp", "def f x = x + 1\ndef g = f 2\ndef bad = #nope {}"),
        ("n.rp", "def h r = @{a = 1} r\ndef k = #a (h {})"),
    ];
    let serial = check(&sources, &BatchOptions::in_memory(1));
    let parallel = check(&sources, &BatchOptions::in_memory(8));
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn editing_a_def_invalidates_only_its_consumers() {
    let tmp = TempCache::new("edit");
    // Three independent definitions plus one consumer of `base`.
    let before = [(
        "x.rp",
        "def base = 1\ndef uses = base + 1\ndef alone = \"quiet\"",
    )];
    let cold = check(&before, &tmp.options(2));
    assert!(cold.ok());

    // Change `base`'s scheme (Int -> Str): `uses` must re-check (and
    // now fail), while the untouched `alone` stays a cache hit.
    let after = [(
        "x.rp",
        "def base = \"s\"\ndef uses = base + 1\ndef alone = \"quiet\"",
    )];
    let warm = check(&after, &tmp.options(2));
    assert!(!warm.ok(), "uses `base + 1` should fail on a Str base");
    assert!(
        warm.stats.cache_hits >= 1,
        "independent def was invalidated by an unrelated edit"
    );
    assert!(
        warm.stats.cache_misses >= 2,
        "edited def and consumer must miss"
    );
}

#[test]
fn unchanged_scheme_gives_dependents_early_cutoff() {
    let tmp = TempCache::new("cutoff");
    let before = [("y.rp", "def base = 1\ndef uses = base + 1")];
    let cold = check(&before, &tmp.options(1));
    assert!(cold.ok());

    // `1 + 1` is a different body but the same closed scheme (Int), so
    // the dependent's key — which hashes the *scheme*, not the source —
    // is unchanged and it hits.
    let after = [("y.rp", "def base = 1 + 1\ndef uses = base + 1")];
    let warm = check(&after, &tmp.options(1));
    assert!(warm.ok());
    assert!(
        warm.stats.cache_hits >= 1,
        "dependent missed although its dependency's scheme is unchanged"
    );
}

#[test]
fn corrupted_cache_is_ignored_not_fatal() {
    let tmp = TempCache::new("corrupt");
    std::fs::create_dir_all(&tmp.dir).unwrap();
    std::fs::write(tmp.dir.join(cache::CACHE_FILE), "{ not json ]").unwrap();

    let sources = [("c.rp", "def v = 1")];
    let report = check(&sources, &tmp.options(1));
    assert!(report.ok());
    assert_eq!(report.stats.cache_hits, 0);

    // The damaged file was replaced by a valid one this run can hit.
    let warm = check(&sources, &tmp.options(1));
    assert!(warm.stats.cache_hits > 0);
}

#[test]
fn no_cache_matches_cached_on_the_corpus() {
    let tmp = TempCache::new("corpus");
    let cached_opts = tmp.options(4);
    let cold = check_sources(corpus(), &cached_opts);
    let warm = check_sources(corpus(), &cached_opts);
    let uncached = check_sources(corpus(), &BatchOptions::in_memory(4));

    assert_eq!(cold.render(), uncached.render());
    assert_eq!(warm.render(), uncached.render());
    assert!(warm.stats.cache_hits > 0);
}
