//! Counting-allocator stress test under the 8-worker batch pool.
//!
//! This binary installs the counting `#[global_allocator]` and holds
//! exactly ONE `#[test]`, on purpose: the invariants below compare the
//! process-wide ledger against the per-thread slots over a quiesced
//! window, and a second concurrently-running test (libtest runs tests
//! on its own thread pool) would allocate into that window and break
//! the equality. Keep it single-test.
//!
//! Invariants exercised (ISSUE 9, satellite 4):
//!
//! 1. **Slot/ledger agreement** — after the pool's scoped workers have
//!    joined, the sum of per-thread slot deltas equals the global
//!    atomic ledger's delta, byte for byte and count for count.
//! 2. **Worker containment** — the per-worker deltas the profiler
//!    merged at join are non-zero and no larger than the global delta.
//! 3. **Peak monotonicity** — the wave-boundary allocator samples are
//!    non-decreasing in `peak_bytes` over time (a watermark can only
//!    rise within a run).

use rowpoly_batch::{check_sources, BatchOptions, FileInput};
use rowpoly_obs::mem::{self, MemDelta};
use rowpoly_obs::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A batch wide enough to keep 8 workers busy and deep enough (each
/// file is a 4-deep dependency chain) to produce several waves.
fn inputs() -> Vec<FileInput> {
    (0..24)
        .map(|i| FileInput {
            path: format!("stress_{i:02}.rp"),
            source: "\
def base r = #x r + 1
def mid r = base {x = #y r}
def high r = mid {y = #z r} + base {x = 2}
def top r = high {z = #w r} + mid {y = 3}
"
            .to_string(),
        })
        .collect()
}

#[test]
fn pool_slots_reconcile_with_global_ledger() {
    assert!(mem::installed(), "counting allocator must be installed");

    // Take the paired baseline reads with tracking OFF: the snapshot
    // machinery allocates (the slots Vec, lock guards), and with the
    // ledgers frozen those allocations are invisible to both, so the
    // pair is a single consistent instant.
    let base_snap = mem::snapshot();
    let base_slots = mem::slots_snapshot();

    let session = mem::accounting_session();
    let options = BatchOptions {
        profile: true,
        ..BatchOptions::in_memory(8)
    };
    let report = check_sources(inputs(), &options);
    assert!(report.ok(), "stress batch must check:\n{}", report.render());
    assert_eq!(report.stats.workers, 8);
    drop(session);

    // The scoped pool has joined and tracking is off again: the window
    // is quiesced and exactly bracketed, so the two ledgers must agree
    // byte for byte.
    let now_snap = mem::snapshot();
    let now_slots = mem::slots_snapshot();
    let global = now_snap.delta_since(&base_snap);
    let merged_slots = mem::slots_delta(&now_slots, &base_slots);
    assert!(global.allocs > 0, "the batch must allocate");
    assert_eq!(
        merged_slots, global,
        "sum of per-thread slot deltas must equal the global ledger delta"
    );

    // Invariant 2: per-worker deltas captured at join are real and
    // bounded by the whole-process delta.
    let profile = report.profile.as_ref().expect("profile requested");
    let workers_mem = profile.snapshot.mem_merged();
    assert!(
        workers_mem.allocs > 0,
        "workers must have recorded allocations"
    );
    assert!(
        workers_mem.alloc_bytes <= global.alloc_bytes
            && workers_mem.allocs <= global.allocs
            && workers_mem.freed_bytes <= global.freed_bytes
            && workers_mem.deallocs <= global.deallocs,
        "merged worker delta {workers_mem:?} exceeds global delta {global:?}"
    );
    // A worker that never got a job may legitimately allocate nothing
    // (the pool can drain 24 files before all 8 workers wake), but any
    // worker that ran jobs must have a real delta.
    for w in &profile.snapshot.workers {
        if !w.jobs.is_empty() {
            assert_ne!(
                w.mem,
                MemDelta::default(),
                "worker {} ran {} jobs but captured no allocator delta",
                w.worker(),
                w.jobs.len()
            );
        }
    }

    // Invariant 3: wave-boundary peak samples are a watermark.
    let waves = &profile.snapshot.wave_mem;
    assert!(!waves.is_empty(), "multi-wave batch must sample waves");
    let mut by_time = waves.clone();
    by_time.sort_by_key(|wm| wm.t_ns);
    for pair in by_time.windows(2) {
        assert!(
            pair[0].peak_bytes <= pair[1].peak_bytes,
            "peak_bytes regressed between samples: {pair:?}"
        );
    }

    // The batch report carried the mem block (tracking was on).
    let mem_block = report.mem.as_ref().expect("mem block when tracking");
    let rendered = mem_block.render();
    assert!(rendered.contains("\"peak_bytes\""), "{rendered}");
}
