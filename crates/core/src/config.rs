//! Inference configuration and phase statistics.

use rowpoly_boolfun::{ProjectStats, SatClass};
use std::time::Duration;

/// The number of [`SatClass`] variants (for per-class count arrays).
pub const SAT_CLASS_COUNT: usize = 6;

/// All [`SatClass`] variants in ascending difficulty order, for
/// iterating per-class counters.
pub const SAT_CLASSES: [SatClass; SAT_CLASS_COUNT] = [
    SatClass::Trivial,
    SatClass::Unsat,
    SatClass::TwoSat,
    SatClass::Horn,
    SatClass::DualHorn,
    SatClass::General,
];

/// When to project stale flags out of the Boolean function β.
///
/// Section 6 of the paper notes that stale flags must be removed for the
/// correctness of expansion ("is applied aggressively"); the safe default
/// projects at the end of every rule that drops structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compaction {
    /// Project at the end of every structural rule (safe default).
    Aggressive,
    /// Project only after each top-level definition. Faster, but an
    /// expansion may alias copies through a stale flag (the Section 6
    /// bug); exposed for the ablation benchmark.
    PerDef,
}

/// When to run the SAT check on β.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckPolicy {
    /// After every rule that asserts a field requirement (best errors,
    /// slowest).
    Eager,
    /// After each top-level definition (default).
    PerDef,
    /// Once, at the end of the program.
    Final,
}

/// Which unifier backend computes most general unifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unifier {
    /// Idempotent substitutions composed eagerly (the paper's
    /// presentation; default).
    Substitution,
    /// Lazy binding maps resolved on demand, exported as a substitution
    /// at the end (an ablation for the Section 6 substitution-cost
    /// observation).
    UnionFind,
}

/// Options controlling the flow inference.
#[derive(Clone, Debug)]
pub struct Options {
    /// Stale-flag projection strategy.
    pub compaction: Compaction,
    /// Satisfiability checking strategy.
    pub check: CheckPolicy,
    /// Iteration bound for the Milner–Mycroft fixpoint.
    pub max_letrec_iters: usize,
    /// Whether to track field flows at all. With `false` the engine
    /// reproduces the paper's "w/o fields" configuration used as the
    /// baseline column of Fig. 9: the same traversal and unifications, but
    /// no Boolean function is built.
    pub track_fields: bool,
    /// Whether the environment meet short-circuits when both sides carry
    /// the same version tag (the Section 6 optimisation). Disabled only
    /// by the `gci_versioning` ablation benchmark.
    pub env_versions: bool,
    /// Unifier backend.
    pub unifier: Unifier,
    /// CDCL step budget per SAT check (`None` = unlimited). With the
    /// default per-definition [`CheckPolicy`] this bounds the search a
    /// single definition may spend: only the general-CNF class — the
    /// one symmetric concatenation `@@` and `when` generate — can blow
    /// up, and exceeding the budget surfaces as
    /// [`crate::TypeErrorKind::SatGaveUp`] instead of a hang.
    pub sat_budget: Option<u64>,
    /// Cooperative cancellation flag shared with a batch scheduler;
    /// raising it stops the next CDCL solve.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            compaction: Compaction::Aggressive,
            check: CheckPolicy::PerDef,
            max_letrec_iters: 50,
            track_fields: true,
            env_versions: true,
            unifier: Unifier::Substitution,
            sat_budget: None,
            cancel: None,
        }
    }
}

impl Options {
    /// A stable digest of every option that can change schemes or
    /// verdicts. This is the shared prefix of every content-addressed
    /// inference key — the batch cache and the serve daemon's query
    /// memos both start from it, so results computed under one
    /// configuration are never replayed under another. The cancellation
    /// flag is excluded (it changes *whether* a result is produced,
    /// never which).
    pub fn fingerprint(&self) -> String {
        format!(
            "compaction={:?};check={:?};letrec={};track={};envv={};unifier={:?};budget={:?}",
            self.compaction,
            self.check,
            self.max_letrec_iters,
            self.track_fields,
            self.env_versions,
            self.unifier,
            self.sat_budget,
        )
    }
}

/// Wall-clock time spent per inference phase, mirroring the paper's
/// Section 6 observation that "the 2-SAT solver is not the biggest
/// bottleneck but applying substitutions is equally expensive".
///
/// Phase durations are *exclusive* (self-time): the engine attributes
/// each instant to the innermost open phase, so a stale-flag projection
/// performed in the middle of `applyS` counts towards [`Stats::project`]
/// only, never both buckets. Consequently the four phase durations sum
/// to at most [`Stats::wall`].
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Time in unification (`mgu`).
    pub unify: Duration,
    /// Time applying substitutions with flow transport (`applyS`).
    pub applys: Duration,
    /// Time in SAT solving.
    pub sat: Duration,
    /// Time projecting stale flags (resolution).
    pub project: Duration,
    /// Total wall-clock time of the run the phases were carved out of.
    pub wall: Duration,
    /// Bytes allocated while unification was the innermost open phase
    /// (0 unless memory accounting is on; exclusive, like the durations).
    pub unify_alloc_bytes: u64,
    /// Bytes allocated during substitution application.
    pub applys_alloc_bytes: u64,
    /// Bytes allocated during SAT solving.
    pub sat_alloc_bytes: u64,
    /// Bytes allocated during stale-flag projection.
    pub project_alloc_bytes: u64,
    /// Number of `mgu` calls.
    pub unify_calls: usize,
    /// Number of `applyS` calls.
    pub applys_calls: usize,
    /// Number of SAT checks.
    pub sat_calls: usize,
    /// Peak clause count of β.
    pub peak_clauses: usize,
    /// Number of flags eliminated by resolution (stale-flag projection).
    pub project_resolutions: usize,
    /// Flag eliminations that took the binary-implication fast path
    /// (all clauses touching the pivot were binary or unit).
    pub project_fastpath: usize,
    /// Flag eliminations that fell back to general Davis–Putnam
    /// resolution (wide clauses from symmetric concat / `when`).
    pub project_fallback: usize,
    /// Non-tautological resolvents generated by projection.
    pub project_resolvents: usize,
    /// Clauses discarded by subsumption during projection.
    pub project_subsumed: usize,
    /// Environment meets short-circuited by matching version tags
    /// (the Section 6 optimisation taking effect).
    pub env_meet_hits: usize,
    /// Environment meets that fell back to point-wise equations.
    pub env_meet_misses: usize,
    /// SAT checks per clause class of β at check time, indexed by
    /// `SatClass as usize` (see [`SAT_CLASSES`]).
    pub sat_checks_by_class: [usize; SAT_CLASS_COUNT],
}

impl Stats {
    /// Records one SAT check of a β in class `class`.
    pub fn note_sat_class(&mut self, class: SatClass) {
        self.sat_checks_by_class[class as usize] += 1;
    }

    /// Number of SAT checks that ran on a β of class `class`.
    pub fn sat_checks_for(&self, class: SatClass) -> usize {
        self.sat_checks_by_class[class as usize]
    }

    /// Folds one projection call's counters into the totals.
    pub fn note_projection(&mut self, p: &ProjectStats) {
        self.project_resolutions += p.eliminated;
        self.project_fastpath += p.fastpath;
        self.project_fallback += p.fallback;
        self.project_resolvents += p.resolvents;
        self.project_subsumed += p.subsumed;
    }

    /// The four paper phases as `(name, nanoseconds)` pairs, in the
    /// pipeline's canonical order. This is the per-job phase breakdown
    /// the batch profiler attaches to each scheduled group, so a
    /// parallel profile can say not just *which worker ran which job
    /// when* but where inside inference that job's time went.
    pub fn phase_durations(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("unify", self.unify.as_nanos() as u64),
            ("applys", self.applys.as_nanos() as u64),
            ("project", self.project.as_nanos() as u64),
            ("sat", self.sat.as_nanos() as u64),
        ]
    }

    /// The four paper phases as `(name, allocated bytes)` pairs, in the
    /// same canonical order as [`Stats::phase_durations`]. All zeros
    /// unless memory accounting was on for the run.
    pub fn phase_alloc_bytes(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("unify", self.unify_alloc_bytes),
            ("applys", self.applys_alloc_bytes),
            ("project", self.project_alloc_bytes),
            ("sat", self.sat_alloc_bytes),
        ]
    }

    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.unify += other.unify;
        self.applys += other.applys;
        self.sat += other.sat;
        self.project += other.project;
        self.wall += other.wall;
        self.unify_alloc_bytes += other.unify_alloc_bytes;
        self.applys_alloc_bytes += other.applys_alloc_bytes;
        self.sat_alloc_bytes += other.sat_alloc_bytes;
        self.project_alloc_bytes += other.project_alloc_bytes;
        self.unify_calls += other.unify_calls;
        self.applys_calls += other.applys_calls;
        self.sat_calls += other.sat_calls;
        self.peak_clauses = self.peak_clauses.max(other.peak_clauses);
        self.project_resolutions += other.project_resolutions;
        self.project_fastpath += other.project_fastpath;
        self.project_fallback += other.project_fallback;
        self.project_resolvents += other.project_resolvents;
        self.project_subsumed += other.project_subsumed;
        self.env_meet_hits += other.env_meet_hits;
        self.env_meet_misses += other.env_meet_misses;
        for (mine, theirs) in self
            .sat_checks_by_class
            .iter_mut()
            .zip(other.sat_checks_by_class.iter())
        {
            *mine += theirs;
        }
    }
}
