//! Inference configuration and phase statistics.

use std::time::Duration;

/// When to project stale flags out of the Boolean function β.
///
/// Section 6 of the paper notes that stale flags must be removed for the
/// correctness of expansion ("is applied aggressively"); the safe default
/// projects at the end of every rule that drops structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compaction {
    /// Project at the end of every structural rule (safe default).
    Aggressive,
    /// Project only after each top-level definition. Faster, but an
    /// expansion may alias copies through a stale flag (the Section 6
    /// bug); exposed for the ablation benchmark.
    PerDef,
}

/// When to run the SAT check on β.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckPolicy {
    /// After every rule that asserts a field requirement (best errors,
    /// slowest).
    Eager,
    /// After each top-level definition (default).
    PerDef,
    /// Once, at the end of the program.
    Final,
}

/// Which unifier backend computes most general unifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unifier {
    /// Idempotent substitutions composed eagerly (the paper's
    /// presentation; default).
    Substitution,
    /// Lazy binding maps resolved on demand, exported as a substitution
    /// at the end (an ablation for the Section 6 substitution-cost
    /// observation).
    UnionFind,
}

/// Options controlling the flow inference.
#[derive(Clone, Debug)]
pub struct Options {
    /// Stale-flag projection strategy.
    pub compaction: Compaction,
    /// Satisfiability checking strategy.
    pub check: CheckPolicy,
    /// Iteration bound for the Milner–Mycroft fixpoint.
    pub max_letrec_iters: usize,
    /// Whether to track field flows at all. With `false` the engine
    /// reproduces the paper's "w/o fields" configuration used as the
    /// baseline column of Fig. 9: the same traversal and unifications, but
    /// no Boolean function is built.
    pub track_fields: bool,
    /// Whether the environment meet short-circuits when both sides carry
    /// the same version tag (the Section 6 optimisation). Disabled only
    /// by the `gci_versioning` ablation benchmark.
    pub env_versions: bool,
    /// Unifier backend.
    pub unifier: Unifier,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            compaction: Compaction::Aggressive,
            check: CheckPolicy::PerDef,
            max_letrec_iters: 50,
            track_fields: true,
            env_versions: true,
            unifier: Unifier::Substitution,
        }
    }
}

/// Wall-clock time spent per inference phase, mirroring the paper's
/// Section 6 observation that "the 2-SAT solver is not the biggest
/// bottleneck but applying substitutions is equally expensive".
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Time in unification (`mgu`).
    pub unify: Duration,
    /// Time applying substitutions with flow transport (`applyS`).
    pub applys: Duration,
    /// Time in SAT solving.
    pub sat: Duration,
    /// Time projecting stale flags (resolution).
    pub project: Duration,
    /// Number of `mgu` calls.
    pub unify_calls: usize,
    /// Number of `applyS` calls.
    pub applys_calls: usize,
    /// Number of SAT checks.
    pub sat_calls: usize,
    /// Peak clause count of β.
    pub peak_clauses: usize,
}

impl Stats {
    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.unify += other.unify;
        self.applys += other.applys;
        self.sat += other.sat;
        self.project += other.project;
        self.unify_calls += other.unify_calls;
        self.applys_calls += other.applys_calls;
        self.sat_calls += other.sat_calls;
        self.peak_clauses = self.peak_clauses.max(other.peak_clauses);
    }
}
