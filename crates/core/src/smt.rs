//! Conditional unification constraints: SAT modulo a theory of
//! (syntactic) unification.
//!
//! Section 5 of the paper shows that more expressive record type systems
//! — Pottier-style "a field only needs a consistent type if it is
//! accessed", or `when`-conditionals whose *type terms* differ per branch
//! (Fig. 8, second rule) — give rise to constraints of the form
//! `t1 =β t2`: the types must unify whenever the Boolean function β
//! holds. The paper notes that no off-the-shelf SMT solver has a theory
//! of unification constraints and leaves an implementation to future
//! work; this module provides one, built as a DPLL(T)-style loop around
//! the crate's CDCL solver and the `rowpoly-types` unifier:
//!
//! 1. ask the SAT solver for a model of β;
//! 2. activate every conditional equation whose guard holds in the model
//!    and unify all active equations simultaneously;
//! 3. on unification failure, add a *blocking clause* (the negated guard
//!    assignment) and repeat.
//!
//! The loop terminates because each blocking clause removes at least one
//! assignment of the finitely many guard flags.

use rowpoly_boolfun::{sat, Clause, Cnf, Lit, SatResult};
use rowpoly_obs as obs;
use rowpoly_types::{mgu, Subst, Ty, VarAlloc};

/// A conditional unification constraint `left =guard right`: the two
/// types must unify in any model where every guard literal is true.
#[derive(Clone, Debug)]
pub struct CondEq {
    /// Conjunction of literals guarding the equation.
    pub guard: Vec<Lit>,
    /// Left-hand type (a skeleton).
    pub left: Ty,
    /// Right-hand type (a skeleton).
    pub right: Ty,
}

impl CondEq {
    /// An unconditional equation.
    pub fn always(left: Ty, right: Ty) -> CondEq {
        CondEq {
            guard: Vec::new(),
            left,
            right,
        }
    }

    /// An equation guarded by a single literal.
    pub fn when(guard: Lit, left: Ty, right: Ty) -> CondEq {
        CondEq {
            guard: vec![guard],
            left,
            right,
        }
    }

    fn active_in(&self, model: &sat::Model) -> bool {
        self.guard.iter().all(|l| {
            // Guard flags not mentioned by β default to false.
            let v = model.get(&l.flag()).copied().unwrap_or(false);
            v != l.is_neg()
        })
    }
}

/// Outcome of the conditional-unification solver.
#[derive(Clone, Debug)]
pub enum SmtOutcome {
    /// A model of β under which all active equations unify; the
    /// substitution witnesses the unification.
    Sat {
        /// The satisfying assignment found.
        model: sat::Model,
        /// The unifier of the active equations.
        unifier: Subst,
        /// Number of SAT-solver/theory iterations taken.
        iterations: usize,
    },
    /// No model of β makes the active equations unifiable.
    Unsat {
        /// Number of iterations before exhaustion.
        iterations: usize,
    },
}

impl SmtOutcome {
    /// Whether a consistent instantiation exists.
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtOutcome::Sat { .. })
    }
}

/// Decides whether some model of `beta` makes all guarded equations
/// unifiable (see the module documentation for the algorithm).
pub fn solve_conditional(beta: &Cnf, eqs: &[CondEq], vars: &mut VarAlloc) -> SmtOutcome {
    let _span = obs::span("smt.solve");
    let mut working = beta.clone();
    // Guard flags must be decided by the model even if β does not mention
    // them; mention them with tautologies... instead we default unmentioned
    // guards to false in `active_in` and enumerate flips via blocking
    // clauses over the guard literals that *were* true.
    //
    // The loop only ever *appends* blocking clauses to `working`, so an
    // incremental session rides its fast sync path: each iteration
    // re-solves with the previous iteration's learned clauses, activity,
    // and watch state warm instead of from scratch.
    let mut session = rowpoly_boolfun::Session::new();
    let budget = rowpoly_boolfun::SatBudget::unlimited();
    let mut iterations = 0;
    let mut theory_checks: u64 = 0;
    let mut blocking_clauses: u64 = 0;
    let out = loop {
        iterations += 1;
        session.sync(&working);
        let solved = session.solve(&budget).expect("unlimited budget");
        let model = match solved {
            SatResult::Sat(m) => m,
            SatResult::Unsat(_) => break SmtOutcome::Unsat { iterations },
        };
        let active: Vec<&CondEq> = eqs.iter().filter(|eq| eq.active_in(&model)).collect();
        let pairs: Vec<(Ty, Ty)> = active
            .iter()
            .map(|eq| (eq.left.clone(), eq.right.clone()))
            .collect();
        theory_checks += 1;
        match mgu(pairs, vars) {
            Ok(unifier) => {
                break SmtOutcome::Sat {
                    model,
                    unifier,
                    iterations,
                }
            }
            Err(_) => {
                // Block this activation pattern: at least one active guard
                // literal must flip.
                let mut lits: Vec<Lit> = active
                    .iter()
                    .flat_map(|eq| eq.guard.iter().map(|l| l.negate()))
                    .collect();
                lits.sort_unstable();
                lits.dedup();
                if lits.is_empty() {
                    // Unconditional equations failed: no model can help.
                    break SmtOutcome::Unsat { iterations };
                }
                match Clause::new(lits) {
                    Some(c) => {
                        blocking_clauses += 1;
                        working.add_clause(c);
                    }
                    None => break SmtOutcome::Unsat { iterations },
                }
            }
        }
    };
    if obs::enabled() {
        obs::counter_add("smt.solves", 1);
        obs::counter_add("smt.iterations", iterations as u64);
        obs::counter_add("smt.theory_checks", theory_checks);
        obs::counter_add("smt.blocking_clauses", blocking_clauses);
        // Each blocking clause is one backtrack of the DPLL(T) loop, so
        // the count doubles as this solve's backtracking depth.
        obs::counter_max("smt.backtrack.depth", blocking_clauses);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_boolfun::{Flag, FlagAlloc};

    /// The Section 1.1 example: `{} @ (if c then {f=42} else {f="42"})`.
    /// Pottier's simplified rule `D'r` rejects it because the field type
    /// must be consistent up front; with conditional constraints the
    /// program is accepted (the field is never accessed, so either guard
    /// assignment works).
    #[test]
    fn pottier_incompleteness_repaired() {
        let mut flags = FlagAlloc::new();
        let mut vars = VarAlloc::new();
        let g = flags.fresh(); // "the then-branch value reached the field"
        let d = Ty::svar(vars.fresh()); // the field's type if accessed
        let eqs = vec![
            CondEq::when(Lit::pos(g), d.clone(), Ty::Int),
            CondEq::when(Lit::neg(g), d.clone(), Ty::Str),
        ];
        // β unconstrained: no access forces a particular guard.
        let out = solve_conditional(&Cnf::top(), &eqs, &mut vars);
        assert!(out.is_sat(), "no field access ⇒ either branch type is fine");

        // Eager unification (the paper's core system) rejects the same
        // program: Int does not unify with Str.
        assert!(mgu(vec![(Ty::Int, Ty::Str)], &mut vars).is_err());
    }

    #[test]
    fn access_forcing_both_branches_is_rejected() {
        let mut flags = FlagAlloc::new();
        let mut vars = VarAlloc::new();
        let g = flags.fresh();
        let d = Ty::svar(vars.fresh());
        let eqs = vec![
            CondEq::when(Lit::pos(g), d.clone(), Ty::Int),
            // Accessing the field demands Int regardless of the branch.
            CondEq::always(d.clone(), Ty::Str),
        ];
        // β forces the then-branch guard.
        let mut beta = Cnf::top();
        beta.assert_lit(Lit::pos(g));
        let out = solve_conditional(&beta, &eqs, &mut vars);
        assert!(!out.is_sat());
    }

    #[test]
    fn solver_explores_guard_assignments() {
        // d = Int under g, d = Str under h; g ∨ h required, both failing
        // together. Model search must find g ∧ ¬h or ¬g ∧ h.
        let mut flags = FlagAlloc::new();
        let mut vars = VarAlloc::new();
        let g = flags.fresh();
        let h = flags.fresh();
        let d = Ty::svar(vars.fresh());
        let mut beta = Cnf::top();
        beta.add_lits(vec![Lit::pos(g), Lit::pos(h)]);
        let eqs = vec![
            CondEq::when(Lit::pos(g), d.clone(), Ty::Int),
            CondEq::when(Lit::pos(h), d.clone(), Ty::Str),
        ];
        match solve_conditional(&beta, &eqs, &mut vars) {
            SmtOutcome::Sat { model, .. } => {
                let gv = model.get(&g).copied().unwrap_or(false);
                let hv = model.get(&h).copied().unwrap_or(false);
                assert!(
                    gv ^ hv,
                    "exactly one branch may be active, got g={gv} h={hv}"
                );
            }
            SmtOutcome::Unsat { .. } => panic!("a consistent assignment exists"),
        }
    }

    #[test]
    fn unconditional_conflict_is_unsat_immediately() {
        let mut vars = VarAlloc::new();
        let eqs = vec![CondEq::always(Ty::Int, Ty::Str)];
        let out = solve_conditional(&Cnf::top(), &eqs, &mut vars);
        assert!(!out.is_sat());
        if let SmtOutcome::Unsat { iterations } = out {
            assert_eq!(iterations, 1);
        }
    }

    #[test]
    fn guards_default_to_false_when_unmentioned() {
        let mut vars = VarAlloc::new();
        // Guarded by a flag β never mentions: inactive by default, so a
        // contradictory equation under it is harmless.
        let eqs = vec![CondEq::when(Lit::pos(Flag(99)), Ty::Int, Ty::Str)];
        assert!(solve_conditional(&Cnf::top(), &eqs, &mut vars).is_sat());
    }

    #[test]
    fn transitive_unification_through_shared_variable() {
        let mut flags = FlagAlloc::new();
        let mut vars = VarAlloc::new();
        let g = flags.fresh();
        let d = Ty::svar(vars.fresh());
        let e = Ty::svar(vars.fresh());
        let eqs = vec![
            CondEq::when(Lit::pos(g), d.clone(), e.clone()),
            CondEq::when(Lit::pos(g), d.clone(), Ty::Int),
            CondEq::when(Lit::pos(g), e.clone(), Ty::Str),
        ];
        let mut beta = Cnf::top();
        beta.assert_lit(Lit::pos(g));
        assert!(!solve_conditional(&beta, &eqs, &mut vars).is_sat());
    }
}
