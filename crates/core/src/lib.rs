//! Flow-sensitive type inference for row-polymorphic records.
//!
//! This crate is the primary contribution of the reproduction of Simon,
//! *Optimal Inference of Fields in Row-Polymorphic Records* (PLDI 2014):
//! a Milner–Mycroft type inference (polymorphic recursion via fixpoint
//! iteration) over row-polymorphic record types, paired with a Boolean
//! function β over field-existence flags. A program is rejected iff its
//! type terms fail to unify **or** β becomes unsatisfiable — the latter
//! detecting accesses to record fields on paths where the field was never
//! added.
//!
//! Entry points:
//!
//! * [`Session`] — parse + infer whole programs or expressions;
//! * [`FlowInfer`] — the rule-level engine (Fig. 3 of the paper plus the
//!   Section 5 extensions: removal, renaming, asymmetric/symmetric
//!   concatenation, `when N in x` conditionals);
//! * [`Options`] — field tracking on/off (the two columns of the paper's
//!   Fig. 9), stale-flag compaction and SAT-checking policies;
//! * [`remy`] — the flag-unification baseline of the paper's
//!   introduction (Rémy-style `Pre`/`Abs` flags), which rejects programs
//!   the flow inference accepts;
//! * [`smt`] — the conditional-unification extension (Section 5), typing
//!   branch-dependent field types via SAT modulo a unification theory.
//!
//! # Example
//!
//! ```
//! use rowpoly_core::Session;
//!
//! // The paper's motivating example: a producer adds `foo` before a
//! // consumer reads it, all conditionally; applying the function to the
//! // empty record is fine, but selecting `foo` from the result is not.
//! let ok = "
//! def f s = if c then (let s2 = @{foo = 42} s; v = #foo s2 in s2) else s
//! def use = f {}
//! ";
//! assert!(Session::default().infer_source(ok).is_ok());
//!
//! let bad = "
//! def f s = if c then (let s2 = @{foo = 42} s; v = #foo s2 in s2) else s
//! def use = #foo (f {})
//! ";
//! assert!(Session::default().infer_source(bad).is_err());
//! ```

mod config;
mod driver;
mod error;
mod flow;
mod unit;

pub mod hm;
pub mod remy;
pub mod smt;

pub use config::{CheckPolicy, Compaction, Options, Stats, Unifier, SAT_CLASSES, SAT_CLASS_COUNT};
pub use driver::{DefReport, ProgramReport, Session, SessionError};
pub use error::{FlagOrigin, ProofInfo, Provenance, TypeError, TypeErrorKind};
pub use flow::{alpha_eq_skeleton, FlowInfer, Infer};
pub use unit::{
    close_scheme, group_source, group_source_into, run_group_spec, DefJob, DefVerdict,
    EngineScratch, GroupOutcome, GroupSpec,
};
