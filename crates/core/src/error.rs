//! Type errors with source locations and field-path explanations.

use rowpoly_boolfun::{Flag, Lit};
use rowpoly_lang::{Diag, FieldName, Span, Symbol};
use rowpoly_types::UnifyError;
use std::collections::HashMap;
use std::fmt;

/// Why a flag was created — recorded by the inference rules so that an
/// unsatisfiable Boolean function can be explained as the paper's "path
/// from an empty record to a field access on which the field has not been
/// added" (Observation 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlagOrigin {
    /// The flag asserts that no field exists in an empty record `{}`.
    EmptyRecord,
    /// The flag asserts that a selected field exists (`#N`).
    FieldSelected(FieldName),
    /// The flag marks the output field of an update `@{N = e}`.
    FieldUpdated(FieldName),
    /// The flag asserts that a removed field is absent in the result.
    FieldRemoved(FieldName),
    /// Mutual-exclusion flag of a symmetric concatenation.
    SymConcat,
    /// The target of a field renaming, which must be absent in the input.
    RenameTarget(FieldName),
    /// The tested field of a `when N in x` conditional.
    WhenGuard(FieldName),
}

impl FlagOrigin {
    fn describe(&self) -> String {
        match self {
            FlagOrigin::EmptyRecord => "empty record `{}` created here".to_owned(),
            FlagOrigin::FieldSelected(n) => format!("field `{n}` selected here"),
            FlagOrigin::FieldUpdated(n) => format!("field `{n}` added here"),
            FlagOrigin::FieldRemoved(n) => format!("field `{n}` removed here"),
            FlagOrigin::SymConcat => "symmetric concatenation `@@` here".to_owned(),
            FlagOrigin::RenameTarget(n) => {
                format!("rename target `{n}` must be absent here")
            }
            FlagOrigin::WhenGuard(n) => format!("`when {n} in …` tested here"),
        }
    }
}

/// Side table mapping flags to their creating expression.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    map: HashMap<Flag, (Span, FlagOrigin)>,
}

impl Provenance {
    /// Records where a flag came from.
    pub fn record(&mut self, flag: Flag, span: Span, origin: FlagOrigin) {
        self.map.insert(flag, (span, origin));
    }

    /// Looks up a flag's origin.
    pub fn get(&self, flag: Flag) -> Option<&(Span, FlagOrigin)> {
        self.map.get(&flag)
    }

    /// Turns a solver conflict chain into human-readable notes, skipping
    /// flags without provenance (expansion copies).
    pub fn explain(&self, chain: &[Lit]) -> Vec<(Span, String)> {
        let mut notes = Vec::new();
        for l in chain {
            if let Some((span, origin)) = self.map.get(&l.flag()) {
                let note = origin.describe();
                if notes.last().map(|(_, n)| n) != Some(&note) {
                    notes.push((*span, note));
                }
            }
        }
        notes
    }
}

/// The kind of a type error.
#[derive(Clone, Debug)]
pub enum TypeErrorKind {
    /// Reference to a variable not in scope.
    Unbound(Symbol),
    /// Unification failure of type terms.
    Unify(UnifyError),
    /// The Boolean function β became unsatisfiable: some field is accessed
    /// on a path where it was never added.
    FieldMissing {
        /// The field whose access caused the conflict, when identifiable.
        field: Option<FieldName>,
    },
    /// The polymorphic-recursion fixpoint did not converge.
    RecursionDiverged(Symbol),
    /// A conditional-unification constraint set has no solution
    /// (SMT-with-unification-theory extension).
    NoConsistentInstantiation,
    /// A budgeted SAT check gave up before reaching a verdict (the
    /// step budget ran out, or the run was cancelled). Neither "well
    /// typed" nor "ill typed" — batch drivers surface it as a
    /// per-definition timeout.
    SatGaveUp {
        /// Search steps spent before stopping (0 for a cancellation).
        steps: u64,
    },
}

/// Machine-checkable evidence attached to a β-unsatisfiability verdict:
/// which clauses of β the error actually rests on, per the checked
/// resolution proof (see `rowpoly_boolfun::proof`). Populated by
/// `FlowInfer::check_sat` whenever a conflict is reported, and surfaced
/// by `rowpoly explain` / `--explain`.
#[derive(Clone, Debug)]
pub struct ProofInfo {
    /// Solver class that produced the verdict (`2sat`, `horn`, …).
    pub sat_class: &'static str,
    /// Size of β (in clauses) at the failing check.
    pub beta_clauses: usize,
    /// Unsat core as reported by the proving solver (β clause indices).
    pub core_clauses: Vec<usize>,
    /// Deletion-minimized core: every member is necessary.
    pub minimized_core_clauses: Vec<usize>,
    /// Length of the checked resolution/RUP derivation.
    pub derivation_steps: usize,
}

impl ProofInfo {
    /// One-line human summary, e.g.
    /// `minimal unsat core: 3 of 17 β clauses (2sat), 4 derivation steps`.
    pub fn summary(&self) -> String {
        format!(
            "minimal unsat core: {} of {} β clauses ({}), {} derivation steps",
            self.minimized_core_clauses.len(),
            self.beta_clauses,
            self.sat_class,
            self.derivation_steps
        )
    }
}

/// A located type error, optionally with explanation notes.
#[derive(Clone, Debug)]
pub struct TypeError {
    /// What went wrong.
    pub kind: TypeErrorKind,
    /// Where the error was detected.
    pub span: Span,
    /// Explanation steps (e.g. the path from `{}` to the failing access).
    pub notes: Vec<(Span, String)>,
    /// Proof evidence for β-unsatisfiability errors.
    pub proof: Option<Box<ProofInfo>>,
}

impl TypeError {
    /// Builds an error without notes.
    pub fn new(kind: TypeErrorKind, span: Span) -> TypeError {
        TypeError {
            kind,
            span,
            notes: Vec::new(),
            proof: None,
        }
    }

    /// The primary message, without location.
    pub fn message(&self) -> String {
        match &self.kind {
            TypeErrorKind::Unbound(x) => format!("variable `{x}` is not in scope"),
            TypeErrorKind::Unify(e) => match e {
                UnifyError::Mismatch { left, right } => format!(
                    "type mismatch: `{}` does not unify with `{}`",
                    rowpoly_types::render_ty(left, false),
                    rowpoly_types::render_ty(right, false)
                ),
                UnifyError::Occurs { .. } => "cannot construct infinite type".to_owned(),
                UnifyError::MissingField { field, .. } => {
                    format!("record has no field `{field}`")
                }
                UnifyError::RowFieldClash { field } => {
                    format!("conflicting row extensions for field `{field}`")
                }
            },
            TypeErrorKind::FieldMissing { field: Some(f) } => {
                format!("field `{f}` may not exist at this access")
            }
            TypeErrorKind::FieldMissing { field: None } => {
                "a record field is accessed on a path where it was never added".to_owned()
            }
            TypeErrorKind::RecursionDiverged(x) => {
                format!("cannot infer a type for the polymorphic recursion of `{x}`")
            }
            TypeErrorKind::NoConsistentInstantiation => {
                "no consistent typing for the conditional constraints".to_owned()
            }
            TypeErrorKind::SatGaveUp { steps: 0 } => {
                "satisfiability check was cancelled".to_owned()
            }
            TypeErrorKind::SatGaveUp { steps } => {
                format!("satisfiability check gave up after {steps} steps (raise --sat-budget)")
            }
        }
    }

    /// Whether this error is a budget/cancellation timeout rather than
    /// a genuine typing verdict.
    pub fn is_timeout(&self) -> bool {
        matches!(self.kind, TypeErrorKind::SatGaveUp { .. })
    }

    /// Converts to a renderable diagnostic.
    pub fn to_diag(&self) -> Diag {
        let mut d = Diag::error(self.span, self.message());
        for (span, note) in &self.notes {
            d = d.with_note(*span, note.clone());
        }
        d
    }

    /// [`TypeError::to_diag`] plus the proof summary note (`--explain`
    /// mode). The note is anchored at the error's own span so the human
    /// renderer keeps it.
    pub fn to_diag_explained(&self) -> Diag {
        let mut d = self.to_diag();
        if let Some(p) = &self.proof {
            d = d.with_note(self.span, p.summary());
        }
        d
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_explains_chains() {
        let mut p = Provenance::new_for_test();
        p.record(Flag(0), Span::new(0, 2), FlagOrigin::EmptyRecord);
        p.record(
            Flag(2),
            Span::new(5, 9),
            FlagOrigin::FieldSelected(Symbol::intern("foo")),
        );
        let chain = vec![Lit::pos(Flag(2)), Lit::neg(Flag(1)), Lit::neg(Flag(0))];
        let notes = p.explain(&chain);
        assert_eq!(notes.len(), 2);
        assert!(notes[0].1.contains("foo"));
        assert!(notes[1].1.contains("empty record"));
    }

    impl Provenance {
        fn new_for_test() -> Provenance {
            Provenance::default()
        }
    }

    #[test]
    fn error_messages_are_specific() {
        let e = TypeError::new(
            TypeErrorKind::FieldMissing {
                field: Some(Symbol::intern("foo")),
            },
            Span::new(0, 1),
        );
        assert!(e.message().contains("`foo`"));
        let d = e.to_diag();
        assert!(d.message.contains("foo"));
    }
}
