//! Milner–Mycroft inference over plain polytypes `P` (Fig. 2 of the
//! paper) — the "w/o fields" configuration of the evaluation.
//!
//! The paper obtains its baseline timing column by "commenting out the
//! functions that add clauses to a Boolean function"; correspondingly,
//! this module runs the same engine as [`crate::FlowInfer`] with
//! [`crate::Options::track_fields`] disabled: all types are
//! `⇓RP`-skeletons, `applyS` degenerates to plain substitution
//! application, and no SAT solving happens. What remains is exactly the
//! rule set of Fig. 2: W-style inference with polymorphic recursion via
//! the Mycroft fixpoint.

use crate::config::Options;
use crate::driver::{ProgramReport, Session, SessionError};

/// Options for the flow-free (Fig. 2) configuration.
pub fn options() -> Options {
    Options {
        track_fields: false,
        ..Options::default()
    }
}

/// A session running the Fig. 2 inference (no field tracking).
pub fn session() -> Session {
    Session::new(options())
}

/// Parses and checks a program without field tracking.
pub fn infer_source(source: &str) -> Result<ProgramReport, SessionError> {
    session().infer_source(source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty_of(src: &str) -> String {
        let report = infer_source(src).expect("checks");
        report.defs.last().expect("has defs").render(false)
    }

    #[test]
    fn identity_is_polymorphic() {
        assert_eq!(ty_of("def id x = x"), "forall a . a -> a");
    }

    #[test]
    fn let_polymorphism_allows_two_instantiations() {
        assert_eq!(
            ty_of("def use = let id = \\x . x in (\\a b . a) (id 1) (id \"s\")"),
            "Int"
        );
    }

    #[test]
    fn lambda_bound_variables_stay_monomorphic() {
        // (VAR) for λ-bound variables: proj has one type in all its uses,
        // so the two different element types clash (Section 4.4's p).
        let src = r#"def g proj xs ys = proj xs + proj ys
def use = g (\l . null l) [1] ["s"]"#;
        assert!(infer_source(src).is_err());
    }

    #[test]
    fn section_4_4_g_null_gets_equal_list_types() {
        // H[[p]] types g null as [a] → [a] → Int (not [a] → [b] → Int):
        // applying it at two different element types must fail.
        let src = r#"def g proj xs ys = proj xs + proj ys
def h = g (\l . null l)
def use = h [1] [2]"#;
        let report = infer_source(src).expect("same element types check");
        assert_eq!(report.defs[1].render(false), "forall a . [a] -> [a] -> Int");
        let _ = report;
    }

    /// Polymorphic recursion: typeable in Milner–Mycroft but not in
    /// Damas–Milner — the recursive call is at a *larger* type `[a]`.
    #[test]
    fn polymorphic_recursion_converges() {
        let src = "def depth x = if c then 0 else 1 + depth [x]";
        let report = infer_source(src).expect("Mycroft fixpoint converges");
        assert_eq!(report.defs[0].render(false), "forall a . a -> Int");
    }

    #[test]
    fn mutual_shape_via_nested_lets() {
        let src = "def main = let even n = if n == 0 then 1 else odd (n - 1);
                              odd n = if n == 0 then 0 else even (n - 1)
                          in even 10";
        // `odd` is free when checking `even` (sequential lets); the
        // driver pre-binds program-level free variables to fresh
        // monomorphic types, so this checks with `odd` as an assumed
        // external function.
        assert!(infer_source(src).is_ok());
        // With the order flipped into a single recursive function it works.
        let src2 = "def evenodd = let go parity n = if n == 0 then parity
                                                    else go (1 - parity) (n - 1)
                                 in go 1 10";
        assert_eq!(ty_of(src2), "Int");
    }

    #[test]
    fn record_skeletons_still_unify() {
        // Without flags, field *presence* is not checked...
        let src = "def use = #foo {}";
        assert!(
            infer_source(src).is_ok(),
            "w/o fields, missing fields go unnoticed"
        );
        // ...but field *types* are.
        let src2 = r#"def use = #foo (@{foo = "s"} {}) + 1"#;
        assert!(infer_source(src2).is_err());
    }

    #[test]
    fn occurs_check_rejects_self_application() {
        assert!(infer_source(r"def omega = \x . x x").is_err());
    }
}
