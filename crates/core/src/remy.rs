//! The Rémy-style baseline: record inference with `Pre`/`Abs` flags
//! unified as part of the type terms (the system sketched in the paper's
//! introduction).
//!
//! Flags here are not Boolean variables but unification atoms: a field's
//! flag is `Pre` (definitely present), `Abs` (definitely absent), or a
//! flag variable. Field selection demands `Pre`; the empty record has
//! `Abs` everywhere (including everything its row variable ever expands
//! to). Unification of the two branches of a conditional therefore
//! *equates* flags instead of relating them by implication, which is
//! exactly why the motivating example of the paper is rejected: the
//! selector inside the `then`-branch forces the field's flag to `Pre`,
//! the `else`-branch propagates that demand to the function's input, and
//! the call `f {}` clashes `Pre` with `Abs`.
//!
//! The flow inference of [`crate::FlowInfer`] accepts that program; this
//! module exists as the comparison baseline. Only the core calculus is
//! supported (no concatenation, removal, renaming, or `when`).

use std::collections::{BTreeSet, HashMap};

use rowpoly_lang::{Diag, Expr, ExprKind, FieldName, Span, Symbol};

use crate::error::{TypeError, TypeErrorKind};
use rowpoly_types::UnifyError;

/// A type variable of the baseline inference.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RVar(u32);

/// A flag variable of the baseline inference.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FVar(u32);

/// A field flag: present, absent, or not yet known.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RFlag {
    /// The field is definitely present.
    Pre,
    /// The field is definitely absent.
    Abs,
    /// Undetermined; unifies with anything.
    Var(FVar),
}

/// A type term of the baseline inference.
#[derive(Clone, PartialEq, Debug)]
pub enum RTy {
    /// Type variable.
    Var(RVar),
    /// Integers.
    Int,
    /// Strings.
    Str,
    /// Lists.
    List(Box<RTy>),
    /// Functions.
    Fun(Box<RTy>, Box<RTy>),
    /// Records: sorted fields plus a row tail.
    Record(RRow),
}

/// A record row.
#[derive(Clone, PartialEq, Debug)]
pub struct RRow {
    /// Fields sorted by name: `(name, flag, type)`.
    pub fields: Vec<(FieldName, RFlag, RTy)>,
    /// The row tail: `None` for a closed row, or a row variable with the
    /// flag that every field it expands to will carry.
    pub tail: Option<(RVar, RFlag)>,
}

impl RTy {
    fn fun(a: RTy, b: RTy) -> RTy {
        RTy::Fun(Box::new(a), Box::new(b))
    }

    fn record(mut fields: Vec<(FieldName, RFlag, RTy)>, tail: Option<(RVar, RFlag)>) -> RTy {
        fields.sort_by_key(|f| f.0);
        RTy::Record(RRow { fields, tail })
    }

    fn vars(&self, out: &mut BTreeSet<RVar>) {
        match self {
            RTy::Var(v) => {
                out.insert(*v);
            }
            RTy::Int | RTy::Str => {}
            RTy::List(t) => t.vars(out),
            RTy::Fun(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            RTy::Record(row) => {
                for (_, _, t) in &row.fields {
                    t.vars(out);
                }
                if let Some((v, _)) = row.tail {
                    out.insert(v);
                }
            }
        }
    }

    fn fvars(&self, out: &mut BTreeSet<FVar>) {
        match self {
            RTy::Var(_) | RTy::Int | RTy::Str => {}
            RTy::List(t) => t.fvars(out),
            RTy::Fun(a, b) => {
                a.fvars(out);
                b.fvars(out);
            }
            RTy::Record(row) => {
                for (_, f, t) in &row.fields {
                    if let RFlag::Var(fv) = f {
                        out.insert(*fv);
                    }
                    t.fvars(out);
                }
                if let Some((_, RFlag::Var(fv))) = row.tail {
                    out.insert(fv);
                }
            }
        }
    }
}

/// A scheme quantifying type and flag variables.
#[derive(Clone, Debug)]
pub struct RScheme {
    vars: Vec<RVar>,
    fvars: Vec<FVar>,
    ty: RTy,
}

#[derive(Clone, Debug)]
enum RBinding {
    Mono(RTy),
    Poly(RScheme),
}

/// The baseline inference engine.
#[derive(Default)]
pub struct RemyInfer {
    next_var: u32,
    next_fvar: u32,
    ty_bind: HashMap<RVar, RTy>,
    flag_bind: HashMap<FVar, RFlag>,
}

type REnv = HashMap<Symbol, RBinding>;

impl RemyInfer {
    /// Creates a fresh engine.
    pub fn new() -> RemyInfer {
        RemyInfer::default()
    }

    /// Infers the type of a closed expression (free variables are bound
    /// to fresh monomorphic types first).
    pub fn infer_expr(&mut self, e: &Expr) -> Result<RTy, TypeError> {
        let mut env = REnv::new();
        for x in e.free_vars() {
            let v = self.fresh();
            env.insert(x, RBinding::Mono(v));
        }
        let t = self.infer(&env, e)?;
        Ok(self.resolve(&t))
    }

    /// Parses and infers a whole program (sequence of `def`s), returning
    /// the resolved type of the last definition.
    pub fn infer_source(&mut self, source: &str) -> Result<RTy, SessionErrorR> {
        let program = rowpoly_lang::parse_program(source).map_err(SessionErrorR::Parse)?;
        let expr = program.to_expr();
        self.infer_expr(&expr).map_err(SessionErrorR::Type)
    }

    fn fresh(&mut self) -> RTy {
        self.next_var += 1;
        RTy::Var(RVar(self.next_var - 1))
    }

    fn fresh_rvar(&mut self) -> RVar {
        self.next_var += 1;
        RVar(self.next_var - 1)
    }

    fn fresh_flag(&mut self) -> RFlag {
        self.next_fvar += 1;
        RFlag::Var(FVar(self.next_fvar - 1))
    }

    // ----- unification ---------------------------------------------------

    fn resolve(&self, t: &RTy) -> RTy {
        match t {
            RTy::Var(v) => match self.ty_bind.get(v) {
                Some(b) => self.resolve(&b.clone()),
                None => t.clone(),
            },
            RTy::Int => RTy::Int,
            RTy::Str => RTy::Str,
            RTy::List(t) => RTy::List(Box::new(self.resolve(t))),
            RTy::Fun(a, b) => RTy::fun(self.resolve(a), self.resolve(b)),
            RTy::Record(row) => self.resolve_row(row),
        }
    }

    fn resolve_row(&self, row: &RRow) -> RTy {
        let mut fields: Vec<(FieldName, RFlag, RTy)> = row
            .fields
            .iter()
            .map(|(n, f, t)| (*n, self.resolve_flag(*f), self.resolve(t)))
            .collect();
        let mut tail = row.tail;
        // Chase row-variable bindings, splicing their fields.
        while let Some((v, tail_flag)) = tail {
            match self.ty_bind.get(&v) {
                Some(RTy::Record(inner)) => {
                    let inner = inner.clone();
                    for (n, _, t) in &inner.fields {
                        // Fields a row variable expands to inherit the
                        // tail's flag.
                        fields.push((*n, self.resolve_flag(tail_flag), self.resolve(t)));
                    }
                    tail = inner.tail.map(|(v2, _)| (v2, tail_flag));
                }
                Some(other) => panic!("row variable bound to non-record {other:?}"),
                None => break,
            }
        }
        let tail = tail.map(|(v, f)| (v, self.resolve_flag(f)));
        fields.sort_by_key(|f| f.0);
        fields.dedup_by(|a, b| a.0 == b.0);
        RTy::Record(RRow { fields, tail })
    }

    fn resolve_flag(&self, f: RFlag) -> RFlag {
        match f {
            RFlag::Var(v) => match self.flag_bind.get(&v) {
                Some(b) => self.resolve_flag(*b),
                None => f,
            },
            other => other,
        }
    }

    fn unify(&mut self, a: &RTy, b: &RTy, span: Span) -> Result<(), TypeError> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (&a, &b) {
            (RTy::Var(x), RTy::Var(y)) if x == y => Ok(()),
            (RTy::Var(x), t) | (t, RTy::Var(x)) => {
                let mut vs = BTreeSet::new();
                t.vars(&mut vs);
                if vs.contains(x) {
                    return Err(self.occurs_error(span));
                }
                self.ty_bind.insert(*x, t.clone());
                Ok(())
            }
            (RTy::Int, RTy::Int) | (RTy::Str, RTy::Str) => Ok(()),
            (RTy::List(x), RTy::List(y)) => self.unify(x, y, span),
            (RTy::Fun(a1, a2), RTy::Fun(b1, b2)) => {
                self.unify(a1, b1, span)?;
                self.unify(a2, b2, span)
            }
            (RTy::Record(r1), RTy::Record(r2)) => {
                let (r1, r2) = (r1.clone(), r2.clone());
                self.unify_rows(&r1, &r2, span)
            }
            _ => Err(self.mismatch_error(span)),
        }
    }

    fn unify_flags(&mut self, a: RFlag, b: RFlag, span: Span) -> Result<(), TypeError> {
        let a = self.resolve_flag(a);
        let b = self.resolve_flag(b);
        match (a, b) {
            (RFlag::Var(x), RFlag::Var(y)) if x == y => Ok(()),
            (RFlag::Var(x), f) | (f, RFlag::Var(x)) => {
                self.flag_bind.insert(x, f);
                Ok(())
            }
            (RFlag::Pre, RFlag::Pre) | (RFlag::Abs, RFlag::Abs) => Ok(()),
            (RFlag::Pre, RFlag::Abs) | (RFlag::Abs, RFlag::Pre) => Err(TypeError::new(
                TypeErrorKind::FieldMissing { field: None },
                span,
            )),
        }
    }

    fn unify_rows(&mut self, r1: &RRow, r2: &RRow, span: Span) -> Result<(), TypeError> {
        let (mut i, mut j) = (0, 0);
        let mut only1: Vec<(FieldName, RFlag, RTy)> = Vec::new();
        let mut only2: Vec<(FieldName, RFlag, RTy)> = Vec::new();
        while i < r1.fields.len() || j < r2.fields.len() {
            match (r1.fields.get(i).cloned(), r2.fields.get(j).cloned()) {
                (Some(f1), Some(f2)) => match f1.0.cmp(&f2.0) {
                    std::cmp::Ordering::Equal => {
                        self.unify_flags(f1.1, f2.1, span)?;
                        self.unify(&f1.2, &f2.2, span)?;
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => {
                        only1.push(f1);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        only2.push(f2);
                        j += 1;
                    }
                },
                (Some(f1), None) => {
                    only1.push(f1);
                    i += 1;
                }
                (None, Some(f2)) => {
                    only2.push(f2);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        match (r1.tail, r2.tail) {
            (Some((a, fa)), Some((b, fb))) if a == b => {
                if only1.is_empty() && only2.is_empty() {
                    self.unify_flags(fa, fb, span)
                } else {
                    Err(self.mismatch_error(span))
                }
            }
            (Some((a, fa)), Some((b, fb))) => {
                let c = self.fresh_rvar();
                // Fields a row variable expands to carry the tail's flag;
                // the missing fields come from the *other* side, so their
                // flags must unify with this side's tail flag.
                for (_, f, _) in &only2 {
                    self.unify_flags(*f, fa, span)?;
                }
                for (_, f, _) in &only1 {
                    self.unify_flags(*f, fb, span)?;
                }
                let suffix_a = RTy::record(only2.clone(), Some((c, fa)));
                let suffix_b = RTy::record(only1.clone(), Some((c, fb)));
                self.bind_row(a, suffix_a, span)?;
                self.bind_row(b, suffix_b, span)?;
                self.unify_flags(fa, fb, span)
            }
            (Some((a, fa)), None) => {
                if let Some((n, _, _)) = only1.first() {
                    return Err(TypeError::new(
                        TypeErrorKind::FieldMissing { field: Some(*n) },
                        span,
                    ));
                }
                for (_, f, _) in &only2 {
                    self.unify_flags(*f, fa, span)?;
                }
                self.bind_row(a, RTy::record(only2, None), span)
            }
            (None, Some((b, fb))) => {
                if let Some((n, _, _)) = only2.first() {
                    return Err(TypeError::new(
                        TypeErrorKind::FieldMissing { field: Some(*n) },
                        span,
                    ));
                }
                for (_, f, _) in &only1 {
                    self.unify_flags(*f, fb, span)?;
                }
                self.bind_row(b, RTy::record(only1, None), span)
            }
            (None, None) => {
                if let Some((n, _, _)) = only1.first().or(only2.first()) {
                    return Err(TypeError::new(
                        TypeErrorKind::FieldMissing { field: Some(*n) },
                        span,
                    ));
                }
                Ok(())
            }
        }
    }

    fn bind_row(&mut self, v: RVar, suffix: RTy, span: Span) -> Result<(), TypeError> {
        let mut vs = BTreeSet::new();
        suffix.vars(&mut vs);
        if vs.contains(&v) {
            return Err(self.occurs_error(span));
        }
        self.ty_bind.insert(v, suffix);
        Ok(())
    }

    fn mismatch_error(&self, span: Span) -> TypeError {
        TypeError::new(
            TypeErrorKind::Unify(UnifyError::Mismatch {
                left: rowpoly_types::Ty::Int,
                right: rowpoly_types::Ty::Str,
            }),
            span,
        )
    }

    fn occurs_error(&self, span: Span) -> TypeError {
        TypeError::new(
            TypeErrorKind::Unify(UnifyError::Occurs {
                var: rowpoly_types::Var(0),
                ty: rowpoly_types::Ty::Int,
            }),
            span,
        )
    }

    // ----- inference ------------------------------------------------------

    fn infer(&mut self, env: &REnv, e: &Expr) -> Result<RTy, TypeError> {
        match &e.kind {
            ExprKind::Var(x) => match env.get(x) {
                None => Err(TypeError::new(TypeErrorKind::Unbound(*x), e.span)),
                Some(RBinding::Mono(t)) => Ok(t.clone()),
                Some(RBinding::Poly(s)) => {
                    let s = s.clone();
                    Ok(self.instantiate(&s))
                }
            },
            ExprKind::Int(_) => Ok(RTy::Int),
            ExprKind::Str(_) => Ok(RTy::Str),
            ExprKind::List(items) => {
                let elem = self.fresh();
                for item in items {
                    let t = self.infer(env, item)?;
                    self.unify(&elem, &t, item.span)?;
                }
                Ok(RTy::List(Box::new(elem)))
            }
            ExprKind::Lam(x, body) => {
                let a = self.fresh();
                let mut inner = env.clone();
                inner.insert(*x, RBinding::Mono(a.clone()));
                let t2 = self.infer(&inner, body)?;
                Ok(RTy::fun(a, t2))
            }
            ExprKind::App(f, arg) => {
                let tf = self.infer(env, f)?;
                let ta = self.infer(env, arg)?;
                let r = self.fresh();
                self.unify(&tf, &RTy::fun(ta, r.clone()), e.span)?;
                Ok(r)
            }
            ExprKind::Let { name, bound, body } => {
                // Damas–Milner: monomorphic recursion, generalize after —
                // but only for syntactic values (ML's value restriction).
                // Generalizing the type of an application like
                // `@{foo = 42} s` would give every use a fresh flag copy
                // and dissolve the `Pre` demand that makes the paper's
                // introduction example a type error in Rémy's system.
                let a = self.fresh();
                let mut inner = env.clone();
                inner.insert(*name, RBinding::Mono(a.clone()));
                let tb = self.infer(&inner, bound)?;
                self.unify(&a, &tb, bound.span)?;
                let binding = if is_syntactic_value(bound) {
                    RBinding::Poly(self.generalize(env, &tb))
                } else {
                    RBinding::Mono(tb)
                };
                let mut inner = env.clone();
                inner.insert(*name, binding);
                self.infer(&inner, body)
            }
            ExprKind::If(c, t, f) => {
                let tc = self.infer(env, c)?;
                self.unify(&tc, &RTy::Int, c.span)?;
                let tt = self.infer(env, t)?;
                let te = self.infer(env, f)?;
                self.unify(&tt, &te, e.span)?;
                Ok(tt)
            }
            ExprKind::Empty => {
                // {} : {a.Abs} — everything the row expands to is absent.
                let a = self.fresh_rvar();
                Ok(RTy::record(vec![], Some((a, RFlag::Abs))))
            }
            ExprKind::Select(n) => {
                // #N : {N.Pre : a, b.fb} → a.
                let a = self.fresh();
                let b = self.fresh_rvar();
                let fb = self.fresh_flag();
                let rec = RTy::record(vec![(*n, RFlag::Pre, a.clone())], Some((b, fb)));
                Ok(RTy::fun(rec, a))
            }
            ExprKind::Update(n, value) => {
                // @{N = e} : {N.fN : a, b.fb} → {N.f'N : t, b.fb}.
                let tv = self.infer(env, value)?;
                let a = self.fresh();
                let b = self.fresh_rvar();
                let fb = self.fresh_flag();
                let f_in = self.fresh_flag();
                let f_out = self.fresh_flag();
                let input = RTy::record(vec![(*n, f_in, a)], Some((b, fb)));
                let output = RTy::record(vec![(*n, f_out, tv)], Some((b, fb)));
                Ok(RTy::fun(input, output))
            }
            ExprKind::BinOp(_, a, b) => {
                let ta = self.infer(env, a)?;
                self.unify(&ta, &RTy::Int, a.span)?;
                let tb = self.infer(env, b)?;
                self.unify(&tb, &RTy::Int, b.span)?;
                Ok(RTy::Int)
            }
            ExprKind::Remove(_)
            | ExprKind::Rename(_, _)
            | ExprKind::Concat(_, _)
            | ExprKind::SymConcat(_, _)
            | ExprKind::When { .. } => Err(TypeError::new(
                TypeErrorKind::Unify(UnifyError::Mismatch {
                    left: rowpoly_types::Ty::Int,
                    right: rowpoly_types::Ty::Str,
                }),
                e.span,
            )),
        }
    }

    fn generalize(&mut self, env: &REnv, t: &RTy) -> RScheme {
        let t = self.resolve(t);
        let mut env_vars = BTreeSet::new();
        let mut env_fvars = BTreeSet::new();
        for b in env.values() {
            let ty = match b {
                RBinding::Mono(t) => self.resolve(t),
                RBinding::Poly(s) => self.resolve(&s.ty),
            };
            ty.vars(&mut env_vars);
            ty.fvars(&mut env_fvars);
        }
        let mut vars = BTreeSet::new();
        let mut fvars = BTreeSet::new();
        t.vars(&mut vars);
        t.fvars(&mut fvars);
        RScheme {
            vars: vars.difference(&env_vars).copied().collect(),
            fvars: fvars.difference(&env_fvars).copied().collect(),
            ty: t,
        }
    }

    fn instantiate(&mut self, s: &RScheme) -> RTy {
        let var_map: HashMap<RVar, RVar> = s.vars.iter().map(|&v| (v, self.fresh_rvar())).collect();
        let flag_map: HashMap<FVar, RFlag> =
            s.fvars.iter().map(|&v| (v, self.fresh_flag())).collect();
        let resolved = self.resolve(&s.ty);
        rename(&resolved, &var_map, &flag_map)
    }
}

/// ML's notion of a non-expansive expression, for the value restriction.
fn is_syntactic_value(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Var(_)
        | ExprKind::Int(_)
        | ExprKind::Str(_)
        | ExprKind::Lam(_, _)
        | ExprKind::Empty
        | ExprKind::Select(_)
        | ExprKind::Remove(_)
        | ExprKind::Rename(_, _) => true,
        ExprKind::List(items) => items.iter().all(is_syntactic_value),
        ExprKind::Update(_, v) => is_syntactic_value(v),
        _ => false,
    }
}

fn rename(t: &RTy, vars: &HashMap<RVar, RVar>, flags: &HashMap<FVar, RFlag>) -> RTy {
    let rn_flag = |f: RFlag| match f {
        RFlag::Var(v) => flags.get(&v).copied().unwrap_or(f),
        other => other,
    };
    match t {
        RTy::Var(v) => RTy::Var(vars.get(v).copied().unwrap_or(*v)),
        RTy::Int => RTy::Int,
        RTy::Str => RTy::Str,
        RTy::List(t) => RTy::List(Box::new(rename(t, vars, flags))),
        RTy::Fun(a, b) => RTy::fun(rename(a, vars, flags), rename(b, vars, flags)),
        RTy::Record(row) => RTy::Record(RRow {
            fields: row
                .fields
                .iter()
                .map(|(n, f, t)| (*n, rn_flag(*f), rename(t, vars, flags)))
                .collect(),
            tail: row
                .tail
                .map(|(v, f)| (vars.get(&v).copied().unwrap_or(v), rn_flag(f))),
        }),
    }
}

/// Parse-or-type error from [`RemyInfer::infer_source`].
#[derive(Clone, Debug)]
pub enum SessionErrorR {
    /// Parsing failed.
    Parse(Diag),
    /// The baseline inference rejected the program.
    Type(TypeError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::parse_expr;

    fn infer(src: &str) -> Result<RTy, TypeError> {
        let e = parse_expr(src).expect("parses");
        RemyInfer::new().infer_expr(&e)
    }

    #[test]
    fn simple_programs_check() {
        assert!(infer("1 + 2").is_ok());
        assert!(infer(r"(\x . x) 1").is_ok());
        assert!(infer("#foo (@{foo = 1} {})").is_ok());
        assert!(infer("let id x = x in id (id 1)").is_ok());
    }

    #[test]
    fn select_on_empty_record_is_rejected() {
        assert!(infer("#foo {}").is_err());
    }

    /// The paper's introduction: Rémy's inference rejects `f {}` because
    /// unification propagates the `Pre` demand of the selector inside the
    /// conditional to the function's input.
    #[test]
    fn motivating_example_rejected_by_remy() {
        let src = r"
let f = \s . if c then (let s2 = @{foo = 42} s in
                        let v = #foo s2 in s2)
             else s
in f {}";
        assert!(infer(src).is_err(), "Rémy baseline must reject `f {{}}`");
    }

    #[test]
    fn motivating_example_without_call_checks() {
        let src = r"
let f = \s . if c then (let s2 = @{foo = 42} s in
                        let v = #foo s2 in s2)
             else s
in f";
        assert!(infer(src).is_ok());
    }

    #[test]
    fn update_then_select_across_let() {
        assert!(infer("let r = @{a = 1} {} in #a r").is_ok());
        assert!(infer("let r = @{a = 1} {} in #b r").is_err());
    }

    #[test]
    fn type_clash_on_field_contents() {
        assert!(infer("#foo (@{foo = 1} {}) + 1").is_ok());
        assert!(infer(r#"#foo (@{foo = "s"} {}) + 1"#).is_err());
    }

    #[test]
    fn extensions_are_unsupported() {
        assert!(infer("{} @ {}").is_err());
        assert!(infer("%foo {}").is_err());
    }
}
