//! The flow inference: Fig. 3 of the paper plus the Section 5 extensions.
//!
//! A judgement `ρR|β ⊢ e : t; ρ'R|β'` is realised as a method
//! `infer(&env, e) → (Ty, TyEnv)` with the Boolean function β threaded
//! through the engine state (β only ever grows by conjunction, and shrinks
//! by the equivalence-preserving projection of stale flags, so a single
//! mutable β is equivalent to the paper's functional threading).
//!
//! ## Parallel judgements and held roots
//!
//! Rules with several sub-expressions ((APP), (COND), concatenation,
//! `when`) infer each sub-expression from the *same* input environment and
//! reconcile the resulting judgements with one `mgu` over the result types
//! and the point-wise environment bindings, exactly as in the paper. While
//! a sibling judgement is suspended, its flags are not reachable from the
//! current environment, so the engine keeps a stack of *held* flag roots
//! that stale-flag projection must treat as live.
//!
//! ## `when` branches
//!
//! Fig. 8's rule types each branch under `β ∧ ff` (resp. `¬ff`). The
//! engine infers a branch against a snapshot of β and afterwards guards
//! every clause the branch added with the negated guard literal, which is
//! the clausal form of implication from the guard; this is what makes
//! `when` require a general SAT solver.

use rowpoly_boolfun::{Cnf, Flag, FlagAlloc, FlagSet, Lit, ProjectStats, SatResult};
use rowpoly_lang::{BinOp, Expr, ExprKind, FieldName, Span, Symbol};
use rowpoly_obs as obs;
use rowpoly_obs::{Phase, PhaseClock};
use rowpoly_types::{
    apply_subst_flow, flag_lits, generalize, instantiate, mgu, Binding, FieldEntry, RowTail,
    Scheme, Subst, Ty, TyEnv, Var, VarAlloc, NO_FLAG,
};

use crate::config::{CheckPolicy, Compaction, Options, Stats};
use crate::error::{FlagOrigin, Provenance, TypeError, TypeErrorKind};

/// Attribution site for bytes allocated while growing or projecting the
/// β clause set during flow transport (see `rowpoly-obs::mem`).
static BETA_MEM: obs::MemSite = obs::MemSite::new("engine.beta_clauses");

/// Result alias for inference steps.
pub type Infer<T> = Result<T, TypeError>;

/// The flow-inference engine.
///
/// One engine instance corresponds to one inference session: it owns the
/// variable and flag allocators, the global Boolean function β, flag
/// provenance for error reporting, and phase statistics.
pub struct FlowInfer {
    /// Type-variable allocator.
    pub vars: VarAlloc,
    /// Flag allocator.
    pub flags: FlagAlloc,
    /// The Boolean function β describing field existence.
    pub beta: Cnf,
    /// Where each rule-created flag came from.
    pub prov: Provenance,
    /// Phase call counts and structural metrics; the four phase
    /// *durations* inside are dead weight here — [`Self::stats`] fills
    /// them in from `clock`.
    counts: Stats,
    /// Exclusive-time phase clock: each instant is charged to the
    /// innermost open phase, so nested work (a projection inside
    /// `applyS`) lands in exactly one bucket.
    clock: PhaseClock,
    opts: Options,
    /// Flags of suspended sibling judgements (kept live by projection).
    held: Vec<Vec<Flag>>,
    /// Flags that have been dropped from some structure and await
    /// projection once no live structure mentions them.
    pending_dead: FlagSet,
    /// The hardest satisfiability class β has reached so far (projection
    /// can simplify formulas back down, so this is sampled before each
    /// projection and each SAT check).
    pub worst_class: rowpoly_boolfun::SatClass,
    /// Incremental SAT session: solver state (CDCL learned clauses and
    /// activity, the 2-SAT SCC order, Horn watch lists) persists across
    /// the [`Self::check_sat`] calls of a definition group, reconciled
    /// with β by [`rowpoly_boolfun::Session::sync`]. Callers may swap in
    /// a session that outlives the engine (per-worker scratch, serve's
    /// per-document sessions).
    pub sat_session: rowpoly_boolfun::Session,
}

impl FlowInfer {
    /// Creates an engine with the given options.
    pub fn new(opts: Options) -> FlowInfer {
        FlowInfer {
            vars: VarAlloc::new(),
            flags: FlagAlloc::new(),
            beta: Cnf::top(),
            prov: Provenance::default(),
            counts: Stats::default(),
            clock: PhaseClock::new(),
            opts,
            held: Vec::new(),
            pending_dead: FlagSet::new(),
            worst_class: rowpoly_boolfun::SatClass::Trivial,
            sat_session: rowpoly_boolfun::Session::new(),
        }
    }

    /// Samples β's current clause class into [`Self::worst_class`] and
    /// returns it.
    fn note_class(&mut self) -> rowpoly_boolfun::SatClass {
        let c = rowpoly_boolfun::classify(&self.beta);
        if c > self.worst_class {
            self.worst_class = c;
        }
        c
    }

    /// A snapshot of the phase statistics. The four phase durations are
    /// taken from the exclusive-time [`PhaseClock`], so their sum never
    /// exceeds the wall time of the run ([`Stats::wall`] is the caller's
    /// to fill — the engine cannot know the session's full extent).
    pub fn stats(&self) -> Stats {
        let mut s = self.counts.clone();
        s.unify = self.clock.total(Phase::Unify);
        s.applys = self.clock.total(Phase::ApplyS);
        s.project = self.clock.total(Phase::Project);
        s.sat = self.clock.total(Phase::Sat);
        s.unify_alloc_bytes = self.clock.alloc_bytes(Phase::Unify);
        s.applys_alloc_bytes = self.clock.alloc_bytes(Phase::ApplyS);
        s.project_alloc_bytes = self.clock.alloc_bytes(Phase::Project);
        s.sat_alloc_bytes = self.clock.alloc_bytes(Phase::Sat);
        s
    }

    /// Whether field flows are tracked (Fig. 9's "w. fields" column).
    pub fn tracking(&self) -> bool {
        self.opts.track_fields
    }

    /// Folds projection work done outside the engine (e.g. closing a
    /// scheme's published flow) into this engine's counters.
    pub fn note_projection(&mut self, outcome: &ProjectStats) {
        self.counts.note_projection(outcome);
    }

    /// A fresh flag, or `NO_FLAG` when flows are disabled.
    fn flag(&mut self) -> Flag {
        if self.opts.track_fields {
            self.flags.fresh()
        } else {
            NO_FLAG
        }
    }

    /// A fresh flagged type variable.
    fn fresh_var(&mut self) -> Ty {
        let v = self.vars.fresh();
        let f = self.flag();
        Ty::Var(v, f)
    }

    /// `⇑RP(⇓RP(t))` — fresh decoration (identity in skeleton mode).
    fn decorate(&mut self, t: &Ty) -> Ty {
        if self.opts.track_fields {
            t.decorate(&mut self.flags)
        } else {
            t.clone()
        }
    }

    /// Timed `mgu` wrapper mapping unification failures to located errors.
    fn mgu(&mut self, pairs: Vec<(Ty, Ty)>, span: Span) -> Infer<Subst> {
        let _span = obs::span(Phase::Unify.name());
        self.clock.enter(Phase::Unify);
        let r = match self.opts.unifier {
            crate::config::Unifier::Substitution => mgu(pairs, &mut self.vars),
            crate::config::Unifier::UnionFind => rowpoly_types::mgu_uf(pairs, &mut self.vars),
        };
        self.clock.exit();
        self.counts.unify_calls += 1;
        r.map_err(|e| TypeError::new(TypeErrorKind::Unify(e), span))
    }

    /// Timed `applyS` wrapper (plain substitution in skeleton mode).
    ///
    /// Occurrence flags replaced in the κ type are exclusive to this
    /// judgement and projected immediately; flags replaced in environment
    /// bindings may still occur in sibling clones of the environment, so
    /// they join the pending-dead pool and are projected by [`Self::compact`]
    /// once no live structure mentions them.
    fn apply_flow(&mut self, subst: &Subst, kappa: &mut Ty, env: &mut TyEnv) {
        let _span = obs::span(Phase::ApplyS.name());
        self.clock.enter(Phase::ApplyS);
        if self.opts.track_fields {
            let _mem = BETA_MEM.scope();
            let replaced = apply_subst_flow(subst, kappa, env, &mut self.beta, &mut self.flags);
            for (old, news) in &replaced.copies {
                if let Some((span, origin)) = self.prov.get(*old).cloned() {
                    for &n in news {
                        self.prov.record(n, span, origin.clone());
                    }
                }
            }
            if self.opts.compaction == Compaction::Aggressive {
                // Both kinds of replaced occurrence flags join the
                // pending pool and are projected in one batch by
                // [`Self::compact`] at the end of the rule. The
                // κ-exclusive flags *could* be projected right here (no
                // sibling shares them), but each immediate call scans
                // all of β to find a literal handful of clauses;
                // batching them with the rule's other deaths costs one
                // scan instead of several.
                self.pending_dead.extend(replaced.kappa);
            } else if !replaced.kappa.is_empty() {
                // Without per-rule compaction there is no later batch to
                // join, so the κ-exclusive flags are projected at once —
                // resolution work, charged to the projection bucket even
                // though it runs inside `applyS`.
                let _span = obs::span(Phase::Project.name());
                self.clock.enter(Phase::Project);
                let mut dead = replaced.kappa;
                dead.sort_unstable();
                dead.dedup();
                let outcome = self.beta.project_out_sorted(&dead);
                self.counts.note_projection(&outcome);
                self.sat_session.reserve_from_stats(&outcome);
                self.clock.exit();
            }
            self.pending_dead.extend(replaced.env);
        } else {
            *kappa = subst.apply(kappa);
            env.apply_subst(subst);
        }
        self.clock.exit();
        self.counts.applys_calls += 1;
        let live = self.beta.len();
        self.counts.peak_clauses = self.counts.peak_clauses.max(live);
        if obs::enabled() {
            obs::hist_record("beta.clauses.live", live as u64);
            obs::counter_max("beta.clauses.peak", live as u64);
        }
    }

    /// Carries flag provenance across a positional copy: `decorate` and
    /// `instantiate` both re-collect flags in Definition 1 traversal
    /// order, so `old[i]` is the flag that `new[i]` was copied from. A
    /// copy inherits its original's source span and origin, which keeps
    /// multi-step error paths renderable after let-bound intermediates
    /// are instantiated (otherwise every copy is provenance-less and
    /// `Provenance::explain` silently drops those steps).
    fn inherit_provenance(&mut self, old: &[Flag], new: &[Flag]) {
        debug_assert_eq!(old.len(), new.len(), "positional flag copy");
        for (&o, &n) in old.iter().zip(new) {
            if self.prov.get(n).is_some() {
                continue; // a copy that has its own story keeps it
            }
            if let Some((span, origin)) = self.prov.get(o).cloned() {
                self.prov.record(n, span, origin);
            }
        }
    }

    /// Marks the flags of a dropped structure as candidates for
    /// projection. [`Self::compact`] filters out any that are still live.
    fn register_dead_ty(&mut self, t: &Ty) {
        if self.opts.track_fields {
            self.pending_dead.extend(t.flags());
        }
    }

    /// Marks the flags of `dropped`'s local bindings that differ from
    /// `kept`'s view of the same name (bindings equal on both sides share
    /// their flags with the kept environment and stay live).
    fn register_dead_env_diff(&mut self, dropped: &TyEnv, kept: &TyEnv) {
        if !self.opts.track_fields {
            return;
        }
        for (name, b) in dropped.iter_local() {
            if kept.get(name) != Some(b) {
                self.pending_dead.extend(b.ty().flags());
            }
        }
    }

    /// Boolean bi-implications between the flag sequences of two
    /// environments (`*ρ1+X ⇔ *ρ2+X`), restricted to bindings that
    /// actually differ — equal bindings share their flags, so their
    /// equations are tautologies.
    fn equate_envs(&mut self, a: &TyEnv, b: &TyEnv) {
        if !self.opts.track_fields || a.same(b) {
            return;
        }
        debug_assert!(a.same_global(b), "meets stay within one definition");
        let keys: std::collections::BTreeSet<Symbol> = a
            .iter_local()
            .map(|(s, _)| s)
            .chain(b.iter_local().map(|(s, _)| s))
            .collect();
        for k in keys {
            let (Some(ba), Some(bb)) = (a.get(k), b.get(k)) else {
                unreachable!("environment domains diverged at `{k}`")
            };
            if ba != bb {
                self.beta.iff_seq(&flag_lits(ba.ty()), &flag_lits(bb.ty()));
            }
        }
    }

    /// Runs `body` with extra flag roots held live.
    fn with_held<R>(
        &mut self,
        roots: impl IntoIterator<Item = Flag>,
        body: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.held.push(roots.into_iter().collect());
        let r = body(self);
        self.held.pop();
        r
    }

    /// Runs `body` with β forked to `base`, restoring the current β
    /// afterwards and returning the fork's final β alongside the result.
    ///
    /// The paper's rules with two premises thread *separate* Boolean
    /// functions β1 and β2 (both starting from the incoming β) through the
    /// two sub-judgements and conjoin β1σ ∧ β2σ in the conclusion. This is
    /// not merely stylistic: expansion duplicates every clause mentioning
    /// a replaced occurrence flag, so if the second judgement's `applyS`
    /// ran on top of the first's output it would re-copy the first's
    /// per-column copies, manufacturing spurious cross-position
    /// implications (e.g. tying a field's existence to its record's tail).
    fn with_forked_beta<R>(&mut self, base: Cnf, body: impl FnOnce(&mut Self) -> R) -> (R, Cnf) {
        let saved = std::mem::replace(&mut self.beta, base);
        // Snapshot the pending-dead pool: a flag projected from the fork's
        // β during `body` may still occur in the saved β (or in a sibling
        // fork that merges later), so it must be pending again once the
        // forks are conjoined. Flags both allocated *and* projected inside
        // `body` are genuinely gone — they postdate the saved β — and the
        // union below correctly leaves them out.
        let pool = self.pending_dead.clone();
        let r = body(self);
        let fork = std::mem::replace(&mut self.beta, saved);
        self.pending_dead.extend(pool);
        (r, fork)
    }

    /// Conjoins a forked β back into the current one (`β1σ ∧ β2σ`).
    fn merge_beta(&mut self, fork: Cnf) {
        self.beta.and(&fork);
        self.beta.normalize();
    }

    /// Flags of a judgement's own structures: its type plus the local
    /// layer of its environment. (Global-layer flags are protected
    /// wholesale by the cached global flag set, so they never need to be
    /// held explicitly.)
    fn judgement_flags(ty: &Ty, env: &TyEnv) -> Vec<Flag> {
        let mut fs = ty.flags();
        fs.extend(env.local_flags());
        fs
    }

    /// Projects the pending-dead flags that are no longer mentioned by
    /// any live structure (the current judgement, the held sibling roots,
    /// or the frozen global layer) out of β. Called at the end of every
    /// structural rule; cost is proportional to the pending pool and the
    /// judgement's *local* size, never to the whole program.
    fn compact(&mut self, env: &TyEnv, ty: &Ty) {
        if !self.opts.track_fields
            || self.opts.compaction != Compaction::Aggressive
            || self.pending_dead.is_empty()
        {
            return;
        }
        self.note_class();
        let _span = obs::span(Phase::Project.name());
        self.clock.enter(Phase::Project);
        // The keep set lives for one membership sweep over the (small)
        // pending pool: a sorted vector beats hashing every flag in.
        let mut keep: Vec<Flag> = ty.flags();
        keep.extend(env.local_flags());
        for roots in &self.held {
            keep.extend(roots.iter().copied());
        }
        keep.sort_unstable();
        keep.dedup();
        let global = env.global_flags();
        // Unmentioned flags cost the engine nothing (they never enter the
        // clause database), so there is no need to materialise β's flag
        // set here.
        // Ascending because the pool iterates in order, so the slice is
        // ready for `project_out_sorted` as-is.
        let dead: Vec<Flag> = self
            .pending_dead
            .iter()
            .copied()
            .filter(|f| keep.binary_search(f).is_err() && !global.contains(f))
            .collect();
        if !dead.is_empty() {
            let outcome = self.beta.project_out_sorted(&dead);
            self.counts.note_projection(&outcome);
            self.sat_session.reserve_from_stats(&outcome);
            // Projected flags leave the pool: this fork's β no longer
            // mentions them, so re-filtering them at every subsequent
            // rule is pure overhead. [`Self::with_forked_beta`] restores
            // them where a sibling β could still hold their clauses.
            for f in &dead {
                self.pending_dead.remove(f);
            }
        }
        self.clock.exit();
    }

    /// Finishes a top-level definition: projects β onto the live flags,
    /// moves the clauses over the scheme's flags into the scheme's stored
    /// flow (replaced in the working β by their projection onto the
    /// remaining flags, so no information about still-live flags is
    /// lost), and clears the pending-dead pool. This keeps the working β
    /// proportional to one definition instead of the whole program — the
    /// paper's per-function flow projection.
    ///
    /// Call *before* inserting the scheme into the environment.
    pub fn finish_def(&mut self, scheme: &mut Scheme, env: &TyEnv) {
        if !self.opts.track_fields {
            return;
        }
        self.note_class();
        let _span = obs::span(Phase::Project.name());
        self.clock.enter(Phase::Project);
        let scheme_flags: FlagSet = scheme.ty.flags().into_iter().collect();
        let locals: std::collections::HashSet<Flag> = env.local_flags().into_iter().collect();
        let outcome = {
            let global = env.global_flags();
            self.beta.project_unless(|f| {
                global.contains(&f) || locals.contains(&f) || scheme_flags.contains(&f)
            })
        };
        self.counts.note_projection(&outcome);
        let (flow, rest) = self.beta.split_mentioning(&scheme_flags);
        // The working β keeps what the flow clauses say about *other*
        // (still-live) flags.
        let mut residue = flow.clone();
        let outcome = residue.project_unless(|f| !scheme_flags.contains(&f));
        self.counts.note_projection(&outcome);
        self.beta = rest;
        self.beta.and(&residue);
        self.beta.normalize();
        scheme.flow = flow;
        self.pending_dead.clear();
        self.clock.exit();
    }

    /// Projects β onto the frozen global layer — the definitive cleanup
    /// between top-level definitions (and the only projection in `PerDef`
    /// mode). The caller must have frozen the environment first.
    pub fn compact_per_def(&mut self, env: &TyEnv) {
        if !self.opts.track_fields {
            return;
        }
        let _span = obs::span(Phase::Project.name());
        self.clock.enter(Phase::Project);
        let locals: std::collections::HashSet<Flag> = env.local_flags().into_iter().collect();
        let global = env.global_flags();
        let outcome = self
            .beta
            .project_unless(|f| global.contains(&f) || locals.contains(&f));
        self.counts.note_projection(&outcome);
        self.sat_session.reserve_from_stats(&outcome);
        self.pending_dead.clear();
        self.clock.exit();
    }

    /// Satisfiability check; maps a conflict to a located, explained
    /// error.
    pub fn check_sat(&mut self, span: Span, field: Option<FieldName>) -> Infer<()> {
        if !self.opts.track_fields {
            return Ok(());
        }
        let class = self.note_class();
        let _span = obs::span(Phase::Sat.name());
        self.clock.enter(Phase::Sat);
        let budget = rowpoly_boolfun::SatBudget {
            max_steps: self.opts.sat_budget,
            cancel: self.opts.cancel.clone(),
        };
        // The session reconciles with β (O(1) when β has only grown
        // since the last check) and answers from warm solver state.
        // Only the verdict bit is used on the hot path, so the
        // diagnostics below stay independent of solve history.
        self.sat_session.sync(&self.beta);
        let verdict = self.sat_session.check(&budget);
        self.clock.exit();
        self.counts.sat_calls += 1;
        self.counts.note_sat_class(class);
        let sat = match verdict {
            Ok(sat) => sat,
            Err(stop) => {
                if obs::enabled() {
                    obs::counter_add("sat.budget_stops", 1);
                }
                return Err(TypeError::new(
                    TypeErrorKind::SatGaveUp {
                        steps: stop.steps(),
                    },
                    span,
                ));
            }
        };
        // Unsatisfiable: re-derive the conflict chain with a fresh
        // solve (the error path is cold, and already re-solves with
        // proof emission below), so the explanation does not depend on
        // what the incremental session happened to learn first.
        let result = if sat {
            SatResult::Sat(rowpoly_boolfun::sat::Model::new())
        } else {
            self.beta.solve()
        };
        match result {
            SatResult::Sat(_) => Ok(()),
            SatResult::Unsat(chain) => {
                // The error path is cold, so re-solve with proof emission:
                // the checked unsat core names the β clauses the verdict
                // rests on, and narrowing the conflict chain to the flags
                // of the deletion-minimized core keeps the diagnostic to
                // the minimal path.
                let (proof_info, chain) = self.prove_conflict(chain);
                // Identify the offending field from the conflict chain.
                let field = field.or_else(|| {
                    chain.iter().find_map(|l| match self.prov.get(l.flag()) {
                        Some((_, FlagOrigin::FieldSelected(n))) => Some(*n),
                        _ => None,
                    })
                });
                let mut err = TypeError::new(TypeErrorKind::FieldMissing { field }, span);
                err.notes = self.prov.explain(&chain);
                // Present the path in source order: for straight-line
                // record pipelines that reads as the paper's Observation 1
                // narrative (created → added → removed → accessed).
                err.notes.sort_by_key(|(span, _)| (span.start, span.end));
                err.notes.dedup();
                err.proof = proof_info;
                Err(err)
            }
        }
    }

    /// Re-solves an unsatisfiable β with proof emission, minimizes the
    /// unsat core, and filters the solver's conflict chain down to the
    /// flags the minimized core mentions (falling back to the full chain
    /// if the filter would erase it entirely — e.g. when every chain flag
    /// is an expansion copy outside the core's clauses).
    fn prove_conflict(&self, chain: Vec<Lit>) -> (Option<Box<crate::error::ProofInfo>>, Vec<Lit>) {
        let (_, proof) = rowpoly_boolfun::solve_proved(&self.beta);
        let Some(p) = proof.unsat() else {
            // A budget-free re-solve of an unsat β cannot flip SAT; this
            // arm only guards against an inconsistent solver.
            return (None, chain);
        };
        let minimized = rowpoly_boolfun::minimize_core(&self.beta, &p.core);
        let core_flags: std::collections::HashSet<Flag> = minimized
            .iter()
            .flat_map(|&i| self.beta.clauses()[i].lits().iter().map(|l| l.flag()))
            .collect();
        let filtered: Vec<Lit> = chain
            .iter()
            .copied()
            .filter(|l| core_flags.contains(&l.flag()))
            .collect();
        let mut chain = if filtered.is_empty() { chain } else { filtered };
        // The solver's chain is one refutation path and often touches
        // only the final conflict; every flag of the minimized core is
        // part of the failure by construction, so append the rest (in
        // allocation order ≈ source order) for the step-by-step notes.
        let mentioned: std::collections::HashSet<Flag> = chain.iter().map(|l| l.flag()).collect();
        let mut extra: Vec<Flag> = core_flags
            .iter()
            .copied()
            .filter(|f| !mentioned.contains(f))
            .collect();
        extra.sort_unstable();
        chain.extend(extra.into_iter().map(Lit::pos));
        let info = crate::error::ProofInfo {
            sat_class: rowpoly_boolfun::classify(&self.beta).name(),
            beta_clauses: self.beta.len(),
            core_clauses: p.core.clone(),
            minimized_core_clauses: minimized,
            derivation_steps: p.steps.len(),
        };
        (Some(Box::new(info)), chain)
    }

    fn check_eager(&mut self, span: Span, field: Option<FieldName>) -> Infer<()> {
        if self.opts.check == CheckPolicy::Eager {
            self.check_sat(span, field)
        } else {
            Ok(())
        }
    }

    /// Point-wise environment equations for a judgement meet, honouring
    /// the version-tag shortcut unless disabled for ablation.
    fn env_pairs(&mut self, a: &TyEnv, b: &TyEnv) -> Vec<(Ty, Ty)> {
        if self.opts.env_versions && a.same(b) {
            self.counts.env_meet_hits += 1;
        } else {
            self.counts.env_meet_misses += 1;
        }
        env_pairs_opt(a, b, self.opts.env_versions)
    }

    /// Infers `e` under `env`: the judgement `ρ|β ⊢ e : t; ρ'|β'`.
    pub fn infer(&mut self, env: &TyEnv, e: &Expr) -> Infer<(Ty, TyEnv)> {
        match &e.kind {
            ExprKind::Var(x) => self.rule_var(env, *x, e.span),
            ExprKind::Int(_) => Ok((Ty::Int, env.clone())),
            ExprKind::Str(_) => Ok((Ty::Str, env.clone())),
            ExprKind::Lam(x, body) => self.rule_lam(env, *x, body, e.span),
            ExprKind::App(f, a) => self.rule_app(env, f, a, e.span),
            ExprKind::Let { name, bound, body } => self.rule_let(env, *name, bound, body, e.span),
            ExprKind::If(c, t, f) => self.rule_cond(env, c, t, f, e.span),
            ExprKind::Empty => self.rule_empty(env, e.span),
            ExprKind::Select(n) => self.rule_select(env, *n, e.span),
            ExprKind::Update(n, v) => self.rule_update(env, *n, v, e.span),
            ExprKind::Remove(n) => self.rule_remove(env, *n, e.span),
            ExprKind::Rename(m, n) => self.rule_rename(env, *m, *n, e.span),
            ExprKind::Concat(a, b) => self.rule_concat(env, a, b, false, e.span),
            ExprKind::SymConcat(a, b) => self.rule_concat(env, a, b, true, e.span),
            ExprKind::When {
                field,
                subject,
                then_branch,
                else_branch,
            } => self.rule_when(env, *field, *subject, then_branch, else_branch, e.span),
            ExprKind::List(items) => self.rule_list(env, items, e.span),
            ExprKind::BinOp(op, a, b) => self.rule_binop(env, *op, a, b, e.span),
        }
    }

    /// (VAR) and (VAR-LET).
    fn rule_var(&mut self, env: &TyEnv, x: Symbol, span: Span) -> Infer<(Ty, TyEnv)> {
        let Some(binding) = env.get(x) else {
            return Err(TypeError::new(TypeErrorKind::Unbound(x), span));
        };
        match binding.clone() {
            Binding::Mono(t) => {
                // tx = ⇑RP(⇓RP(ρ(x))) with *tx+ ⇒ *ρ(x)+.
                let tx = self.decorate(&t);
                if self.opts.track_fields {
                    self.beta.imply_seq(&flag_lits(&tx), &flag_lits(&t));
                    self.inherit_provenance(&t.flags(), &tx.flags());
                }
                Ok((tx, env.clone()))
            }
            Binding::Poly(scheme) => {
                let t = if self.opts.track_fields {
                    let old = scheme.ty.flags();
                    let inst =
                        instantiate(&scheme, &mut self.vars, &mut self.flags, &mut self.beta);
                    self.inherit_provenance(&old, &inst.flags());
                    inst
                } else {
                    // Skeleton instantiation: rename quantified variables.
                    let renaming: Vec<(Var, Var)> = scheme
                        .vars
                        .iter()
                        .map(|&v| (v, self.vars.fresh()))
                        .collect();
                    Subst::renaming(renaming).apply(&scheme.ty)
                };
                Ok((t, env.clone()))
            }
        }
    }

    /// (LAM).
    fn rule_lam(&mut self, env: &TyEnv, x: Symbol, body: &Expr, _span: Span) -> Infer<(Ty, TyEnv)> {
        let a = self.fresh_var();
        let mut inner = env.clone();
        // Save only a *local* shadowed binding: removing the binder later
        // already re-reveals a global one, and re-inserting it locally
        // would just inflate the local layer.
        let shadowed = inner.get_local(x).cloned();
        inner.insert(x, Binding::Mono(a));
        let (t2, mut env1) = self.infer(&inner, body)?;
        let tx = env1.get(x).expect("lambda binder stays bound").ty().clone();
        env1.remove(x);
        if let Some(prev) = shadowed {
            env1.insert(x, prev);
        }
        let t = Ty::fun(tx, t2);
        self.compact(&env1, &t);
        Ok((t, env1))
    }

    /// (APP).
    fn rule_app(&mut self, env: &TyEnv, f: &Expr, a: &Expr, span: Span) -> Infer<(Ty, TyEnv)> {
        // The input environment's flags stay live while e1 runs (e2 will
        // be inferred from a clone of it), and e1's judgement stays live
        // while e2 runs. β is forked: e1 evolves the incoming β into β1,
        // e2 starts again from the incoming β (yielding β2), and each
        // judgement's applyS expands its own fork before the conjunction.
        let input_roots = env.local_flags();
        let base = self.beta.clone();
        let (t1, mut env1) = self.with_held(input_roots, |s| s.infer(env, f))?;
        let (r2, beta2) = self.with_forked_beta(base, |s| {
            s.with_held(Self::judgement_flags(&t1, &env1), |s| s.infer(env, a))
        });
        let (t2, mut env2) = r2?;
        let r = self.fresh_var();
        let t2r = Ty::fun(t2, r);
        let mut pairs = vec![(t1.clone(), t2r.clone())];
        pairs.extend(self.env_pairs(&env1, &env2));
        let subst = self.mgu(pairs, span)?;
        let mut tf = t1;
        self.with_held(Self::judgement_flags(&t2r, &env2), |s| {
            s.apply_flow(&subst, &mut tf, &mut env1);
        });
        let mut tar = t2r;
        let ((), beta2s) = self.with_forked_beta(beta2, |s| {
            s.with_held(Self::judgement_flags(&tf, &env1), |s| {
                s.apply_flow(&subst, &mut tar, &mut env2);
            })
        });
        self.merge_beta(beta2s);
        self.equate_envs(&env1, &env2);
        if self.opts.track_fields {
            self.beta.iff_seq(&flag_lits(&tar), &flag_lits(&tf));
            // The iff above makes the two flag sequences interchangeable;
            // only `tar`'s result half survives this rule, so it inherits
            // the callee-side story (e.g. "removed here" on a `%n` pipe).
            self.inherit_provenance(&tf.flags(), &tar.flags());
        }
        let tr = match tar {
            Ty::Fun(ta, tr) => {
                self.register_dead_ty(&ta);
                *tr
            }
            other => unreachable!("σ unified the callee with a function, got {other:?}"),
        };
        self.register_dead_ty(&tf);
        self.register_dead_env_diff(&env2, &env1);
        // Check before compacting: projection would resolve a fresh
        // conflict down to the bare empty clause, leaving the eager
        // check nothing to trace the failure path from.
        self.check_eager(span, None)?;
        self.compact(&env1, &tr);
        Ok((tr, env1))
    }

    /// (LETREC) — with a single-pass shortcut for non-recursive bindings.
    fn rule_let(
        &mut self,
        env: &TyEnv,
        name: Symbol,
        bound: &Expr,
        body: &Expr,
        span: Span,
    ) -> Infer<(Ty, TyEnv)> {
        let shadowed = env.get_local(name).cloned();
        let (scheme, mut env_after) = self.infer_def(env, name, bound, span)?;
        env_after.insert(name, Binding::Poly(scheme));
        let (t, mut env_body) = self.infer(&env_after, body)?;
        if let Some(b) = env_body.remove(name) {
            self.register_dead_ty(b.ty());
        }
        if let Some(prev) = shadowed {
            env_body.insert(name, prev);
        }
        self.compact(&env_body, &t);
        Ok((t, env_body))
    }

    /// Infers the scheme of one (possibly recursive) binding — the shared
    /// core of (LETREC) and of top-level `def` processing. Returns the
    /// generalized scheme and the environment after inferring the bound
    /// expression (without `name` bound).
    pub fn infer_def(
        &mut self,
        env: &TyEnv,
        name: Symbol,
        bound: &Expr,
        span: Span,
    ) -> Infer<(Scheme, TyEnv)> {
        let recursive = bound.free_vars().contains(&name);
        if !recursive {
            let (tb, envb) = self.infer(env, bound)?;
            Ok((generalize(&envb, &tb), envb))
        } else {
            let mut cur_env = env.clone();
            let mut cur_ty = self.fresh_var();
            let mut converged = false;
            for _ in 0..self.opts.max_letrec_iters {
                let scheme = generalize(&cur_env, &cur_ty);
                let mut env_x = cur_env.clone();
                env_x.insert(name, Binding::Poly(scheme));
                let (t_next, mut env_next) = self.infer(&env_x, bound)?;
                let done = alpha_eq_skeleton(&t_next, &cur_ty);
                if let Some(b) = env_next.remove(name) {
                    // The iteration's scheme (sharing cur_ty's flags) dies.
                    self.register_dead_ty(b.ty());
                }
                cur_env = env_next;
                cur_ty = t_next;
                self.compact(&cur_env, &cur_ty);
                if done {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(TypeError::new(TypeErrorKind::RecursionDiverged(name), span));
            }
            Ok((generalize(&cur_env, &cur_ty), cur_env))
        }
    }

    /// (COND).
    fn rule_cond(
        &mut self,
        env: &TyEnv,
        cond: &Expr,
        then_e: &Expr,
        else_e: &Expr,
        span: Span,
    ) -> Infer<(Ty, TyEnv)> {
        let (ts, mut envc) = self.infer(env, cond)?;
        let subst = self.mgu(vec![(ts.clone(), Ty::Int)], cond.span)?;
        let mut ts = ts;
        self.apply_flow(&subst, &mut ts, &mut envc);
        // The condition's type is Int; its judgement value is dropped.
        self.register_dead_ty(&ts);
        self.compact(&envc, &Ty::Int);

        let branch_roots = envc.local_flags();
        let base = self.beta.clone();
        let (tt, mut envt) = self.with_held(branch_roots, |s| s.infer(&envc, then_e))?;
        let (re, beta2) = self.with_forked_beta(base, |s| {
            s.with_held(Self::judgement_flags(&tt, &envt), |s| {
                s.infer(&envc, else_e)
            })
        });
        let (te, mut enve) = re?;
        let mut pairs = vec![(tt.clone(), te.clone())];
        pairs.extend(self.env_pairs(&envt, &enve));
        let subst = self.mgu(pairs, span)?;
        let mut tts = tt;
        self.with_held(Self::judgement_flags(&te, &enve), |s| {
            s.apply_flow(&subst, &mut tts, &mut envt);
        });
        let mut tes = te;
        let ((), beta2s) = self.with_forked_beta(beta2, |s| {
            s.with_held(Self::judgement_flags(&tts, &envt), |s| {
                s.apply_flow(&subst, &mut tes, &mut enve);
            })
        });
        self.merge_beta(beta2s);
        let tr = self.decorate(&tts);
        self.equate_envs(&envt, &enve);
        if self.opts.track_fields {
            self.beta.imply_seq(&flag_lits(&tr), &flag_lits(&tts));
            self.beta.imply_seq(&flag_lits(&tr), &flag_lits(&tes));
        }
        self.register_dead_ty(&tts);
        self.register_dead_ty(&tes);
        self.register_dead_env_diff(&enve, &envt);
        self.compact(&envt, &tr);
        Ok((tr, envt))
    }

    /// (REC-EMPTY).
    fn rule_empty(&mut self, env: &TyEnv, span: Span) -> Infer<(Ty, TyEnv)> {
        let a = self.vars.fresh();
        let fa = self.flag();
        let t = Ty::record(vec![], RowTail::Var(a, fa));
        if self.opts.track_fields {
            self.beta.assert_lit(Lit::neg(fa));
            self.prov.record(fa, span, FlagOrigin::EmptyRecord);
        }
        Ok((t, env.clone()))
    }

    /// (REC-SELECT).
    fn rule_select(&mut self, env: &TyEnv, n: FieldName, span: Span) -> Infer<(Ty, TyEnv)> {
        let a = self.vars.fresh();
        let b = self.vars.fresh();
        let (f_n, f_a, f_a2, f_b) = (self.flag(), self.flag(), self.flag(), self.flag());
        let record = Ty::record(
            vec![FieldEntry {
                name: n,
                flag: f_n,
                ty: Ty::Var(a, f_a),
            }],
            RowTail::Var(b, f_b),
        );
        let t = Ty::fun(record, Ty::Var(a, f_a2));
        if self.opts.track_fields {
            self.beta.assert_lit(Lit::pos(f_n));
            self.beta.iff(Lit::pos(f_a), Lit::pos(f_a2));
            self.prov.record(f_n, span, FlagOrigin::FieldSelected(n));
        }
        self.check_eager(span, Some(n))?;
        Ok((t, env.clone()))
    }

    /// (REC-UPDATE).
    fn rule_update(
        &mut self,
        env: &TyEnv,
        n: FieldName,
        value: &Expr,
        span: Span,
    ) -> Infer<(Ty, TyEnv)> {
        let (tv, env1) = self.infer(env, value)?;
        let a = self.vars.fresh();
        let b = self.vars.fresh();
        let (f_n, f_n2, f_a, f_b, f_b2) = (
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
        );
        let input = Ty::record(
            vec![FieldEntry {
                name: n,
                flag: f_n,
                ty: Ty::Var(a, f_a),
            }],
            RowTail::Var(b, f_b),
        );
        let output = Ty::record(
            vec![FieldEntry {
                name: n,
                flag: f_n2,
                ty: tv,
            }],
            RowTail::Var(b, f_b2),
        );
        if self.opts.track_fields {
            // Deviation from the printed (REC-UPDATE), which leaves f'N
            // unrestricted: the paper's own derivation (T⟦@N=e⟧ in Fig. 6
            // always adds the field; Fig. 7's `model` therefore contains
            // f'N in every output) makes the backward-complete rule
            // *assert* the output flag. Conditional joins still work —
            // (COND) relates branches by implications, not equations —
            // and the assertion is what lets symmetric concatenation and
            // rename-target checks see updated fields. See DESIGN.md.
            self.beta.assert_lit(Lit::pos(f_n2));
            self.beta.iff(Lit::pos(f_b), Lit::pos(f_b2));
            self.prov.record(f_n2, span, FlagOrigin::FieldUpdated(n));
        }
        Ok((Ty::fun(input, output), env1))
    }

    /// Field removal `%N` (Section 5: expressible with two-variable Horn
    /// clauses).
    fn rule_remove(&mut self, env: &TyEnv, n: FieldName, span: Span) -> Infer<(Ty, TyEnv)> {
        let a = self.vars.fresh();
        let b = self.vars.fresh();
        let c = self.vars.fresh();
        let (f_n, f_n2, f_a, f_c, f_b, f_b2) = (
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
        );
        let input = Ty::record(
            vec![FieldEntry {
                name: n,
                flag: f_n,
                ty: Ty::Var(a, f_a),
            }],
            RowTail::Var(b, f_b),
        );
        let output = Ty::record(
            vec![FieldEntry {
                name: n,
                flag: f_n2,
                ty: Ty::Var(c, f_c),
            }],
            RowTail::Var(b, f_b2),
        );
        if self.opts.track_fields {
            self.beta.assert_lit(Lit::neg(f_n2));
            self.beta.iff(Lit::pos(f_b), Lit::pos(f_b2));
            self.prov.record(f_n2, span, FlagOrigin::FieldRemoved(n));
        }
        Ok((Ty::fun(input, output), env.clone()))
    }

    /// Field renaming `^{M -> N}` (Section 5). Requires the target field
    /// to be absent in the input.
    fn rule_rename(
        &mut self,
        env: &TyEnv,
        m: FieldName,
        n: FieldName,
        span: Span,
    ) -> Infer<(Ty, TyEnv)> {
        if m == n {
            // Degenerate self-rename: the identity on records with field m.
            let a = self.vars.fresh();
            let b = self.vars.fresh();
            let (f_m, f_m2, f_a, f_a2, f_b, f_b2) = (
                self.flag(),
                self.flag(),
                self.flag(),
                self.flag(),
                self.flag(),
                self.flag(),
            );
            let input = Ty::record(
                vec![FieldEntry {
                    name: m,
                    flag: f_m,
                    ty: Ty::Var(a, f_a),
                }],
                RowTail::Var(b, f_b),
            );
            let output = Ty::record(
                vec![FieldEntry {
                    name: m,
                    flag: f_m2,
                    ty: Ty::Var(a, f_a2),
                }],
                RowTail::Var(b, f_b2),
            );
            if self.opts.track_fields {
                self.beta.iff(Lit::pos(f_m), Lit::pos(f_m2));
                self.beta.iff(Lit::pos(f_a), Lit::pos(f_a2));
                self.beta.iff(Lit::pos(f_b), Lit::pos(f_b2));
            }
            return Ok((Ty::fun(input, output), env.clone()));
        }
        let a = self.vars.fresh();
        let b = self.vars.fresh();
        let c = self.vars.fresh();
        let d = self.vars.fresh();
        let (f_m, f_m2, f_n, f_n2, f_a, f_a2, f_c, f_d, f_b, f_b2) = (
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
            self.flag(),
        );
        let input = Ty::record(
            vec![
                FieldEntry {
                    name: m,
                    flag: f_m,
                    ty: Ty::Var(a, f_a),
                },
                FieldEntry {
                    name: n,
                    flag: f_n,
                    ty: Ty::Var(c, f_c),
                },
            ],
            RowTail::Var(b, f_b),
        );
        let output = Ty::record(
            vec![
                FieldEntry {
                    name: m,
                    flag: f_m2,
                    ty: Ty::Var(d, f_d),
                },
                FieldEntry {
                    name: n,
                    flag: f_n2,
                    ty: Ty::Var(a, f_a2),
                },
            ],
            RowTail::Var(b, f_b2),
        );
        if self.opts.track_fields {
            // Target must be absent on input; source moves to target.
            self.beta.assert_lit(Lit::neg(f_n));
            self.beta.assert_lit(Lit::neg(f_m2));
            self.beta.iff(Lit::pos(f_n2), Lit::pos(f_m));
            self.beta.iff(Lit::pos(f_a2), Lit::pos(f_a));
            self.beta.iff(Lit::pos(f_b), Lit::pos(f_b2));
            self.prov.record(f_n, span, FlagOrigin::RenameTarget(n));
            self.prov.record(f_m2, span, FlagOrigin::FieldRemoved(m));
        }
        self.check_eager(span, Some(n))?;
        Ok((Ty::fun(input, output), env.clone()))
    }

    /// Record concatenation `e1 @ e2` (asymmetric) and `e1 @@ e2`
    /// (symmetric). Section 5: the asymmetric flow `fr ↔ f1 ∨ f2` stays
    /// within (dual-)Horn clauses; the symmetric mutual exclusion
    /// `¬(f1 ∧ f2)` on the row-level flags pushes the formula outside the
    /// Horn fragment and requires a general SAT solver.
    fn rule_concat(
        &mut self,
        env: &TyEnv,
        e1: &Expr,
        e2: &Expr,
        symmetric: bool,
        span: Span,
    ) -> Infer<(Ty, TyEnv)> {
        let input_roots = env.local_flags();
        let base = self.beta.clone();
        let (t1, mut env1) = self.with_held(input_roots, |s| s.infer(env, e1))?;
        let (r2, beta2) = self.with_forked_beta(base, |s| {
            s.with_held(Self::judgement_flags(&t1, &env1), |s| s.infer(env, e2))
        });
        let (t2, mut env2) = r2?;
        // Force both operands onto a common record skeleton.
        let c = self.vars.fresh();
        let fresh_rec = Ty::record(vec![], RowTail::Var(c, self.flag()));
        let mut pairs = vec![(t1.clone(), t2.clone()), (t1.clone(), fresh_rec)];
        pairs.extend(self.env_pairs(&env1, &env2));
        let subst = self.mgu(pairs, span)?;
        let mut t1s = t1;
        self.with_held(Self::judgement_flags(&t2, &env2), |s| {
            s.apply_flow(&subst, &mut t1s, &mut env1);
        });
        let mut t2s = t2;
        let ((), beta2s) = self.with_forked_beta(beta2, |s| {
            s.with_held(Self::judgement_flags(&t1s, &env1), |s| {
                s.apply_flow(&subst, &mut t2s, &mut env2);
            })
        });
        self.merge_beta(beta2s);
        let tr = self.decorate(&t1s);
        self.equate_envs(&env1, &env2);
        if self.opts.track_fields {
            let s1 = flag_lits(&t1s);
            let s2 = flag_lits(&t2s);
            let sr = flag_lits(&tr);
            debug_assert!(s1.len() == s2.len() && s1.len() == sr.len());
            for j in 0..sr.len() {
                // fr ↔ f1 ∨ f2, position-wise with polarity.
                self.beta.add_lits(vec![sr[j].negate(), s1[j], s2[j]]);
                self.beta.imply(s1[j], sr[j]);
                self.beta.imply(s2[j], sr[j]);
            }
            if symmetric {
                // Mutual exclusion on the record's own (row-level) flags:
                // by Definition 1 these are the first `nfields (+ tail)`
                // entries of the sequence.
                let row_positions = match &t1s {
                    Ty::Record(row) => {
                        row.fields.len() + matches!(row.tail, RowTail::Var(..)) as usize
                    }
                    other => unreachable!("σ forced a record, got {other:?}"),
                };
                for j in 0..row_positions {
                    self.beta.add_lits(vec![s1[j].negate(), s2[j].negate()]);
                    self.prov.record(s1[j].flag(), span, FlagOrigin::SymConcat);
                }
            }
        }
        self.register_dead_ty(&t1s);
        self.register_dead_ty(&t2s);
        self.register_dead_env_diff(&env2, &env1);
        // Check before compacting (see `rule_app`).
        self.check_eager(span, None)?;
        self.compact(&env1, &tr);
        Ok((tr, env1))
    }

    /// `when N in x then e1 else e2` (Fig. 8, first rule).
    fn rule_when(
        &mut self,
        env: &TyEnv,
        field: FieldName,
        subject: Symbol,
        then_e: &Expr,
        else_e: &Expr,
        span: Span,
    ) -> Infer<(Ty, TyEnv)> {
        // ρ|β ⊢ x : {N.ff : tf, a.fa}; ρs|βs — the ordinary (VAR) rule
        // followed by unification with an open record containing N.
        let subject_expr = Expr::new(ExprKind::Var(subject), span);
        let (tx, mut envs) = self.infer(env, &subject_expr)?;
        let c = self.vars.fresh();
        let a = self.vars.fresh();
        let pat = Ty::record(
            vec![FieldEntry {
                name: field,
                flag: self.flag(),
                ty: Ty::Var(c, self.flag()),
            }],
            RowTail::Var(a, self.flag()),
        );
        let subst = self.mgu(vec![(tx.clone(), pat)], span)?;
        let mut txs = tx;
        self.apply_flow(&subst, &mut txs, &mut envs);
        let ff = match &txs {
            Ty::Record(row) => row.field(field).expect("pattern field").flag,
            other => unreachable!("σ forced a record, got {other:?}"),
        };
        if self.opts.track_fields {
            self.prov.record(ff, span, FlagOrigin::WhenGuard(field));
        }

        // Branches under β ∧ ff and β ∧ ¬ff respectively, their added
        // clauses guarded by the (negated) guard. `infer_guarded` restores
        // β on return, so both branches start from the same βs and their
        // constraint sets come back as guarded clause lists.
        let tx_flags = txs.flags();
        let branch_roots: Vec<Flag> = tx_flags.iter().copied().chain(envs.local_flags()).collect();
        let (tt, mut envt, then_guarded) = self.with_held(branch_roots.clone(), |s| {
            s.infer_guarded(&envs, then_e, Lit::pos(ff))
        })?;
        let (te, mut enve, else_guarded) = self.with_held(
            branch_roots
                .iter()
                .copied()
                .chain(Self::judgement_flags(&tt, &envt)),
            |s| s.infer_guarded(&envs, else_e, Lit::neg(ff)),
        )?;

        let mut pairs = vec![(tt.clone(), te.clone())];
        pairs.extend(self.env_pairs(&envt, &enve));
        let subst = self.mgu(pairs, span)?;
        // Each branch's applyS must expand over βs ∧ (its own guarded
        // clauses): the branch flows live in the guarded set, and the
        // expansion copies must see them (the copies keep their guard
        // literal, preserving the conditional reading).
        let base = self.beta.clone();
        for lits in then_guarded {
            self.beta.add_lits(lits);
        }
        let mut tts = tt;
        self.with_held(
            tx_flags
                .iter()
                .copied()
                .chain(Self::judgement_flags(&te, &enve)),
            |s| s.apply_flow(&subst, &mut tts, &mut envt),
        );
        let mut beta_else = base;
        for lits in else_guarded {
            if let Some(c) = rowpoly_boolfun::Clause::new(lits) {
                beta_else.add_clause(c);
            }
        }
        let mut tes = te;
        let ((), beta_else_s) = self.with_forked_beta(beta_else, |s| {
            s.with_held(
                tx_flags
                    .iter()
                    .copied()
                    .chain(Self::judgement_flags(&tts, &envt)),
                |s| s.apply_flow(&subst, &mut tes, &mut enve),
            )
        });
        self.merge_beta(beta_else_s);
        let tr = self.decorate(&tts);
        self.equate_envs(&envt, &enve);
        if self.opts.track_fields {
            // ff → (*tr+ ⇒ *tσt+) and ¬ff → (*tr+ ⇒ *tσe+).
            let sr = flag_lits(&tr);
            let st = flag_lits(&tts);
            let se = flag_lits(&tes);
            for j in 0..sr.len() {
                self.beta
                    .add_lits(vec![Lit::neg(ff), sr[j].negate(), st[j]]);
                self.beta
                    .add_lits(vec![Lit::pos(ff), sr[j].negate(), se[j]]);
            }
        }
        self.register_dead_ty(&txs);
        self.register_dead_ty(&tts);
        self.register_dead_ty(&tes);
        self.register_dead_env_diff(&enve, &envt);
        // Check before compacting (see `rule_app`).
        self.check_eager(span, Some(field))?;
        self.compact(&envt, &tr);
        Ok((tr, envt))
    }

    /// Infers a branch under the assumption `guard` (the premise
    /// `βs ∧ ff ⊢ e` of Fig. 8), leaving β as it was on entry. Returns the
    /// branch's judgement together with its constraint clauses, each
    /// weakened to `guard → clause`, for the caller to conjoin once both
    /// branches are done.
    fn infer_guarded(
        &mut self,
        env: &TyEnv,
        e: &Expr,
        guard: Lit,
    ) -> Infer<(Ty, TyEnv, Vec<Vec<Lit>>)> {
        if !self.opts.track_fields {
            let (t, env1) = self.infer(env, e)?;
            return Ok((t, env1, Vec::new()));
        }
        let mut saved = self.beta.clone();
        saved.normalize();
        // The guard is assumed while inferring the branch (βs ∧ ff).
        self.beta.assert_lit(guard);
        let result = self.infer(env, e)?;
        let mut branch = std::mem::replace(&mut self.beta, saved);
        branch.normalize();
        // Guard everything the branch added (including the assumption,
        // which becomes the tautology guard → guard and disappears).
        let mut added: Vec<Vec<Lit>> = Vec::new();
        {
            let old = self.beta.clauses();
            for c in branch.clauses() {
                if old.binary_search(c).is_err() {
                    let mut lits = c.lits().to_vec();
                    lits.push(guard.negate());
                    added.push(lits);
                }
            }
        }
        let (t, env1) = result;
        Ok((t, env1, added))
    }

    /// List literals: an n-ary meet of element judgements.
    fn rule_list(&mut self, env: &TyEnv, items: &[Expr], span: Span) -> Infer<(Ty, TyEnv)> {
        if items.is_empty() {
            let elem = self.fresh_var();
            return Ok((Ty::list(elem), env.clone()));
        }
        let input_roots = env.local_flags();
        let base = self.beta.clone();
        let (mut elem, mut env_acc) =
            self.with_held(input_roots.clone(), |s| s.infer(env, &items[0]))?;
        for item in &items[1..] {
            let (ri, beta2) = self.with_forked_beta(base.clone(), |s| {
                s.with_held(
                    input_roots
                        .iter()
                        .copied()
                        .chain(Self::judgement_flags(&elem, &env_acc)),
                    |s| s.infer(env, item),
                )
            });
            let (ti, env_i) = ri?;
            let mut pairs = vec![(elem.clone(), ti.clone())];
            pairs.extend(self.env_pairs(&env_acc, &env_i));
            let subst = self.mgu(pairs, span)?;
            let mut env_i = env_i;
            self.with_held(Self::judgement_flags(&ti, &env_i), |s| {
                s.apply_flow(&subst, &mut elem, &mut env_acc);
            });
            let mut tis = ti;
            let ((), beta2s) = self.with_forked_beta(beta2, |s| {
                s.with_held(Self::judgement_flags(&elem, &env_acc), |s| {
                    s.apply_flow(&subst, &mut tis, &mut env_i);
                })
            });
            self.merge_beta(beta2s);
            self.equate_envs(&env_acc, &env_i);
            if self.opts.track_fields {
                self.beta.iff_seq(&flag_lits(&elem), &flag_lits(&tis));
            }
            self.register_dead_ty(&tis);
            self.register_dead_env_diff(&env_i, &env_acc);
        }
        let t = Ty::list(elem);
        self.compact(&env_acc, &t);
        Ok((t, env_acc))
    }

    /// Built-in integer operators: both operands unify with `Int`.
    fn rule_binop(
        &mut self,
        env: &TyEnv,
        _op: BinOp,
        a: &Expr,
        b: &Expr,
        span: Span,
    ) -> Infer<(Ty, TyEnv)> {
        let input_roots = env.local_flags();
        let base = self.beta.clone();
        let (ta, mut env1) = self.with_held(input_roots, |s| s.infer(env, a))?;
        let (r2, beta2) = self.with_forked_beta(base, |s| {
            s.with_held(Self::judgement_flags(&ta, &env1), |s| s.infer(env, b))
        });
        let (tb, mut env2) = r2?;
        let mut pairs = vec![(ta.clone(), Ty::Int), (tb.clone(), Ty::Int)];
        pairs.extend(self.env_pairs(&env1, &env2));
        let subst = self.mgu(pairs, span)?;
        let mut ta = ta;
        self.with_held(Self::judgement_flags(&tb, &env2), |s| {
            s.apply_flow(&subst, &mut ta, &mut env1);
        });
        let mut tb = tb;
        let ((), beta2s) = self.with_forked_beta(beta2, |s| {
            s.with_held(Self::judgement_flags(&ta, &env1), |s| {
                s.apply_flow(&subst, &mut tb, &mut env2);
            })
        });
        self.merge_beta(beta2s);
        self.equate_envs(&env1, &env2);
        self.register_dead_ty(&ta);
        self.register_dead_ty(&tb);
        self.register_dead_env_diff(&env2, &env1);
        self.compact(&env1, &Ty::Int);
        Ok((Ty::Int, env1))
    }
}

/// Point-wise pairs of two environments with the same domain (the
/// judgement meet of the paper's (APP)/(COND) rules).
fn env_pairs_opt(a: &TyEnv, b: &TyEnv, use_versions: bool) -> Vec<(Ty, Ty)> {
    debug_assert_eq!(a.len(), b.len(), "environment domains diverged");
    if use_versions {
        if a.same(b) {
            // Version-tag shortcut (Section 6): identical environments
            // need no equations.
            return Vec::new();
        }
        // Both environments share their frozen global layer, so only the
        // local layers can differ — and of those, only bindings that are
        // not structurally identical contribute non-trivial equations.
        debug_assert!(a.same_global(b), "meets stay within one definition");
        let keys: std::collections::BTreeSet<Symbol> = a
            .iter_local()
            .map(|(s, _)| s)
            .chain(b.iter_local().map(|(s, _)| s))
            .collect();
        keys.into_iter()
            .filter_map(|k| {
                let (Some(ba), Some(bb)) = (a.get(k), b.get(k)) else {
                    unreachable!("environment domains diverged at `{k}`")
                };
                if ba == bb {
                    None
                } else {
                    Some((ba.ty().clone(), bb.ty().clone()))
                }
            })
            .collect()
    } else {
        // Ablation: the naive meet pairs every binding.
        a.iter()
            .zip(b.iter())
            .map(|((sa, ba), (sb, bb))| {
                debug_assert_eq!(sa, sb, "environment domains diverged");
                (ba.ty().clone(), bb.ty().clone())
            })
            .collect()
    }
}

/// α-equivalence of skeletons: equal up to a bijective renaming of
/// variables (the (LETREC) fixpoint test `⇓RP(tk) = ⇓RP(tk+1)`).
pub fn alpha_eq_skeleton(t1: &Ty, t2: &Ty) -> bool {
    fn go(
        t1: &Ty,
        t2: &Ty,
        fwd: &mut std::collections::HashMap<Var, Var>,
        bwd: &mut std::collections::HashMap<Var, Var>,
    ) -> bool {
        match (t1, t2) {
            (Ty::Var(a, _), Ty::Var(b, _)) => {
                let f = *fwd.entry(*a).or_insert(*b);
                let g = *bwd.entry(*b).or_insert(*a);
                f == *b && g == *a
            }
            (Ty::Int, Ty::Int) | (Ty::Str, Ty::Str) => true,
            (Ty::List(a), Ty::List(b)) => go(a, b, fwd, bwd),
            (Ty::Fun(a1, a2), Ty::Fun(b1, b2)) => go(a1, b1, fwd, bwd) && go(a2, b2, fwd, bwd),
            (Ty::Record(r1), Ty::Record(r2)) => {
                if r1.fields.len() != r2.fields.len() {
                    return false;
                }
                for (f1, f2) in r1.fields.iter().zip(&r2.fields) {
                    if f1.name != f2.name || !go(&f1.ty, &f2.ty, fwd, bwd) {
                        return false;
                    }
                }
                match (&r1.tail, &r2.tail) {
                    (RowTail::Closed, RowTail::Closed) => true,
                    (RowTail::Var(a, _), RowTail::Var(b, _)) => {
                        let f = *fwd.entry(*a).or_insert(*b);
                        let g = *bwd.entry(*b).or_insert(*a);
                        f == *b && g == *a
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }
    go(t1, t2, &mut Default::default(), &mut Default::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_eq_ignores_variable_identity() {
        let t1 = Ty::fun(Ty::svar(Var(0)), Ty::svar(Var(0)));
        let t2 = Ty::fun(Ty::svar(Var(5)), Ty::svar(Var(5)));
        let t3 = Ty::fun(Ty::svar(Var(0)), Ty::svar(Var(1)));
        assert!(alpha_eq_skeleton(&t1, &t2));
        assert!(!alpha_eq_skeleton(&t1, &t3));
        assert!(!alpha_eq_skeleton(&t3, &t1));
    }

    #[test]
    fn alpha_eq_requires_consistent_bijection() {
        // a → b vs a → a: not alpha-equivalent in either direction.
        let t1 = Ty::fun(Ty::svar(Var(0)), Ty::svar(Var(1)));
        let t2 = Ty::fun(Ty::svar(Var(2)), Ty::svar(Var(2)));
        assert!(!alpha_eq_skeleton(&t1, &t2));
        assert!(!alpha_eq_skeleton(&t2, &t1));
    }
}
