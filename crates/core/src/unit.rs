//! Per-definition inference as a reusable, `Send` unit of work.
//!
//! [`crate::Session`] threads one engine and one environment through a
//! whole program, which is the paper's presentation but pins checking
//! to a single thread. This module carves the same work into
//! [`DefJob`]s — contiguous *groups* of top-level definitions that a
//! scheduler (see the `rowpoly-batch` crate) can run concurrently:
//!
//! * Every job owns its engine, so flag/variable numbering — and hence
//!   rendered schemes — depend only on the job's inputs, never on
//!   scheduling order. This is what makes batch output deterministic.
//! * A job receives the schemes of the definitions it depends on in
//!   *closed* form ([`close_scheme`]): the stored flow is projected
//!   onto the flags of the scheme's own type, so instantiation renames
//!   every literal into the consuming engine and no clause can leak a
//!   foreign engine's flag numbering.
//! * Definitions that share an *ambient* free variable (one bound to a
//!   fresh monomorphic type rather than to another definition) are
//!   correlated through the environment in the serial driver, so they
//!   must ride in the same group; the group runs its members serially
//!   through one engine, exactly like [`crate::Session`].
//!
//! Closing a scheme is an interface projection: resolution-based flag
//! elimination preserves satisfiability and every entailment over the
//! remaining flags, so a dependent sees the full field-flow contract
//! of the definition's type. What it drops are correlations between a
//! definition's flow and engine-internal flags (list built-ins, other
//! globals) — the price of checking definitions in isolation.

use std::collections::BTreeSet;
use std::sync::Arc;

use rowpoly_boolfun::{classify, Clause, Cnf, FlagSet, ProjectStats};
use rowpoly_lang::{Program, Symbol};
use rowpoly_types::{import_scheme, Binding, Scheme, Ty};

use crate::config::{CheckPolicy, Options, Stats};
use crate::driver::{builtin_env, flush_stats_metrics, DefReport};
use crate::error::TypeError;
use crate::flow::FlowInfer;

/// The canonical *content key* of a definition group: its members
/// pretty-printed in index order, joined by newlines. Whitespace and
/// comments in the original source never change it, so it is the right
/// thing to hash for content-addressed memoization — the batch cache
/// and the serve daemon's verdict query both key on it (together with
/// [`Options::fingerprint`] and the dependencies' closed schemes).
pub fn group_source(program: &Program, def_indices: &[usize]) -> String {
    let mut out = String::new();
    group_source_into(&mut out, program, def_indices);
    out
}

/// [`group_source`] written into a caller-owned buffer, so batch
/// workers computing one content key per job can reuse one string
/// instead of allocating per group. Clears `out` first; the result is
/// byte-identical to [`group_source`].
pub fn group_source_into(out: &mut String, program: &Program, def_indices: &[usize]) {
    out.clear();
    for (k, &i) in def_indices.iter().enumerate() {
        if k > 0 {
            out.push('\n');
        }
        out.push_str(&rowpoly_lang::pretty_def(&program.defs[i]));
    }
}

/// Closes a definition's published interface: projects the scheme's
/// stored flow onto the flags of its own type. The result mentions no
/// engine-internal flags, so it can be instantiated by any engine (and
/// serialised to the batch cache). Returns the elimination engine's
/// work counters so callers can fold them into their phase stats.
pub fn close_scheme(scheme: &mut Scheme) -> ProjectStats {
    let keep: FlagSet = scheme.ty.flags().into_iter().collect();
    let outcome = scheme.flow.project_unless(|f| keep.contains(&f));
    scheme.flow.normalize();
    outcome
}

/// The outcome of one definition within a [`DefJob`] run.
#[derive(Clone, Debug)]
pub enum DefVerdict {
    /// Inference succeeded. The report's scheme is *closed* (see
    /// [`close_scheme`]), ready for dependent jobs.
    Ok(DefReport),
    /// Inference rejected the definition.
    Error(TypeError),
    /// A budgeted SAT check gave up — the step budget ran out or the
    /// run was cancelled. Not a typing verdict.
    Timeout(TypeError),
    /// Not attempted: an earlier member of the same group stopped.
    Skipped {
        /// The group member whose failure shadowed this definition.
        after: Symbol,
    },
}

impl DefVerdict {
    /// Whether the definition checked successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self, DefVerdict::Ok(_))
    }

    /// The closed scheme, when the definition checked.
    pub fn report(&self) -> Option<&DefReport> {
        match self {
            DefVerdict::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// Result of running one [`DefJob`]: a verdict per group member (in
/// group order, tagged with the member's index into `program.defs`)
/// plus the engine's phase statistics.
#[derive(Clone, Debug)]
pub struct GroupOutcome {
    /// `(index into program.defs, verdict)` per group member.
    pub items: Vec<(usize, DefVerdict)>,
    /// Phase statistics of the job's engine run.
    pub stats: Stats,
}

impl GroupOutcome {
    /// Whether every member checked successfully.
    pub fn all_ok(&self) -> bool {
        self.items.iter().all(|(_, v)| v.is_ok())
    }
}

/// A `Send` unit of inference work: a contiguous group of top-level
/// definitions checked in one fresh engine, given the closed schemes
/// of the earlier definitions they reference.
#[derive(Clone, Debug)]
pub struct DefJob {
    /// Inference options (shared across the batch; may carry a SAT
    /// budget and a cancellation flag).
    pub opts: Options,
    /// The parsed program the group belongs to.
    pub program: Arc<Program>,
    /// Indices into `program.defs`, ascending and contiguous in
    /// dependency order.
    pub def_indices: Vec<usize>,
    /// Closed schemes of out-of-group definitions the group references,
    /// sorted by name so environment construction is deterministic.
    pub deps: Vec<(Symbol, Scheme)>,
}

// A `DefJob` must stay shippable to worker threads; this fails to
// compile if any field regresses to a thread-bound type.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<DefJob>();
    assert_send::<GroupOutcome>();
};

impl DefJob {
    /// Runs the group: builds the environment (built-ins, dependency
    /// schemes, fresh monomorphic ambient variables), then infers each
    /// member serially exactly like the whole-program driver. The first
    /// error or timeout stops the group; later members are `Skipped`.
    ///
    /// Convenience wrapper over [`run_group_spec`] with one-shot
    /// scratch; schedulers running many groups per worker should call
    /// [`run_group_spec`] directly with a reused [`EngineScratch`].
    pub fn run(&self) -> GroupOutcome {
        let deps: Vec<(Symbol, &Scheme)> = self.deps.iter().map(|(n, s)| (*n, s)).collect();
        let spec = GroupSpec {
            opts: &self.opts,
            program: &self.program,
            def_indices: &self.def_indices,
            deps: &deps,
            free_names: None,
        };
        run_group_spec(&spec, &mut EngineScratch::default())
    }
}

/// Reusable per-worker engine scratch. Each group still runs in a
/// *fresh* engine (flag and variable numbering must depend only on the
/// group's inputs — that is what makes batch output deterministic),
/// but the engine's backing allocations need not be fresh: this holds
/// the recyclable pieces a worker threads through consecutive groups.
#[derive(Default)]
pub struct EngineScratch {
    /// Clause storage for the engine's β, recycled between groups.
    beta: Vec<Clause>,
    /// Incremental SAT session threaded into the engine for the group
    /// run. Serve swaps a per-document session in here so solver state
    /// survives across edits; batch workers just recycle allocations.
    pub sat: rowpoly_boolfun::Session,
}

impl std::fmt::Debug for EngineScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineScratch")
            .field("beta_clauses", &self.beta.len())
            .field("sat_slots", &self.sat.slot_len())
            .finish()
    }
}

/// A borrowed description of one group inference — the same work as
/// [`DefJob`] without requiring the scheduler to clone options,
/// definition indices, or dependency schemes into the job.
#[derive(Clone, Copy, Debug)]
pub struct GroupSpec<'a> {
    /// Inference options (may carry a SAT budget and a cancellation
    /// flag).
    pub opts: &'a Options,
    /// The parsed program the group belongs to.
    pub program: &'a Program,
    /// Indices into `program.defs`, ascending and contiguous in
    /// dependency order.
    pub def_indices: &'a [usize],
    /// Closed schemes of out-of-group definitions the group
    /// references, sorted by name.
    pub deps: &'a [(Symbol, &'a Scheme)],
    /// The union of the members' free variables, when the caller has
    /// it precomputed (the batch graph does, from dependency
    /// resolution); `None` re-walks the member bodies.
    pub free_names: Option<&'a [Symbol]>,
}

/// Runs one definition group per [`GroupSpec`]: builds the environment
/// (built-ins, dependency schemes, fresh monomorphic ambient
/// variables), then infers each member serially exactly like the
/// whole-program driver. The first error or timeout stops the group;
/// later members are `Skipped`. `scratch` carries reusable engine
/// allocations between calls; results are identical whether or not it
/// is reused.
pub fn run_group_spec(spec: &GroupSpec<'_>, scratch: &mut EngineScratch) -> GroupOutcome {
    let _span = obs_span(spec.program, spec.def_indices);
    let mut engine = FlowInfer::new(spec.opts.clone());
    engine.beta = Cnf::top_reusing(std::mem::take(&mut scratch.beta));
    // A session carried over from a different formula history reconciles
    // via `Session::sync` (prefix compare), which is exactly what gives
    // serve its cross-edit reuse. Cap stale-slot growth so a batch
    // worker cycling many unrelated groups does not accumulate an
    // unbounded retracted-slot arena.
    if scratch.sat.slot_len() > 4 * scratch.sat.active_len() + 256 {
        scratch.sat.reset();
    }
    engine.sat_session = std::mem::take(&mut scratch.sat);
    let group_names: BTreeSet<Symbol> = spec
        .def_indices
        .iter()
        .map(|&i| spec.program.defs[i].name)
        .collect();
    let needed: BTreeSet<Symbol> = match spec.free_names {
        Some(names) => names.iter().copied().collect(),
        None => {
            let mut walked = BTreeSet::new();
            for &i in spec.def_indices {
                walked.extend(spec.program.defs[i].body.free_vars());
            }
            walked
        }
    };
    let mut env = builtin_env(&mut engine, &needed);
    // Dependency schemes come from other engines; rename them into
    // this engine's variable and flag spaces before binding (see
    // `import_scheme` — foreign numbering would otherwise capture
    // local constraints at instantiation).
    for &(name, scheme) in spec.deps {
        let imported = import_scheme(scheme, &mut engine.vars, &mut engine.flags);
        env.insert(name, Binding::Poly(imported));
    }
    // Ambient free variables (neither built-in, dependency, nor a
    // group member) get fresh monomorphic types, like the serial
    // driver's treatment of open programs.
    for &x in &needed {
        if !env.contains(x) && !group_names.contains(&x) {
            let v = engine.vars.fresh();
            let f = engine.fresh_flag_public();
            env.insert(x, Binding::Mono(Ty::Var(v, f)));
        }
    }
    env.freeze();

    let mut items: Vec<(usize, DefVerdict)> = Vec::with_capacity(spec.def_indices.len());
    let mut stopped_at: Option<Symbol> = None;
    for &i in spec.def_indices {
        let def = &spec.program.defs[i];
        if let Some(after) = stopped_at {
            items.push((i, DefVerdict::Skipped { after }));
            continue;
        }
        let step = (|| -> Result<DefReport, TypeError> {
            let (mut scheme, env_after) = engine.infer_def(&env, def.name, &def.body, def.span)?;
            if spec.opts.check != CheckPolicy::Final {
                engine.check_sat(def.span, None)?;
            }
            engine.finish_def(&mut scheme, &env_after);
            env = env_after;
            // Group members see the scheme as the serial driver
            // would; the published report carries the closed copy.
            env.insert(def.name, Binding::Poly(scheme.clone()));
            env.freeze();
            let closed = close_scheme(&mut scheme);
            engine.note_projection(&closed);
            let sat_class = classify(&scheme.flow);
            Ok(DefReport {
                name: def.name,
                scheme,
                sat_class,
            })
        })();
        match step {
            Ok(report) => items.push((i, DefVerdict::Ok(report))),
            Err(e) => {
                stopped_at = Some(def.name);
                let verdict = if e.is_timeout() {
                    DefVerdict::Timeout(e)
                } else {
                    DefVerdict::Error(e)
                };
                items.push((i, verdict));
            }
        }
    }
    let stats = engine.stats();
    flush_stats_metrics(&stats);
    scratch.sat = std::mem::take(&mut engine.sat_session);
    scratch.beta = std::mem::take(&mut engine.beta).into_storage();
    GroupOutcome { items, stats }
}

fn obs_span(program: &Program, def_indices: &[usize]) -> Option<rowpoly_obs::SpanGuard> {
    if !rowpoly_obs::enabled() {
        return None;
    }
    Some(rowpoly_obs::span_lazy(|| {
        let names: Vec<String> = def_indices
            .iter()
            .map(|&i| program.defs[i].name.to_string())
            .collect();
        format!("job {}", names.join("+"))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_lang::parse_program;

    fn job(program: &str, indices: Vec<usize>, deps: Vec<(Symbol, Scheme)>) -> DefJob {
        DefJob {
            opts: Options::default(),
            program: Arc::new(parse_program(program).expect("parses")),
            def_indices: indices,
            deps,
        }
    }

    #[test]
    fn single_def_matches_session() {
        let src = "def inc x = x + 1";
        let out = job(src, vec![0], Vec::new()).run();
        assert!(out.all_ok());
        let report = out.items[0].1.report().expect("ok");
        assert_eq!(report.render(false), "Int -> Int");
    }

    #[test]
    fn dependency_scheme_feeds_the_group() {
        let src = "def inc x = x + 1\ndef use = inc 41";
        let program = Arc::new(parse_program(src).expect("parses"));
        let first = DefJob {
            opts: Options::default(),
            program: program.clone(),
            def_indices: vec![0],
            deps: Vec::new(),
        }
        .run();
        let inc = first.items[0].1.report().expect("ok").clone();
        let second = DefJob {
            opts: Options::default(),
            program,
            def_indices: vec![1],
            deps: vec![(inc.name, inc.scheme.clone())],
        }
        .run();
        let report = second.items[0].1.report().expect("ok");
        assert_eq!(report.render(false), "Int");
    }

    #[test]
    fn closed_scheme_mentions_only_its_own_flags() {
        let src = "def mk = @{foo = 1} {}\ndef use = #foo mk";
        let out = job(src, vec![0, 1], Vec::new()).run();
        assert!(out.all_ok());
        for (_, v) in &out.items {
            let scheme = &v.report().expect("ok").scheme;
            let own: FlagSet = scheme.ty.flags().into_iter().collect();
            for f in scheme.flow.flags() {
                assert!(own.contains(&f), "closed flow leaks flag {f:?}");
            }
        }
    }

    #[test]
    fn group_stops_after_first_error() {
        let src = "def bad = #foo {}\ndef fine = 1";
        let out = job(src, vec![0, 1], Vec::new()).run();
        assert!(matches!(out.items[0].1, DefVerdict::Error(_)));
        assert!(matches!(out.items[1].1, DefVerdict::Skipped { .. }));
    }
}
