//! High-level inference sessions over whole programs.

use rowpoly_boolfun::{classify, Lit, SatClass};
use rowpoly_lang::{parse_program, Diag, Expr, Program, Span, Symbol};
use rowpoly_obs as obs;
use rowpoly_types::{render_scheme, Binding, Scheme, Ty, TyEnv};
use std::time::Instant;

use crate::config::{CheckPolicy, Options, Stats, SAT_CLASSES};
use crate::error::TypeError;
use crate::flow::FlowInfer;

/// Errors from a whole-session run (parsing or typing).
#[derive(Clone, Debug)]
pub enum SessionError {
    /// Lexing/parsing failed.
    Parse(Diag),
    /// Type inference rejected the program.
    Type(TypeError),
}

impl SessionError {
    /// Renders the error against the source it came from.
    pub fn render(&self, source: &str) -> String {
        match self {
            SessionError::Parse(d) => d.render(source),
            SessionError::Type(e) => e.to_diag().render(source),
        }
    }

    /// [`SessionError::render`] with the proof-evidence summary note
    /// appended to type errors (`rowpoly explain` / `--explain`).
    pub fn render_explained(&self, source: &str) -> String {
        match self {
            SessionError::Parse(d) => d.render(source),
            SessionError::Type(e) => e.to_diag_explained().render(source),
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Parse(d) => write!(f, "parse error: {d}"),
            SessionError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<TypeError> for SessionError {
    fn from(e: TypeError) -> SessionError {
        SessionError::Type(e)
    }
}

impl From<Diag> for SessionError {
    fn from(d: Diag) -> SessionError {
        SessionError::Parse(d)
    }
}

/// The inferred scheme of one top-level definition.
#[derive(Clone, Debug)]
pub struct DefReport {
    /// Definition name.
    pub name: Symbol,
    /// Inferred scheme (a `PR` term; flags intact).
    pub scheme: Scheme,
    /// Satisfiability class of the definition's stored flow — which
    /// solver its clauses need on re-instantiation (Section 5's
    /// per-operation classification, observed per definition).
    pub sat_class: SatClass,
}

impl DefReport {
    /// Renders the scheme, optionally with flags.
    pub fn render(&self, show_flags: bool) -> String {
        render_scheme(&self.scheme, show_flags)
    }

    /// Renders the scheme together with its flow, in the paper's
    /// `type | flow` style (e.g. `… | f3 -> f1, f4 -> f2`).
    pub fn render_with_flow(&self) -> String {
        rowpoly_types::render_scheme_with_flow(&self.scheme)
    }
}

/// Result of type-checking a program.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// Per-definition schemes, in source order.
    pub defs: Vec<DefReport>,
    /// Phase statistics.
    pub stats: Stats,
    /// The hardest satisfiability class β reached during checking —
    /// `TwoSat` for select/update programs, `Horn`/`DualHorn` when
    /// asymmetric concatenation is used, `General` for symmetric
    /// concatenation or `when` (Section 5's classification).
    pub sat_class: SatClass,
}

/// An inference session: options plus entry points.
///
/// # Example
///
/// ```
/// use rowpoly_core::Session;
///
/// let report = Session::default()
///     .infer_source("def inc x = x + 1\ndef use = inc 41")?;
/// assert_eq!(report.defs[1].render(false), "Int");
/// # Ok::<(), rowpoly_core::SessionError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Session {
    opts: Options,
}

impl Session {
    /// A session with the given options.
    pub fn new(opts: Options) -> Session {
        Session { opts }
    }

    /// The options in use.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Parses and type-checks a whole program.
    pub fn infer_source(&self, source: &str) -> Result<ProgramReport, SessionError> {
        let program = parse_program(source)?;
        self.infer_program(&program).map_err(SessionError::from)
    }

    /// Type-checks a parsed program.
    ///
    /// When `ROWPOLY_TRACE` names a path, global collection is enabled
    /// and a Chrome trace of everything collected so far is (re)written
    /// there on completion, success or failure.
    pub fn infer_program(&self, program: &Program) -> Result<ProgramReport, TypeError> {
        let trace_path = obs::init_from_env();
        let result = {
            let _session = obs::span("session");
            self.infer_program_impl(program)
        };
        if let Some(path) = trace_path {
            let snap = obs::snapshot();
            if let Err(e) = obs::chrome::write_chrome_trace(&snap, std::path::Path::new(path)) {
                eprintln!(
                    "rowpoly: failed to write {TRACE}={path}: {e}",
                    TRACE = obs::TRACE_ENV
                );
            }
        }
        result
    }

    fn infer_program_impl(&self, program: &Program) -> Result<ProgramReport, TypeError> {
        let wall_start = Instant::now();
        let mut engine = FlowInfer::new(self.opts.clone());
        let needed = if program.defs.is_empty() {
            Default::default()
        } else {
            program.to_expr().free_vars()
        };
        let mut env = builtin_env(&mut engine, &needed);
        bind_free_vars(&mut engine, &mut env, program);
        env.freeze();

        let mut defs = Vec::new();
        let mut sat_class = SatClass::Trivial;
        for def in &program.defs {
            let _def_span = obs::span_lazy(|| format!("def {}", def.name));
            let (mut scheme, env_after) = engine.infer_def(&env, def.name, &def.body, def.span)?;
            if self.opts.check != CheckPolicy::Final {
                engine.check_sat(def.span, None)?;
            }
            // Move the definition's flow into its scheme, keeping the
            // working β proportional to one definition.
            engine.finish_def(&mut scheme, &env_after);
            env = env_after;
            env.insert(def.name, Binding::Poly(scheme.clone()));
            env.freeze();
            let def_class = classify(&scheme.flow);
            defs.push(DefReport {
                name: def.name,
                scheme,
                sat_class: def_class,
            });
        }
        let final_span = program.defs.last().map(|d| d.span).unwrap_or(Span::dummy());
        engine.check_sat(final_span, None)?;
        sat_class = sat_class
            .max(classify(&engine.beta))
            .max(engine.worst_class);
        let mut stats = engine.stats();
        stats.wall = wall_start.elapsed();
        flush_stats_metrics(&stats);
        Ok(ProgramReport {
            defs,
            stats,
            sat_class,
        })
    }

    /// Parses and type-checks a single expression, returning its rendered
    /// type.
    pub fn infer_expr_source(&self, source: &str) -> Result<String, SessionError> {
        let expr = rowpoly_lang::parse_expr(source)?;
        let (ty, _) = self.infer_expr(&expr)?;
        Ok(rowpoly_types::render_ty(&ty, false))
    }

    /// Type-checks a single expression under the built-in environment
    /// (free variables are bound to fresh monomorphic types first).
    pub fn infer_expr(&self, expr: &Expr) -> Result<(Ty, TyEnv), TypeError> {
        let mut engine = FlowInfer::new(self.opts.clone());
        let mut env = builtin_env(&mut engine, &expr.free_vars());
        for x in expr.free_vars() {
            if !env.contains(x) {
                let v = engine.vars.fresh();
                let f = engine.fresh_flag_public();
                env.insert(x, Binding::Mono(Ty::Var(v, f)));
            }
        }
        env.freeze();
        let (ty, env1) = engine.infer(&env, expr)?;
        engine.check_sat(expr.span, None)?;
        Ok((ty, env1))
    }
}

impl FlowInfer {
    /// Allocates a flag respecting the `track_fields` option (driver
    /// helper).
    pub fn fresh_flag_public(&mut self) -> rowpoly_boolfun::Flag {
        if self.tracking() {
            self.flags.fresh()
        } else {
            rowpoly_types::NO_FLAG
        }
    }
}

/// Pushes a run's aggregate [`Stats`] into the global metrics registry
/// (no-ops when collection is disabled). Counters accumulate across
/// runs; maxima keep the largest run.
pub(crate) fn flush_stats_metrics(stats: &Stats) {
    if !obs::enabled() {
        return;
    }
    obs::counter_add("unify.calls", stats.unify_calls as u64);
    obs::counter_add("applys.calls", stats.applys_calls as u64);
    obs::counter_add("sat.checks", stats.sat_calls as u64);
    for class in SAT_CLASSES {
        let n = stats.sat_checks_for(class);
        if n > 0 {
            obs::counter_add(&format!("sat.checks.{}", class.name()), n as u64);
        }
    }
    obs::counter_add("project.resolutions", stats.project_resolutions as u64);
    obs::counter_add("envmeet.version_hits", stats.env_meet_hits as u64);
    obs::counter_add("envmeet.version_misses", stats.env_meet_misses as u64);
    obs::counter_max("beta.clauses.peak", stats.peak_clauses as u64);
}

/// Binds every free variable of the program to a fresh monomorphic type,
/// so that open programs (like the paper's `some_condition`) check.
fn bind_free_vars(engine: &mut FlowInfer, env: &mut TyEnv, program: &Program) {
    if program.defs.is_empty() {
        return;
    }
    for x in program.to_expr().free_vars() {
        if !env.contains(x) {
            let v = engine.vars.fresh();
            let f = engine.fresh_flag_public();
            env.insert(x, Binding::Mono(Ty::Var(v, f)));
        }
    }
}

/// The initial environment: list primitives with simple element flows.
/// Only the primitives in `needed` are bound (and their flow clauses
/// added), so programs that never touch lists keep β in the exact clause
/// class their record operations generate.
pub(crate) fn builtin_env(
    engine: &mut FlowInfer,
    needed: &std::collections::BTreeSet<Symbol>,
) -> TyEnv {
    let mut env = TyEnv::new();
    let flag = |e: &mut FlowInfer| e.fresh_flag_public();

    if needed.contains(&Symbol::intern("null")) {
        // null : ∀a . [a] → Int
        let a = engine.vars.fresh();
        let f = flag(engine);
        let ty = Ty::fun(Ty::list(Ty::Var(a, f)), Ty::Int);
        env.insert(
            Symbol::intern("null"),
            Binding::Poly(Scheme::new(vec![a], ty)),
        );
    }
    if needed.contains(&Symbol::intern("head")) {
        // head : ∀a . [a.f1] → a.f2 with f2 → f1 (fields of the element
        // were in the list).
        let a = engine.vars.fresh();
        let f1 = flag(engine);
        let f2 = flag(engine);
        let ty = Ty::fun(Ty::list(Ty::Var(a, f1)), Ty::Var(a, f2));
        if engine.tracking() {
            engine.beta.imply(Lit::pos(f2), Lit::pos(f1));
        }
        env.insert(
            Symbol::intern("head"),
            Binding::Poly(Scheme::new(vec![a], ty)),
        );
    }
    if needed.contains(&Symbol::intern("tail")) {
        // tail : ∀a . [a.f1] → [a.f2] with f2 → f1.
        let a = engine.vars.fresh();
        let f1 = flag(engine);
        let f2 = flag(engine);
        let ty = Ty::fun(Ty::list(Ty::Var(a, f1)), Ty::list(Ty::Var(a, f2)));
        if engine.tracking() {
            engine.beta.imply(Lit::pos(f2), Lit::pos(f1));
        }
        env.insert(
            Symbol::intern("tail"),
            Binding::Poly(Scheme::new(vec![a], ty)),
        );
    }
    if needed.contains(&Symbol::intern("cons")) {
        // cons : ∀a . a.f1 → [a.f2] → [a.f3] with f3 → f1 ∨ f2.
        let a = engine.vars.fresh();
        let f1 = flag(engine);
        let f2 = flag(engine);
        let f3 = flag(engine);
        let ty = Ty::fun(
            Ty::Var(a, f1),
            Ty::fun(Ty::list(Ty::Var(a, f2)), Ty::list(Ty::Var(a, f3))),
        );
        if engine.tracking() {
            engine
                .beta
                .add_lits(vec![Lit::neg(f3), Lit::pos(f1), Lit::pos(f2)]);
        }
        env.insert(
            Symbol::intern("cons"),
            Binding::Poly(Scheme::new(vec![a], ty)),
        );
    }
    env
}
