//! `rowpoly-serve`: a persistent incremental-query daemon for rowpoly,
//! with an LSP front end for editors and a line-delimited JSON-RPC
//! front end for tests and benchmarks.
//!
//! The batch checker (`rowpoly-batch`) already keys every definition
//! group by the content that determines its outcome — pretty-printed
//! source, inference options, and the *closed schemes* of its
//! dependencies — and persists those keys across runs. This crate
//! turns that one-shot cache into a living query graph: a daemon that
//! holds open documents in memory, re-answers only the queries whose
//! keys an edit actually changed, and pushes diagnostics and hover
//! answers to an editor in editor time rather than batch time.
//!
//! * [`engine`] — the [`ServeEngine`]: open documents, the four-query
//!   pipeline (parse → slice → verdict → scheme), the hot memo layer
//!   ([`memo`]) over the persistent batch cache, and the per-revision
//!   cutoff accounting.
//! * [`rpc`] — the newline-delimited JSON protocol (`rowpoly serve
//!   --json-rpc`): one request object per line, one response per line.
//!   Deterministic and trivially scriptable, it is what `tests/serve.rs`
//!   and the `edits` benchmark drive.
//! * [`lsp`] — the Language Server Protocol front end (`rowpoly serve
//!   --stdio`): Content-Length framing, incremental text sync,
//!   `publishDiagnostics`, and hover showing the inferred scheme and
//!   SAT class.
//!
//! Both front ends are pure functions of `(reader, writer, config)`,
//! so every protocol test runs them in-process over byte buffers.

#![warn(missing_docs)]

pub mod engine;
pub mod lsp;
pub mod memo;
pub mod rpc;

pub use engine::{
    analysis_ok, Analysis, DefState, DefStatus, Document, FileUpdate, HoverInfo, RangeEdit,
    RevisionStats, ServeConfig, ServeEngine,
};

use rowpoly_lang::Span;
use rowpoly_obs::json::Json;

/// One diagnostic extracted from a document's analysis: a definition's
/// failure, or the file's parse error.
#[derive(Clone, Debug)]
pub struct DiagItem {
    /// The failing definition; `None` for a parse error.
    pub def: Option<String>,
    /// `parse-error`, `error`, or `timeout`.
    pub kind: &'static str,
    /// One-line message.
    pub message: String,
    /// The full span-anchored diagnostic, rendered against the current
    /// source exactly as one-shot `rowpoly check --explain` renders it.
    pub rendered: String,
    /// Primary span.
    pub span: Span,
}

/// Extracts the diagnostics of a document's current analysis, in
/// source order. Skipped definitions produce nothing: their cause is
/// already reported, and the batch checker's reports treat them the
/// same way.
pub fn diagnostics(doc: &Document) -> Vec<DiagItem> {
    match &doc.analysis {
        Analysis::ParseError {
            message,
            rendered,
            span,
        } => vec![DiagItem {
            def: None,
            kind: "parse-error",
            message: message.clone(),
            rendered: rendered.clone(),
            span: *span,
        }],
        Analysis::Checked { defs } => defs
            .iter()
            .filter_map(|d| match &d.status {
                DefStatus::Error {
                    message,
                    rendered,
                    span,
                } => Some(DiagItem {
                    def: Some(d.name.clone()),
                    kind: "error",
                    message: message.clone(),
                    rendered: rendered.clone(),
                    span: *span,
                }),
                DefStatus::Timeout { message, span } => Some(DiagItem {
                    def: Some(d.name.clone()),
                    kind: "timeout",
                    message: message.clone(),
                    rendered: format!("{}: {}", d.name, message),
                    span: *span,
                }),
                DefStatus::Ok { .. } | DefStatus::Skipped { .. } => None,
            })
            .collect(),
    }
}

/// Converts a byte span into a 0-based LSP-style range object using the
/// document's line map.
pub fn range_json(doc: &Document, span: Span) -> Json {
    let pos = |offset: u32| {
        let (line, col) = doc.line_map.position(offset.min(doc.source.len() as u32));
        Json::obj(vec![
            ("line", Json::Int(line as i64 - 1)),
            ("character", Json::Int(col as i64 - 1)),
        ])
    };
    Json::obj(vec![("start", pos(span.start)), ("end", pos(span.end))])
}
