//! The demand-driven incremental query engine.
//!
//! One [`ServeEngine`] owns the daemon's entire state: the open
//! documents, the hot memo layer, and (optionally) the persistent
//! content-addressed cache from the batch checker. Each document
//! revision flows through four memoized queries:
//!
//! 1. **parse** — source text → AST + dependency graph, keyed by a
//!    hash of the raw text (so undo/redo and re-saves replay for
//!    free);
//! 2. **slice** — for each definition group, the inputs that determine
//!    its outcome: the group's pretty-printed content and the *closed
//!    schemes* of the definitions it references;
//! 3. **verdict** — the per-definition outcomes of a group, keyed by
//!    the slice fingerprint ([`Cache::key`]: options fingerprint +
//!    pretty-printed content + dependency schemes);
//! 4. **scheme** — the closed schemes a verdict publishes, which feed
//!    the slices of dependent groups.
//!
//! Early cutoff falls out of the keying, with no dirty bits anywhere:
//! an edit that does not change a definition's pretty-printed AST
//! leaves its verdict key unchanged (whitespace and comments are
//! free); an edit that changes the body but not the *closed scheme*
//! re-keys only that one group, because its dependents key on the
//! scheme, not the text. The serve counters make this observable —
//! after a one-definition edit, `verdict.recomputed` is exactly the
//! number of definitions whose meaning-relevant inputs changed.
//!
//! Failures (type errors, timeouts) are recomputed every revision
//! rather than memoized: inference stops at the first failure, so they
//! are cheap, and their diagnostics carry byte spans that the next
//! keystroke would invalidate.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use rowpoly_batch::cache::{Cache, CachedDef};
use rowpoly_batch::graph::ProgramGraph;
use rowpoly_boolfun::SatClass;
use rowpoly_core::{
    group_source_into, run_group_spec, DefVerdict, EngineScratch, GroupSpec, Options,
};
use rowpoly_lang::{parse_program, LineMap, Program, Span, Symbol};
use rowpoly_obs as obs;
use rowpoly_obs::json::Json;
use rowpoly_obs::metrics::Histogram;
use rowpoly_types::{render_scheme, Scheme};

use crate::memo::Memo;

/// Configuration of a serve session.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Inference options (the same surface `rowpoly check` exposes;
    /// part of every query key, so switching options never replays
    /// stale results).
    pub opts: Options,
    /// Persistent cache directory; `None` disables the disk layer.
    pub cache_dir: Option<PathBuf>,
    /// Hot-memo entry cap (eviction threshold).
    pub memo_cap: usize,
    /// Hot-memo byte bound over the entries' deterministic size
    /// estimates; `None` leaves only the entry cap. Reported (with the
    /// memo's live estimate) in the `counters` reply so clients can
    /// assert the memo stays bounded.
    pub memo_max_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            opts: Options::default(),
            cache_dir: None,
            memo_cap: 4096,
            memo_max_bytes: Some(64 << 20),
        }
    }
}

/// What happened to the queries of one document revision.
#[derive(Clone, Copy, Debug, Default)]
pub struct RevisionStats {
    /// The new text hashed identically to the old: every query reused.
    pub unchanged: bool,
    /// Parse queries answered from the parse memo.
    pub parse_hits: u64,
    /// Parse queries that re-ran the parser.
    pub parse_misses: u64,
    /// Dependency-slice queries evaluated (one per definition group).
    pub slices: u64,
    /// Verdict queries answered by the hot memo.
    pub verdict_hits: u64,
    /// Verdict queries answered by the persistent cache.
    pub verdict_disk_hits: u64,
    /// Verdict queries that ran inference.
    pub verdict_recomputed: u64,
    /// Dependency schemes served from memoized verdicts.
    pub scheme_hits: u64,
    /// Definitions inside recomputed groups.
    pub defs_recomputed: u64,
    /// Wall time of the revision.
    pub wall_ns: u64,
    /// This thread's allocator delta over the revision (all zeros
    /// unless memory accounting is on).
    pub mem: rowpoly_obs::MemDelta,
    /// Memo size estimate after the revision (see
    /// [`crate::memo::Memo::live_bytes`]).
    pub memo_live_bytes: u64,
}

impl RevisionStats {
    fn fold_into(&self, t: &mut Totals) {
        t.parse_hits += self.parse_hits;
        t.parse_misses += self.parse_misses;
        t.slices += self.slices;
        t.verdict_hits += self.verdict_hits;
        t.verdict_disk_hits += self.verdict_disk_hits;
        t.verdict_recomputed += self.verdict_recomputed;
        t.scheme_hits += self.scheme_hits;
        t.defs_recomputed += self.defs_recomputed;
    }

    /// The machine-readable form embedded in protocol responses.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("unchanged", Json::Bool(self.unchanged)),
            ("parse_hits", Json::Int(self.parse_hits as i64)),
            ("parse_misses", Json::Int(self.parse_misses as i64)),
            ("slices", Json::Int(self.slices as i64)),
            ("verdict_hits", Json::Int(self.verdict_hits as i64)),
            (
                "verdict_disk_hits",
                Json::Int(self.verdict_disk_hits as i64),
            ),
            (
                "verdict_recomputed",
                Json::Int(self.verdict_recomputed as i64),
            ),
            ("scheme_hits", Json::Int(self.scheme_hits as i64)),
            ("defs_recomputed", Json::Int(self.defs_recomputed as i64)),
            ("wall_ns", Json::Int(self.wall_ns as i64)),
            ("mem", self.mem.to_json()),
            ("memo_live_bytes", Json::Int(self.memo_live_bytes as i64)),
        ])
    }
}

/// Lifetime totals across every revision (the `counters` query).
#[derive(Clone, Copy, Debug, Default)]
struct Totals {
    parse_hits: u64,
    parse_misses: u64,
    slices: u64,
    verdict_hits: u64,
    verdict_disk_hits: u64,
    verdict_recomputed: u64,
    scheme_hits: u64,
    defs_recomputed: u64,
    edits: u64,
    opens: u64,
}

/// The verdict of one definition, rendered for protocol consumers.
#[derive(Clone, Debug)]
pub enum DefStatus {
    /// Checked; carries the rendered closed scheme and its SAT class.
    Ok {
        /// Rendered scheme (no flags).
        scheme: String,
        /// SAT class of the closed flow.
        sat_class: SatClass,
    },
    /// Rejected; `rendered` is the span-anchored explained diagnostic
    /// (identical to one-shot `rowpoly check --explain` output).
    Error {
        /// One-line message.
        message: String,
        /// Full explained diagnostic rendered against the source.
        rendered: String,
        /// Primary error span.
        span: Span,
    },
    /// A budgeted SAT check gave up.
    Timeout {
        /// One-line message.
        message: String,
        /// Span of the definition.
        span: Span,
    },
    /// Shadowed by an earlier failure in its group or dependencies.
    Skipped {
        /// The definition whose failure shadowed this one.
        after: String,
    },
}

impl DefStatus {
    /// The status word used across reports (`ok`/`error`/…), matching
    /// the batch checker's vocabulary.
    pub fn word(&self) -> &'static str {
        match self {
            DefStatus::Ok { .. } => "ok",
            DefStatus::Error { .. } => "error",
            DefStatus::Timeout { .. } => "timeout",
            DefStatus::Skipped { .. } => "skipped",
        }
    }
}

/// One definition's state in the current revision of a document.
#[derive(Clone, Debug)]
pub struct DefState {
    /// Definition name.
    pub name: String,
    /// Span of the whole definition (hover anchor).
    pub span: Span,
    /// Current verdict.
    pub status: DefStatus,
}

/// Analysis of one document revision.
#[derive(Debug)]
pub enum Analysis {
    /// The file does not parse.
    ParseError {
        /// Diagnostic message.
        message: String,
        /// Full rendered diagnostic.
        rendered: String,
        /// Error location.
        span: Span,
    },
    /// The file parses; per-definition verdicts in source order.
    Checked {
        /// Per-definition states.
        defs: Vec<DefState>,
    },
}

/// An open document.
#[derive(Debug)]
pub struct Document {
    /// Current text.
    pub source: String,
    /// Client-supplied version (monotone per LSP).
    pub version: i64,
    source_hash: u64,
    /// Line index of `source`.
    pub line_map: LineMap,
    /// Current analysis.
    pub analysis: Analysis,
}

/// A hover answer: the definition under the cursor.
#[derive(Clone, Debug)]
pub struct HoverInfo {
    /// Definition name.
    pub name: String,
    /// Rendered closed scheme, when the definition checks.
    pub scheme: Option<String>,
    /// SAT class name, when the definition checks.
    pub sat_class: Option<&'static str>,
    /// Status word (`ok`/`error`/`timeout`/`skipped`).
    pub status: &'static str,
    /// Span of the definition (the hover highlight range).
    pub span: Span,
}

/// One incremental text edit, LSP-style: 0-based line/character range
/// replaced by `text`.
#[derive(Clone, Debug)]
pub struct RangeEdit {
    /// 0-based start line.
    pub start_line: usize,
    /// 0-based start character (byte column).
    pub start_character: usize,
    /// 0-based end line (exclusive position).
    pub end_line: usize,
    /// 0-based end character.
    pub end_character: usize,
    /// Replacement text.
    pub text: String,
}

/// The result of revising one document.
#[derive(Clone, Debug)]
pub struct FileUpdate {
    /// Document path (or URI) as the client supplied it.
    pub path: String,
    /// Document version after the update.
    pub version: i64,
    /// Whether every definition checks.
    pub ok: bool,
    /// Query accounting for this revision.
    pub stats: RevisionStats,
}

/// The daemon's state: open documents plus the layered query cache.
pub struct ServeEngine {
    opts: Options,
    fingerprint: String,
    files: BTreeMap<String, Document>,
    /// Hot layer: verdict-query memo.
    memo: Memo,
    /// Parse memo: source hash → parsed program + graph.
    parsed: BTreeMap<u64, (std::sync::Arc<Program>, std::sync::Arc<ProgramGraph>)>,
    /// Persistence: the batch checker's content-addressed cache.
    disk: Option<Cache>,
    cache_dir: Option<PathBuf>,
    revision: u64,
    totals: Totals,
    /// Per-edit wall-time distribution (microseconds, log₂ buckets).
    edit_us: Histogram,
    /// Recycled inference allocations (the daemon is single-threaded,
    /// so one scratch serves every verdict recomputation).
    scratch: EngineScratch,
    /// Per-document incremental SAT sessions, swapped into the scratch
    /// around each revision so learned clauses, SCC orders, and watch
    /// state survive across the edits of one document. Dropped with the
    /// document on close; a stale session reconciles against the new β
    /// by prefix sync, so eviction is a performance decision only.
    sessions: BTreeMap<String, rowpoly_boolfun::Session>,
    /// Recycled buffer for pretty-printed group content.
    content: String,
}

impl ServeEngine {
    /// Starts an engine, loading the persistent cache when configured.
    pub fn new(config: ServeConfig) -> ServeEngine {
        let disk = config.cache_dir.as_deref().map(Cache::load);
        ServeEngine {
            fingerprint: config.opts.fingerprint(),
            opts: config.opts,
            files: BTreeMap::new(),
            memo: Memo::with_bounds(config.memo_cap, config.memo_max_bytes),
            parsed: BTreeMap::new(),
            disk,
            cache_dir: config.cache_dir,
            revision: 0,
            totals: Totals::default(),
            edit_us: Histogram::default(),
            scratch: EngineScratch::default(),
            sessions: BTreeMap::new(),
            content: String::new(),
        }
    }

    /// Opens (or re-opens) a document and computes its analysis.
    pub fn open(&mut self, path: &str, text: String, version: i64) -> FileUpdate {
        self.totals.opens += 1;
        self.revise(path, text, version, false)
    }

    /// Replaces a document's entire text.
    pub fn change_full(
        &mut self,
        path: &str,
        text: String,
        version: i64,
    ) -> Result<FileUpdate, String> {
        if !self.files.contains_key(path) {
            return Err(format!("document not open: {path}"));
        }
        Ok(self.revise(path, text, version, true))
    }

    /// Applies LSP-style incremental edits in order (each edit
    /// addresses the document state left by the previous one).
    pub fn change_ranges(
        &mut self,
        path: &str,
        edits: &[RangeEdit],
        version: i64,
    ) -> Result<FileUpdate, String> {
        let Some(doc) = self.files.get(path) else {
            return Err(format!("document not open: {path}"));
        };
        let mut text = doc.source.clone();
        for edit in edits {
            let lm = LineMap::new(&text);
            let start = lm.offset_of(edit.start_line + 1, edit.start_character + 1, text.len());
            let end = lm.offset_of(edit.end_line + 1, edit.end_character + 1, text.len());
            if start > end {
                return Err(format!(
                    "invalid edit range: start {}:{} after end {}:{}",
                    edit.start_line, edit.start_character, edit.end_line, edit.end_character
                ));
            }
            text.replace_range(start as usize..end as usize, &edit.text);
        }
        Ok(self.revise(path, text, version, true))
    }

    /// Closes a document, dropping its state (memoized queries stay
    /// warm for a re-open). Returns whether it was open.
    pub fn close(&mut self, path: &str) -> bool {
        self.sessions.remove(path);
        self.files.remove(path).is_some()
    }

    /// The open document at `path`.
    pub fn document(&self, path: &str) -> Option<&Document> {
        self.files.get(path)
    }

    /// Paths of every open document.
    pub fn open_paths(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// The definition covering the 0-based `(line, character)`
    /// position, with its scheme and SAT class.
    pub fn hover(&self, path: &str, line: usize, character: usize) -> Option<HoverInfo> {
        let doc = self.files.get(path)?;
        let Analysis::Checked { defs } = &doc.analysis else {
            return None;
        };
        let offset = doc
            .line_map
            .offset_of(line + 1, character + 1, doc.source.len());
        let def = defs
            .iter()
            .find(|d| d.span.start <= offset && offset < d.span.end.max(d.span.start + 1))?;
        let (scheme, sat_class) = match &def.status {
            DefStatus::Ok { scheme, sat_class } => (Some(scheme.clone()), Some(sat_class.name())),
            _ => (None, None),
        };
        Some(HoverInfo {
            name: def.name.clone(),
            scheme,
            sat_class,
            status: def.status.word(),
            span: def.span,
        })
    }

    /// Persists the disk layer (no-op without a cache directory).
    /// Called on `didSave` and at shutdown.
    pub fn persist(&mut self) -> Result<(), String> {
        let (Some(disk), Some(dir)) = (self.disk.as_ref(), self.cache_dir.as_ref()) else {
            return Ok(());
        };
        disk.save(dir)
            .map_err(|e| format!("cannot save cache to {}: {e}", dir.display()))
    }

    /// Lifetime counters: query hits/misses per kind, memo occupancy,
    /// and the per-edit latency distribution (p50/p90/p99).
    pub fn counters(&self) -> Json {
        let t = &self.totals;
        let pct = |p: f64| Json::Int(self.edit_us.percentile(p).unwrap_or(0) as i64);
        Json::obj(vec![
            ("revision", Json::Int(self.revision as i64)),
            ("open_files", Json::Int(self.files.len() as i64)),
            (
                "queries",
                Json::obj(vec![
                    (
                        "parse",
                        Json::obj(vec![
                            ("hits", Json::Int(t.parse_hits as i64)),
                            ("misses", Json::Int(t.parse_misses as i64)),
                        ]),
                    ),
                    (
                        "slice",
                        Json::obj(vec![("evaluated", Json::Int(t.slices as i64))]),
                    ),
                    (
                        "verdict",
                        Json::obj(vec![
                            ("hits", Json::Int(t.verdict_hits as i64)),
                            ("disk_hits", Json::Int(t.verdict_disk_hits as i64)),
                            ("recomputed", Json::Int(t.verdict_recomputed as i64)),
                        ]),
                    ),
                    (
                        "scheme",
                        Json::obj(vec![("hits", Json::Int(t.scheme_hits as i64))]),
                    ),
                ]),
            ),
            (
                "memo",
                Json::obj(vec![
                    ("entries", Json::Int(self.memo.len() as i64)),
                    ("hits", Json::Int(self.memo.hits as i64)),
                    ("misses", Json::Int(self.memo.misses as i64)),
                    ("evicted", Json::Int(self.memo.evicted as i64)),
                    ("live_bytes", Json::Int(self.memo.live_bytes() as i64)),
                    (
                        "max_bytes",
                        self.memo
                            .max_bytes()
                            .map_or(Json::Null, |v| Json::Int(v as i64)),
                    ),
                ]),
            ),
            (
                "mem",
                Json::obj(vec![
                    (
                        "enabled",
                        Json::Bool(obs::mem::tracking() && obs::mem::installed()),
                    ),
                    ("live_bytes", Json::Int(obs::mem::live_bytes())),
                    ("peak_bytes", Json::Int(obs::mem::peak_bytes())),
                    (
                        "peak_rss_bytes",
                        obs::mem::peak_rss_bytes().map_or(Json::Null, |v| Json::Int(v as i64)),
                    ),
                ]),
            ),
            (
                "disk",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.disk.is_some())),
                    (
                        "entries",
                        Json::Int(self.disk.as_ref().map_or(0, Cache::len) as i64),
                    ),
                ]),
            ),
            (
                "edits",
                Json::obj(vec![
                    ("count", Json::Int(t.edits as i64)),
                    ("opens", Json::Int(t.opens as i64)),
                    ("p50_us", pct(50.0)),
                    ("p90_us", pct(90.0)),
                    ("p99_us", pct(99.0)),
                    ("max_us", Json::Int(self.edit_us.max().unwrap_or(0) as i64)),
                ]),
            ),
            ("defs_recomputed", Json::Int(t.defs_recomputed as i64)),
        ])
    }

    /// Revises a document: parse → slice → verdict for every group,
    /// reusing memoized answers wherever the keys still match.
    fn revise(&mut self, path: &str, text: String, version: i64, is_edit: bool) -> FileUpdate {
        let start = Instant::now();
        let mem_mark = obs::mem::thread_mark();
        self.revision += 1;
        let mut stats = RevisionStats::default();

        let hash = content_hash(&text);
        let unchanged = self
            .files
            .get(path)
            .is_some_and(|doc| doc.source_hash == hash);
        if unchanged {
            // Identical content: every query reuses by construction.
            stats.unchanged = true;
            stats.parse_hits = 1;
            let doc = self.files.get_mut(path).expect("checked above");
            doc.version = version;
            let ok = analysis_ok(&doc.analysis);
            stats.wall_ns = start.elapsed().as_nanos() as u64;
            stats.mem = obs::mem::thread_delta_since(&mem_mark);
            stats.memo_live_bytes = self.memo.live_bytes();
            self.note_revision(&stats, is_edit);
            return FileUpdate {
                path: path.to_string(),
                version,
                ok,
                stats,
            };
        }

        // Swap this document's SAT session into the scratch for the
        // revision: recomputed groups reconcile their β against the
        // session's clause history instead of solving from scratch.
        self.scratch.sat = self.sessions.remove(path).unwrap_or_default();
        let analysis = self.analyze(&text, &mut stats);
        self.sessions
            .insert(path.to_string(), std::mem::take(&mut self.scratch.sat));
        let line_map = LineMap::new(&text);
        let ok = analysis_ok(&analysis);
        self.files.insert(
            path.to_string(),
            Document {
                source: text,
                version,
                source_hash: hash,
                line_map,
                analysis,
            },
        );
        stats.wall_ns = start.elapsed().as_nanos() as u64;
        stats.mem = obs::mem::thread_delta_since(&mem_mark);
        stats.memo_live_bytes = self.memo.live_bytes();
        self.note_revision(&stats, is_edit);
        FileUpdate {
            path: path.to_string(),
            version,
            ok,
            stats,
        }
    }

    /// Runs the query pipeline over one document text.
    fn analyze(&mut self, text: &str, stats: &mut RevisionStats) -> Analysis {
        // Query 1: parse (memoized on the raw text hash).
        let hash = content_hash(text);
        let (program, graph) = match self.parsed.get(&hash) {
            Some((p, g)) => {
                stats.parse_hits += 1;
                (p.clone(), g.clone())
            }
            None => {
                stats.parse_misses += 1;
                match parse_program(text) {
                    Err(diag) => {
                        return Analysis::ParseError {
                            message: diag.message.clone(),
                            rendered: diag.render(text),
                            span: diag.span,
                        };
                    }
                    Ok(program) => {
                        let graph = std::sync::Arc::new(ProgramGraph::build(&program));
                        let program = std::sync::Arc::new(program);
                        self.parsed.insert(hash, (program.clone(), graph.clone()));
                        // The parse memo is tiny but unbounded input
                        // could still grow it; cap like the verdict memo.
                        if self.parsed.len() > 64 {
                            let drop_key = *self.parsed.keys().next().expect("non-empty");
                            if drop_key != hash {
                                self.parsed.remove(&drop_key);
                            }
                        }
                        (program, graph)
                    }
                }
            }
        };

        // Queries 2–4 per group, in interval (= topological) order.
        let n_defs = program.defs.len();
        let mut outcomes: Vec<Option<MemberOut>> = (0..n_defs).map(|_| None).collect();
        let mut group_cached: Vec<bool> = vec![false; graph.groups.len()];
        for (g, group) in graph.groups.iter().enumerate() {
            // Query 2: the dependency slice — group content plus the
            // closed schemes it consumes.
            stats.slices += 1;
            let mut dep_schemes: Vec<(Symbol, Scheme)> = Vec::with_capacity(group.deps.len());
            let mut failed_dep: Option<Symbol> = None;
            for (&name, &def_idx) in &group.deps {
                match &outcomes[def_idx] {
                    Some(MemberOut::Ok { scheme, .. }) => {
                        // Query 4 (scheme): served from the dependency's
                        // memoized (or just-computed) verdict.
                        if group_cached[graph.group_of[def_idx]] {
                            stats.scheme_hits += 1;
                        }
                        dep_schemes.push((name, scheme.clone()));
                    }
                    Some(_) => {
                        failed_dep = Some(name);
                        break;
                    }
                    None => unreachable!("groups are visited in topological order"),
                }
            }
            if let Some(after) = failed_dep {
                for &i in &group.def_indices {
                    outcomes[i] = Some(MemberOut::Skipped { after });
                }
                continue;
            }

            // Query 3: the verdict, keyed by the slice fingerprint.
            group_source_into(&mut self.content, &program, &group.def_indices);
            let key = Cache::key(&self.fingerprint, &self.content, &dep_schemes);
            if let Some(cached) = self.memo.lookup(key, self.revision) {
                if let Some(items) = replay(&program, group, cached) {
                    stats.verdict_hits += 1;
                    group_cached[g] = true;
                    for (i, out) in items {
                        outcomes[i] = Some(out);
                    }
                    continue;
                }
            }
            if let Some(disk) = self.disk.as_mut() {
                if let Some(cached) = disk.lookup(key) {
                    if let Some(items) = replay(&program, group, &cached) {
                        stats.verdict_disk_hits += 1;
                        group_cached[g] = true;
                        self.memo.insert(key, cached, self.revision);
                        for (i, out) in items {
                            outcomes[i] = Some(out);
                        }
                        continue;
                    }
                }
            }

            // Miss: run inference on this group alone.
            stats.verdict_recomputed += 1;
            stats.defs_recomputed += group.def_indices.len() as u64;
            let dep_refs: Vec<(Symbol, &Scheme)> =
                dep_schemes.iter().map(|(n, s)| (*n, s)).collect();
            let spec = GroupSpec {
                opts: &self.opts,
                program: &program,
                def_indices: &group.def_indices,
                deps: &dep_refs,
                free_names: Some(&group.free_names),
            };
            let outcome = run_group_spec(&spec, &mut self.scratch);
            if outcome.all_ok() {
                let cached: Vec<CachedDef> = outcome
                    .items
                    .iter()
                    .map(|(_, v)| {
                        let report = v.report().expect("all_ok");
                        CachedDef {
                            name: report.name,
                            scheme: report.scheme.clone(),
                            sat_class: report.sat_class,
                        }
                    })
                    .collect();
                self.memo.insert(key, cached.clone(), self.revision);
                if let Some(disk) = self.disk.as_mut() {
                    disk.insert(key, cached);
                }
            }
            for (i, verdict) in outcome.items {
                outcomes[i] = Some(match verdict {
                    DefVerdict::Ok(report) => MemberOut::Ok {
                        scheme: report.scheme,
                        sat_class: report.sat_class,
                    },
                    DefVerdict::Error(e) => MemberOut::Error(e),
                    DefVerdict::Timeout(e) => MemberOut::Timeout(e),
                    DefVerdict::Skipped { after } => MemberOut::Skipped { after },
                });
            }
        }

        // Render per-definition states against the current text.
        let defs = program
            .defs
            .iter()
            .zip(outcomes)
            .map(|(def, out)| {
                let status = match out.expect("every definition got an outcome") {
                    MemberOut::Ok { scheme, sat_class } => DefStatus::Ok {
                        scheme: render_scheme(&scheme, false),
                        sat_class,
                    },
                    MemberOut::Error(e) => DefStatus::Error {
                        message: e.message(),
                        rendered: e.to_diag_explained().render(text),
                        span: e.span,
                    },
                    MemberOut::Timeout(e) => DefStatus::Timeout {
                        message: e.message(),
                        span: def.span,
                    },
                    MemberOut::Skipped { after } => DefStatus::Skipped {
                        after: after.to_string(),
                    },
                };
                DefState {
                    name: def.name.to_string(),
                    span: def.span,
                    status,
                }
            })
            .collect();
        Analysis::Checked { defs }
    }

    /// Folds a revision into the lifetime totals and mirrors the
    /// serve.* metrics into the global observability registry.
    fn note_revision(&mut self, stats: &RevisionStats, is_edit: bool) {
        stats.fold_into(&mut self.totals);
        let us = stats.wall_ns / 1_000;
        if is_edit {
            self.totals.edits += 1;
            self.edit_us.record(us);
        }
        if obs::enabled() {
            obs::counter_add("serve.parse.hits", stats.parse_hits);
            obs::counter_add("serve.parse.misses", stats.parse_misses);
            obs::counter_add("serve.slice.evaluated", stats.slices);
            obs::counter_add("serve.verdict.hits", stats.verdict_hits);
            obs::counter_add("serve.verdict.disk_hits", stats.verdict_disk_hits);
            obs::counter_add("serve.verdict.recomputed", stats.verdict_recomputed);
            obs::counter_add("serve.scheme.hits", stats.scheme_hits);
            if is_edit {
                obs::hist_record("serve.edit.us", us);
            } else {
                obs::hist_record("serve.open.us", us);
            }
        }
    }
}

/// A group member's outcome inside the query pipeline (schemes still
/// structured, errors still span-bearing).
enum MemberOut {
    Ok { scheme: Scheme, sat_class: SatClass },
    Error(rowpoly_core::TypeError),
    Timeout(rowpoly_core::TypeError),
    Skipped { after: Symbol },
}

/// Rebuilds a group's member outcomes from a memo/cache entry,
/// validating that names line up (a hash collision or stale decode
/// falls through to recomputation, exactly like the batch replay).
fn replay(
    program: &Program,
    group: &rowpoly_batch::graph::Group,
    cached: &[CachedDef],
) -> Option<Vec<(usize, MemberOut)>> {
    if cached.len() != group.def_indices.len() {
        return None;
    }
    let mut items = Vec::with_capacity(cached.len());
    for (&i, c) in group.def_indices.iter().zip(cached) {
        if program.defs[i].name != c.name {
            return None;
        }
        items.push((
            i,
            MemberOut::Ok {
                scheme: c.scheme.clone(),
                sat_class: c.sat_class,
            },
        ));
    }
    Some(items)
}

/// Whether every definition of an analysis checks.
pub fn analysis_ok(analysis: &Analysis) -> bool {
    match analysis {
        Analysis::ParseError { .. } => false,
        Analysis::Checked { defs } => defs
            .iter()
            .all(|d| matches!(d.status, DefStatus::Ok { .. })),
    }
}

/// Content hash of a document text (the parse-query key), using the
/// same Fx folding as the cache keys.
fn content_hash(text: &str) -> u64 {
    let mut h = rowpoly_batch::cache::FxHash64::default();
    h.write(text.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ServeEngine {
        ServeEngine::new(ServeConfig::default())
    }

    #[test]
    fn open_checks_and_reports_schemes() {
        let mut e = engine();
        let up = e.open("a.rp", "def inc x = x + 1\ndef use = inc 41".into(), 1);
        assert!(up.ok);
        assert_eq!(up.stats.verdict_recomputed, 2);
        let doc = e.document("a.rp").expect("open");
        let Analysis::Checked { defs } = &doc.analysis else {
            panic!("parse failed");
        };
        assert!(matches!(&defs[0].status, DefStatus::Ok { scheme, .. } if scheme == "Int -> Int"));
        assert!(matches!(&defs[1].status, DefStatus::Ok { scheme, .. } if scheme == "Int"));
    }

    #[test]
    fn whitespace_edit_recomputes_nothing() {
        let mut e = engine();
        e.open("a.rp", "def a = 1\ndef b = a + 1".into(), 1);
        let up = e
            .change_full("a.rp", "def a = 1\n\ndef b = a   + 1".into(), 2)
            .expect("open");
        assert!(up.ok);
        // The text changed (parse miss) but both pretty-printed groups
        // and the dependency scheme are identical: zero recomputes.
        assert_eq!(up.stats.verdict_recomputed, 0, "{:?}", up.stats);
        assert_eq!(up.stats.verdict_hits, 2);
    }

    #[test]
    fn editing_a_body_without_changing_its_scheme_cuts_off_early() {
        let mut e = engine();
        e.open("a.rp", "def a = 1\ndef b = a + 1\ndef c = b + 1".into(), 1);
        let up = e
            .change_full("a.rp", "def a = 2\ndef b = a + 1\ndef c = b + 1".into(), 2)
            .expect("open");
        assert!(up.ok);
        // `a` re-keys (its body changed) but closes to the same scheme
        // `Int`, so `b` and `c` hit their memoized verdicts.
        assert_eq!(up.stats.verdict_recomputed, 1, "{:?}", up.stats);
        assert_eq!(up.stats.verdict_hits, 2);
        assert_eq!(up.stats.defs_recomputed, 1);
    }

    #[test]
    fn identical_text_reuses_everything() {
        let mut e = engine();
        e.open("a.rp", "def a = 1".into(), 1);
        let up = e.change_full("a.rp", "def a = 1".into(), 2).expect("open");
        assert!(up.stats.unchanged);
        assert_eq!(up.stats.verdict_recomputed, 0);
    }

    #[test]
    fn range_edits_apply_like_an_editor() {
        let mut e = engine();
        e.open("a.rp", "def a = 1\ndef b = a + 1".into(), 1);
        // Replace the literal `1` in `def a = 1` (line 0, cols 8..9).
        let up = e
            .change_ranges(
                "a.rp",
                &[RangeEdit {
                    start_line: 0,
                    start_character: 8,
                    end_line: 0,
                    end_character: 9,
                    text: "41".into(),
                }],
                2,
            )
            .expect("applies");
        assert!(up.ok);
        assert_eq!(
            e.document("a.rp").unwrap().source,
            "def a = 41\ndef b = a + 1"
        );
        assert_eq!(up.stats.verdict_recomputed, 1);
    }

    #[test]
    fn errors_are_rendered_and_recomputed_each_revision() {
        let mut e = engine();
        let up = e.open("a.rp", "def bad = #foo {}\ndef fine = 1".into(), 1);
        assert!(!up.ok);
        let doc = e.document("a.rp").unwrap();
        let Analysis::Checked { defs } = &doc.analysis else {
            panic!("parse failed");
        };
        let DefStatus::Error { rendered, .. } = &defs[0].status else {
            panic!("expected error, got {:?}", defs[0].status);
        };
        assert!(rendered.contains("never added"), "{rendered}");
        assert!(matches!(defs[1].status, DefStatus::Ok { .. }));

        // Same text again: the fine def hits, the bad def re-runs.
        let up = e
            .change_full("a.rp", "def bad = #foo {}\ndef fine = 1\n".into(), 2)
            .expect("open");
        assert_eq!(up.stats.verdict_recomputed, 1);
        assert_eq!(up.stats.verdict_hits, 1);
    }

    #[test]
    fn hover_reports_the_definition_under_the_cursor() {
        let mut e = engine();
        e.open("a.rp", "def inc x = x + 1\ndef use = inc 41".into(), 1);
        let h = e.hover("a.rp", 0, 4).expect("hover on inc");
        assert_eq!(h.name, "inc");
        assert_eq!(h.scheme.as_deref(), Some("Int -> Int"));
        assert_eq!(h.status, "ok");
        let h = e.hover("a.rp", 1, 0).expect("hover on use");
        assert_eq!(h.name, "use");
    }

    #[test]
    fn failed_dependency_skips_dependents() {
        let mut e = engine();
        e.open("a.rp", "def bad = #foo {}\ndef use2 = bad".into(), 1);
        let doc = e.document("a.rp").unwrap();
        let Analysis::Checked { defs } = &doc.analysis else {
            panic!("parse failed");
        };
        assert!(matches!(&defs[1].status, DefStatus::Skipped { after } if after == "bad"));
    }

    #[test]
    fn parse_errors_surface_with_spans() {
        let mut e = engine();
        let up = e.open("a.rp", "def broken = (".into(), 1);
        assert!(!up.ok);
        let doc = e.document("a.rp").unwrap();
        assert!(matches!(doc.analysis, Analysis::ParseError { .. }));
    }
}
