//! The newline-delimited JSON front end (`rowpoly serve --json-rpc`).
//!
//! One request object per line in, one response object per line out —
//! no framing headers, no notification traffic, nothing asynchronous.
//! This is the protocol the lifecycle tests and the `edits` benchmark
//! drive, and the shape a scripted client (or `jq` pipeline) wants.
//!
//! ```text
//! → {"id":1,"method":"open","params":{"path":"a.rp","text":"def a = 1","version":1}}
//! ← {"id":1,"result":{"path":"a.rp","version":1,"ok":true,"diagnostics":[],"stats":{...}}}
//! ```
//!
//! Methods:
//!
//! | method        | params                                             | result |
//! |---------------|----------------------------------------------------|--------|
//! | `open`        | `path`, `text`, `version?`                         | file update |
//! | `edit`        | `path`, `version?`, `text` *or* `changes: [...]`   | file update |
//! | `close`       | `path`                                             | `{"closed": bool}` |
//! | `diagnostics` | `path`                                             | `{"diagnostics": [...]}` |
//! | `hover`       | `path`, `line`, `character` (0-based)              | hover info or `null` |
//! | `counters`    | —                                                  | lifetime query counters |
//! | `save`        | —                                                  | persists the disk cache |
//! | `shutdown`    | —                                                  | `{"ok": true}`, ends the loop |
//!
//! `edit` accepts either a full `text` replacement or LSP-shaped
//! incremental `changes` (`{"range": {"start": {"line", "character"},
//! "end": ...}, "text"}`, applied in order), so a test can exercise the
//! exact code path an editor uses.
//!
//! Every file update embeds the revision's [`RevisionStats`] — that is
//! how a client proves early cutoff ("this edit recomputed exactly one
//! verdict") without scraping observability output.

use std::io::{BufRead, Write};

use rowpoly_obs::json::{self, Json};

use crate::engine::{DefStatus, RangeEdit, ServeConfig, ServeEngine};
use crate::{diagnostics, range_json, Analysis, FileUpdate};

/// A JSON-RPC error: standard `code` plus human-readable `message`.
/// Codes follow the JSON-RPC 2.0 assignments: `-32700` parse error,
/// `-32601` method not found, `-32602` invalid params (including
/// operations on documents that are not open), `-32603` internal.
#[derive(Debug)]
pub struct RpcError {
    /// JSON-RPC 2.0 error code.
    pub code: i64,
    /// Human-readable description, surfaced verbatim to the client.
    pub message: String,
}

impl RpcError {
    fn parse_error(message: String) -> RpcError {
        RpcError {
            code: -32700,
            message,
        }
    }

    fn method_not_found(message: String) -> RpcError {
        RpcError {
            code: -32601,
            message,
        }
    }

    fn internal(message: String) -> RpcError {
        RpcError {
            code: -32603,
            message,
        }
    }
}

/// Engine-surfaced strings are parameter problems (missing fields,
/// documents that are not open, malformed ranges): invalid params.
impl From<String> for RpcError {
    fn from(message: String) -> RpcError {
        RpcError {
            code: -32602,
            message,
        }
    }
}

impl From<&str> for RpcError {
    fn from(message: &str) -> RpcError {
        RpcError::from(message.to_string())
    }
}

/// Runs the protocol loop until `shutdown` or end of input. On
/// shutdown the disk cache (when configured) is persisted.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    config: ServeConfig,
) -> std::io::Result<()> {
    let mut engine = ServeEngine::new(config);
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (id, outcome, shutdown) = match json::parse(&line) {
            Err(e) => (
                Json::Null,
                Err(RpcError::parse_error(format!("unparseable request: {e}"))),
                false,
            ),
            Ok(req) => {
                let id = req.get("id").cloned().unwrap_or(Json::Null);
                let method = req.get("method").and_then(Json::as_str).unwrap_or("");
                let shutdown = method == "shutdown";
                (id, dispatch(&mut engine, method, &req), shutdown)
            }
        };
        let body = match outcome {
            Ok(result) => ("result", result),
            Err(e) => (
                "error",
                Json::obj(vec![
                    ("code", Json::Int(e.code)),
                    ("message", Json::Str(e.message)),
                ]),
            ),
        };
        let response = Json::obj(vec![("id", id), body]);
        writeln!(output, "{}", response.render())?;
        output.flush()?;
        if shutdown {
            engine.persist().map_err(std::io::Error::other)?;
            break;
        }
    }
    Ok(())
}

fn dispatch(engine: &mut ServeEngine, method: &str, req: &Json) -> Result<Json, RpcError> {
    let params = req.get("params").cloned().unwrap_or(Json::Null);
    match method {
        "open" => {
            let path = str_param(&params, "path")?;
            let text = str_param(&params, "text")?.to_string();
            let version = params.get("version").and_then(Json::as_i64).unwrap_or(0);
            let update = engine.open(&path, text, version);
            Ok(update_json(engine, &update))
        }
        "edit" => {
            let path = str_param(&params, "path")?;
            let version = params.get("version").and_then(Json::as_i64).unwrap_or(0);
            let update = if let Some(text) = params.get("text").and_then(Json::as_str) {
                engine.change_full(&path, text.to_string(), version)?
            } else if let Some(changes) = params.get("changes").and_then(Json::as_arr) {
                let edits = changes
                    .iter()
                    .map(parse_change)
                    .collect::<Result<Vec<_>, _>>()?;
                engine.change_ranges(&path, &edits, version)?
            } else {
                return Err("edit needs `text` or `changes`".into());
            };
            Ok(update_json(engine, &update))
        }
        "close" => {
            let path = str_param(&params, "path")?;
            Ok(Json::obj(vec![("closed", Json::Bool(engine.close(&path)))]))
        }
        "diagnostics" => {
            let path = str_param(&params, "path")?;
            if engine.document(&path).is_none() {
                return Err(format!("document not open: {path}").into());
            }
            Ok(Json::obj(vec![(
                "diagnostics",
                diagnostics_json(engine, &path),
            )]))
        }
        "hover" => {
            let path = str_param(&params, "path")?;
            let line = u_param(&params, "line")?;
            let character = u_param(&params, "character")?;
            match engine.hover(&path, line, character) {
                None => Ok(Json::Null),
                Some(h) => {
                    let doc = engine.document(&path).expect("hover implies open");
                    Ok(Json::obj(vec![
                        ("name", Json::Str(h.name)),
                        ("status", Json::Str(h.status.to_string())),
                        ("scheme", h.scheme.map(Json::Str).unwrap_or(Json::Null)),
                        (
                            "sat_class",
                            h.sat_class
                                .map(|c| Json::Str(c.to_string()))
                                .unwrap_or(Json::Null),
                        ),
                        ("range", range_json(doc, h.span)),
                    ]))
                }
            }
        }
        "counters" => Ok(engine.counters()),
        "save" => {
            engine.persist().map_err(RpcError::internal)?;
            Ok(Json::obj(vec![("ok", Json::Bool(true))]))
        }
        "shutdown" => Ok(Json::obj(vec![("ok", Json::Bool(true))])),
        other => Err(RpcError::method_not_found(format!(
            "unknown method: {other:?}"
        ))),
    }
}

fn str_param(params: &Json, key: &str) -> Result<String, String> {
    params
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string param `{key}`"))
}

fn u_param(params: &Json, key: &str) -> Result<usize, String> {
    params
        .get(key)
        .and_then(Json::as_i64)
        .filter(|&n| n >= 0)
        .map(|n| n as usize)
        .ok_or_else(|| format!("missing non-negative param `{key}`"))
}

/// Parses one LSP-shaped incremental change (shared with the LSP front
/// end, whose `contentChanges` have exactly this shape).
pub(crate) fn parse_change(change: &Json) -> Result<RangeEdit, String> {
    let text = change
        .get("text")
        .and_then(Json::as_str)
        .ok_or("change missing `text`")?
        .to_string();
    let range = change.get("range").ok_or("change missing `range`")?;
    let pos = |which: &str| -> Result<(usize, usize), String> {
        let p = range
            .get(which)
            .ok_or_else(|| format!("range missing `{which}`"))?;
        let line = p
            .get("line")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("`{which}` missing `line`"))?;
        let character = p
            .get("character")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("`{which}` missing `character`"))?;
        Ok((line.max(0) as usize, character.max(0) as usize))
    };
    let (start_line, start_character) = pos("start")?;
    let (end_line, end_character) = pos("end")?;
    Ok(RangeEdit {
        start_line,
        start_character,
        end_line,
        end_character,
        text,
    })
}

/// The `FileUpdate` wire shape shared by `open` and `edit`.
fn update_json(engine: &ServeEngine, update: &FileUpdate) -> Json {
    Json::obj(vec![
        ("path", Json::Str(update.path.clone())),
        ("version", Json::Int(update.version)),
        ("ok", Json::Bool(update.ok)),
        ("diagnostics", diagnostics_json(engine, &update.path)),
        ("stats", update.stats.to_json()),
    ])
}

fn diagnostics_json(engine: &ServeEngine, path: &str) -> Json {
    let Some(doc) = engine.document(path) else {
        return Json::Arr(Vec::new());
    };
    Json::Arr(
        diagnostics(doc)
            .into_iter()
            .map(|d| {
                Json::obj(vec![
                    ("def", d.def.map(Json::Str).unwrap_or(Json::Null)),
                    ("kind", Json::Str(d.kind.to_string())),
                    ("message", Json::Str(d.message)),
                    ("rendered", Json::Str(d.rendered)),
                    ("range", range_json(doc, d.span)),
                ])
            })
            .collect(),
    )
}

/// Schemes of every definition in a checked document, for tests that
/// want to compare against the one-shot checker's report.
pub fn schemes_json(engine: &ServeEngine, path: &str) -> Json {
    let Some(doc) = engine.document(path) else {
        return Json::Arr(Vec::new());
    };
    let Analysis::Checked { defs } = &doc.analysis else {
        return Json::Arr(Vec::new());
    };
    Json::Arr(
        defs.iter()
            .map(|d| {
                let scheme = match &d.status {
                    DefStatus::Ok { scheme, .. } => Json::Str(scheme.clone()),
                    _ => Json::Null,
                };
                Json::obj(vec![
                    ("name", Json::Str(d.name.clone())),
                    ("status", Json::Str(d.status.word().to_string())),
                    ("scheme", scheme),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the protocol loop in-process over byte buffers.
    fn run(requests: &[&str]) -> Vec<Json> {
        let input: String = requests.iter().map(|r| format!("{r}\n")).collect();
        let mut output = Vec::new();
        serve(input.as_bytes(), &mut output, ServeConfig::default()).expect("io");
        String::from_utf8(output)
            .expect("utf8")
            .lines()
            .map(|l| json::parse(l).expect("response parses"))
            .collect()
    }

    #[test]
    fn open_edit_counters_shutdown_roundtrip() {
        let responses = run(&[
            r#"{"id":1,"method":"open","params":{"path":"a.rp","text":"def a = 1\ndef b = a + 1","version":1}}"#,
            r#"{"id":2,"method":"edit","params":{"path":"a.rp","version":2,"text":"def a = 2\ndef b = a + 1"}}"#,
            r#"{"id":3,"method":"counters"}"#,
            r#"{"id":4,"method":"shutdown"}"#,
        ]);
        assert_eq!(responses.len(), 4);
        let opened = responses[0].get("result").expect("result");
        assert_eq!(opened.get("ok"), Some(&Json::Bool(true)));

        let edited = responses[1].get("result").expect("result");
        let stats = edited.get("stats").expect("stats");
        assert_eq!(
            stats.get("verdict_recomputed").and_then(Json::as_i64),
            Some(1),
            "only the edited def re-ran: {stats}"
        );
        assert_eq!(stats.get("verdict_hits").and_then(Json::as_i64), Some(1));

        let counters = responses[2].get("result").expect("result");
        assert!(counters.get("queries").is_some(), "{counters}");
        assert_eq!(
            responses[3].get("result").and_then(|r| r.get("ok")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn incremental_changes_apply_and_errors_render() {
        let responses = run(&[
            r#"{"id":1,"method":"open","params":{"path":"a.rp","text":"def a = 1","version":1}}"#,
            r##"{"id":2,"method":"edit","params":{"path":"a.rp","version":2,"changes":[{"range":{"start":{"line":0,"character":8},"end":{"line":0,"character":9}},"text":"#foo {}"}]}}"##,
            r#"{"id":3,"method":"hover","params":{"path":"a.rp","line":0,"character":4}}"#,
        ]);
        let edited = responses[1].get("result").expect("result");
        assert_eq!(edited.get("ok"), Some(&Json::Bool(false)));
        let diags = edited
            .get("diagnostics")
            .and_then(Json::as_arr)
            .expect("diags");
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].get("def").and_then(Json::as_str),
            Some("a"),
            "{:?}",
            diags[0]
        );
        assert!(diags[0]
            .get("rendered")
            .and_then(Json::as_str)
            .expect("rendered")
            .contains("never added"));
        let hover = responses[2].get("result").expect("result");
        assert_eq!(hover.get("status").and_then(Json::as_str), Some("error"));
    }

    #[test]
    fn unknown_methods_and_bad_json_return_errors() {
        let responses = run(&[
            r#"{"id":1,"method":"nope"}"#,
            r#"this is not json"#,
            r#"{"id":2,"method":"edit","params":{"path":"missing.rp","text":"def a = 1"}}"#,
        ]);
        for r in &responses {
            assert!(r.get("error").is_some(), "expected error: {r}");
        }
    }

    /// Editing a document that was never opened (or was closed) is an
    /// invalid-params error (`-32602`), not a crash; the other failure
    /// shapes carry their standard JSON-RPC codes too.
    #[test]
    fn error_codes_follow_jsonrpc_assignments() {
        let code = |r: &Json| {
            r.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_i64)
                .expect("error carries a code")
        };
        let responses = run(&[
            r#"{"id":1,"method":"edit","params":{"path":"never.rp","text":"def a = 1"}}"#,
            r#"{"id":2,"method":"open","params":{"path":"a.rp","text":"def a = 1","version":1}}"#,
            r#"{"id":3,"method":"close","params":{"path":"a.rp"}}"#,
            r#"{"id":4,"method":"edit","params":{"path":"a.rp","version":2,"text":"def a = 2"}}"#,
            r#"{"id":5,"method":"frobnicate"}"#,
            r#"{not json"#,
        ]);
        assert_eq!(code(&responses[0]), -32602, "{}", responses[0]);
        let msg = responses[0]
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .expect("message");
        assert!(msg.contains("not open"), "{msg}");
        assert!(responses[1].get("result").is_some());
        assert_eq!(
            responses[2].get("result").and_then(|r| r.get("closed")),
            Some(&Json::Bool(true))
        );
        assert_eq!(code(&responses[3]), -32602, "{}", responses[3]);
        assert_eq!(code(&responses[4]), -32601, "{}", responses[4]);
        assert_eq!(code(&responses[5]), -32700, "{}", responses[5]);
    }
}
