//! The Language Server Protocol front end (`rowpoly serve --stdio`).
//!
//! Speaks JSON-RPC 2.0 with `Content-Length` framing over any
//! reader/writer pair (stdio in production, byte buffers in tests).
//! The supported surface is deliberately small — exactly what the
//! incremental engine can answer well:
//!
//! * `initialize`/`initialized`/`shutdown`/`exit` lifecycle;
//! * `textDocument/didOpen`, `didChange` (incremental sync, LSP
//!   `TextDocumentSyncKind.Incremental = 2`), `didSave` (persists the
//!   disk cache), `didClose`;
//! * `textDocument/publishDiagnostics` notifications after every
//!   document revision, carrying the same minimal-core error paths the
//!   batch checker reports (the full explained rendering rides in each
//!   diagnostic's `data.rendered`);
//! * `textDocument/hover`: the inferred closed scheme and SAT class of
//!   the definition under the cursor.
//!
//! Document URIs are used verbatim as engine keys — the engine never
//! touches the filesystem for open documents, so `file://`, `untitled:`
//! and anything else an editor sends all work.

use std::io::{BufRead, Write};

use rowpoly_obs::json::{self, Json};

use crate::engine::{RangeEdit, ServeConfig, ServeEngine};
use crate::{diagnostics, range_json};

/// JSON-RPC error code for an unknown method.
const METHOD_NOT_FOUND: i64 = -32601;
/// JSON-RPC error code for malformed params.
const INVALID_PARAMS: i64 = -32602;

/// Runs the LSP loop until `exit` or end of input.
pub fn serve<R: BufRead, W: Write>(
    mut input: R,
    mut output: W,
    config: ServeConfig,
) -> std::io::Result<()> {
    let mut engine = ServeEngine::new(config);
    while let Some(msg) = read_frame(&mut input)? {
        let Ok(msg) = json::parse(&msg) else {
            continue; // a malformed frame is the client's bug, not fatal
        };
        let id = msg.get("id").cloned();
        let method = msg.get("method").and_then(Json::as_str).unwrap_or("");
        let params = msg.get("params").cloned().unwrap_or(Json::Null);
        match method {
            "initialize" => {
                respond(&mut output, id, Ok(initialize_result()))?;
            }
            "initialized" | "$/cancelRequest" => {}
            "textDocument/didOpen" => {
                if let Some((uri, version, text)) = open_params(&params) {
                    engine.open(&uri, text, version);
                    publish(&mut output, &engine, &uri)?;
                }
            }
            "textDocument/didChange" => {
                if let Err(e) = did_change(&mut engine, &mut output, &params) {
                    log_message(&mut output, &format!("didChange failed: {e}"))?;
                }
            }
            "textDocument/didSave" => {
                if let Some(uri) = uri_param(&params) {
                    // A save may carry the full text (includeText: true);
                    // treat it as an authoritative refresh.
                    if let Some(text) = params.get("text").and_then(Json::as_str) {
                        let version = engine.document(&uri).map_or(0, |d| d.version);
                        let _ = engine.change_full(&uri, text.to_string(), version);
                        publish(&mut output, &engine, &uri)?;
                    }
                    if let Err(e) = engine.persist() {
                        log_message(&mut output, &e)?;
                    }
                }
            }
            "textDocument/didClose" => {
                if let Some(uri) = uri_param(&params) {
                    engine.close(&uri);
                    // Clear stale squiggles in the editor.
                    notify(
                        &mut output,
                        "textDocument/publishDiagnostics",
                        Json::obj(vec![
                            ("uri", Json::Str(uri)),
                            ("diagnostics", Json::Arr(Vec::new())),
                        ]),
                    )?;
                }
            }
            "textDocument/hover" => {
                let result = hover_result(&engine, &params);
                respond(&mut output, id, result)?;
            }
            "shutdown" => {
                if let Err(e) = engine.persist() {
                    log_message(&mut output, &e)?;
                }
                respond(&mut output, id, Ok(Json::Null))?;
            }
            "exit" => break,
            _ => {
                // Unknown notifications are ignored per the spec;
                // unknown requests get a MethodNotFound error.
                if let Some(id) = id {
                    respond(
                        &mut output,
                        Some(id),
                        Err((METHOD_NOT_FOUND, format!("unhandled method {method:?}"))),
                    )?;
                }
            }
        }
    }
    Ok(())
}

/// Reads one `Content-Length`-framed message body. `None` at EOF.
fn read_frame<R: BufRead>(input: &mut R) -> std::io::Result<Option<String>> {
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if input.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let line = line.trim_end();
        if line.is_empty() {
            if content_length.is_some() {
                break;
            }
            continue; // stray blank line between frames
        }
        if let Some(value) = line.strip_prefix("Content-Length:") {
            content_length = value.trim().parse().ok();
        }
        // Other headers (Content-Type) are ignored.
    }
    let len = content_length.expect("loop only breaks with a length");
    let mut buf = vec![0u8; len];
    input.read_exact(&mut buf)?;
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Writes one framed message.
fn write_frame<W: Write>(output: &mut W, body: &Json) -> std::io::Result<()> {
    let rendered = body.render();
    write!(
        output,
        "Content-Length: {}\r\n\r\n{rendered}",
        rendered.len()
    )?;
    output.flush()
}

fn respond<W: Write>(
    output: &mut W,
    id: Option<Json>,
    result: Result<Json, (i64, String)>,
) -> std::io::Result<()> {
    let id = id.unwrap_or(Json::Null);
    let body = match result {
        Ok(result) => Json::obj(vec![
            ("jsonrpc", Json::Str("2.0".to_string())),
            ("id", id),
            ("result", result),
        ]),
        Err((code, message)) => Json::obj(vec![
            ("jsonrpc", Json::Str("2.0".to_string())),
            ("id", id),
            (
                "error",
                Json::obj(vec![
                    ("code", Json::Int(code)),
                    ("message", Json::Str(message)),
                ]),
            ),
        ]),
    };
    write_frame(output, &body)
}

fn notify<W: Write>(output: &mut W, method: &str, params: Json) -> std::io::Result<()> {
    write_frame(
        output,
        &Json::obj(vec![
            ("jsonrpc", Json::Str("2.0".to_string())),
            ("method", Json::Str(method.to_string())),
            ("params", params),
        ]),
    )
}

fn log_message<W: Write>(output: &mut W, message: &str) -> std::io::Result<()> {
    notify(
        output,
        "window/logMessage",
        Json::obj(vec![
            ("type", Json::Int(1)), // Error
            ("message", Json::Str(message.to_string())),
        ]),
    )
}

fn initialize_result() -> Json {
    Json::obj(vec![
        (
            "capabilities",
            Json::obj(vec![
                (
                    "textDocumentSync",
                    Json::obj(vec![
                        ("openClose", Json::Bool(true)),
                        // 2 = Incremental: the client sends range edits.
                        ("change", Json::Int(2)),
                        ("save", Json::obj(vec![("includeText", Json::Bool(true))])),
                    ]),
                ),
                ("hoverProvider", Json::Bool(true)),
            ]),
        ),
        (
            "serverInfo",
            Json::obj(vec![
                ("name", Json::Str("rowpoly-serve".to_string())),
                ("version", Json::Str(env!("CARGO_PKG_VERSION").to_string())),
            ]),
        ),
    ])
}

fn uri_param(params: &Json) -> Option<String> {
    params
        .get("textDocument")?
        .get("uri")?
        .as_str()
        .map(str::to_string)
}

fn open_params(params: &Json) -> Option<(String, i64, String)> {
    let doc = params.get("textDocument")?;
    let uri = doc.get("uri")?.as_str()?.to_string();
    let version = doc.get("version").and_then(Json::as_i64).unwrap_or(0);
    let text = doc.get("text")?.as_str()?.to_string();
    Some((uri, version, text))
}

fn did_change<W: Write>(
    engine: &mut ServeEngine,
    output: &mut W,
    params: &Json,
) -> Result<(), String> {
    let uri = uri_param(params).ok_or("didChange missing textDocument.uri")?;
    let version = params
        .get("textDocument")
        .and_then(|d| d.get("version"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    let changes = params
        .get("contentChanges")
        .and_then(Json::as_arr)
        .ok_or("didChange missing contentChanges")?;
    // Apply in order: ranged changes batch into one incremental
    // revision; a change without a range replaces the whole document.
    let mut pending: Vec<RangeEdit> = Vec::new();
    for change in changes {
        if change.get("range").is_some() {
            pending.push(crate::rpc::parse_change(change)?);
        } else {
            if !pending.is_empty() {
                engine.change_ranges(&uri, &pending, version)?;
                pending.clear();
            }
            let text = change
                .get("text")
                .and_then(Json::as_str)
                .ok_or("change missing `text`")?;
            engine.change_full(&uri, text.to_string(), version)?;
        }
    }
    if !pending.is_empty() {
        engine.change_ranges(&uri, &pending, version)?;
    }
    publish(output, engine, &uri).map_err(|e| e.to_string())
}

/// Publishes the document's current diagnostics.
fn publish<W: Write>(output: &mut W, engine: &ServeEngine, uri: &str) -> std::io::Result<()> {
    let Some(doc) = engine.document(uri) else {
        return Ok(());
    };
    let items: Vec<Json> = diagnostics(doc)
        .into_iter()
        .map(|d| {
            // LSP severity: 1 = Error, 2 = Warning. A timeout is not a
            // typing verdict, so it warns instead of erroring.
            let severity = if d.kind == "timeout" { 2 } else { 1 };
            let mut data = vec![("rendered", Json::Str(d.rendered))];
            if let Some(def) = d.def {
                data.push(("def", Json::Str(def)));
            }
            Json::obj(vec![
                ("range", range_json(doc, d.span)),
                ("severity", Json::Int(severity)),
                ("source", Json::Str("rowpoly".to_string())),
                ("message", Json::Str(d.message)),
                ("data", Json::obj(data)),
            ])
        })
        .collect();
    notify(
        output,
        "textDocument/publishDiagnostics",
        Json::obj(vec![
            ("uri", Json::Str(uri.to_string())),
            ("version", Json::Int(doc.version)),
            ("diagnostics", Json::Arr(items)),
        ]),
    )
}

fn hover_result(engine: &ServeEngine, params: &Json) -> Result<Json, (i64, String)> {
    let uri = uri_param(params).ok_or((INVALID_PARAMS, "hover missing uri".to_string()))?;
    let pos = params
        .get("position")
        .ok_or((INVALID_PARAMS, "hover missing position".to_string()))?;
    let line = pos.get("line").and_then(Json::as_i64).unwrap_or(0).max(0) as usize;
    let character = pos
        .get("character")
        .and_then(Json::as_i64)
        .unwrap_or(0)
        .max(0) as usize;
    let Some(h) = engine.hover(&uri, line, character) else {
        return Ok(Json::Null);
    };
    let doc = engine.document(&uri).expect("hover implies open");
    let value = match (&h.scheme, h.sat_class) {
        (Some(scheme), Some(class)) => {
            format!("```\n{} : {}\n```\n\nSAT class: {}", h.name, scheme, class)
        }
        _ => format!("`{}` — {}", h.name, h.status),
    };
    Ok(Json::obj(vec![
        (
            "contents",
            Json::obj(vec![
                ("kind", Json::Str("markdown".to_string())),
                ("value", Json::Str(value)),
            ]),
        ),
        ("range", range_json(doc, h.span)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &str) -> String {
        format!("Content-Length: {}\r\n\r\n{}", body.len(), body)
    }

    /// Runs the LSP loop in-process and returns the decoded frames.
    fn run(messages: &[&str]) -> Vec<Json> {
        let input: String = messages.iter().map(|m| frame(m)).collect();
        let mut output = Vec::new();
        serve(input.as_bytes(), &mut output, ServeConfig::default()).expect("io");
        let mut cursor = std::io::Cursor::new(output);
        let mut frames = Vec::new();
        while let Some(body) = read_frame(&mut cursor).expect("well-framed") {
            frames.push(json::parse(&body).expect("json"));
        }
        frames
    }

    fn find<'a>(frames: &'a [Json], method: &str) -> Vec<&'a Json> {
        frames
            .iter()
            .filter(|f| f.get("method").and_then(Json::as_str) == Some(method))
            .collect()
    }

    #[test]
    fn lifecycle_with_incremental_sync_and_hover() {
        let frames = run(&[
            r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#,
            r#"{"jsonrpc":"2.0","method":"initialized"}"#,
            r#"{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{"textDocument":{"uri":"file:///a.rp","version":1,"text":"def a = 1\ndef b = a + 1"}}}"#,
            r#"{"jsonrpc":"2.0","method":"textDocument/didChange","params":{"textDocument":{"uri":"file:///a.rp","version":2},"contentChanges":[{"range":{"start":{"line":0,"character":8},"end":{"line":0,"character":9}},"text":"41"}]}}"#,
            r#"{"jsonrpc":"2.0","id":2,"method":"textDocument/hover","params":{"textDocument":{"uri":"file:///a.rp"},"position":{"line":0,"character":4}}}"#,
            r#"{"jsonrpc":"2.0","id":3,"method":"shutdown"}"#,
            r#"{"jsonrpc":"2.0","method":"exit"}"#,
        ]);

        let init = &frames[0];
        let sync = init
            .get("result")
            .and_then(|r| r.get("capabilities"))
            .and_then(|c| c.get("textDocumentSync"))
            .expect("caps");
        assert_eq!(sync.get("change").and_then(Json::as_i64), Some(2));

        let published = find(&frames, "textDocument/publishDiagnostics");
        assert_eq!(published.len(), 2, "one per revision");
        for p in &published {
            let diags = p
                .get("params")
                .and_then(|p| p.get("diagnostics"))
                .and_then(Json::as_arr)
                .expect("list");
            assert!(diags.is_empty(), "clean file: {p}");
        }

        let hover = frames
            .iter()
            .find(|f| f.get("id").and_then(Json::as_i64) == Some(2))
            .expect("hover response");
        let value = hover
            .get("result")
            .and_then(|r| r.get("contents"))
            .and_then(|c| c.get("value"))
            .and_then(Json::as_str)
            .expect("markdown");
        assert!(value.contains("a : Int"), "{value}");
        assert!(value.contains("SAT class"), "{value}");
    }

    #[test]
    fn errors_publish_diagnostics_with_explained_rendering() {
        let frames = run(&[
            r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#,
            r#"{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{"textDocument":{"uri":"file:///bad.rp","version":1,"text":"def bad = #foo {}"}}}"#,
            r#"{"jsonrpc":"2.0","method":"exit"}"#,
        ]);
        let published = find(&frames, "textDocument/publishDiagnostics");
        let diags = published[0]
            .get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(Json::as_arr)
            .expect("list");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("severity").and_then(Json::as_i64), Some(1));
        assert!(diags[0]
            .get("data")
            .and_then(|d| d.get("rendered"))
            .and_then(Json::as_str)
            .expect("rendered")
            .contains("never added"));
        let range = diags[0].get("range").expect("range");
        assert_eq!(
            range
                .get("start")
                .and_then(|s| s.get("line"))
                .and_then(Json::as_i64),
            Some(0)
        );
    }

    #[test]
    fn unknown_requests_get_method_not_found() {
        let frames = run(&[
            r#"{"jsonrpc":"2.0","id":9,"method":"textDocument/definition","params":{}}"#,
            r#"{"jsonrpc":"2.0","method":"exit"}"#,
        ]);
        let err = frames[0].get("error").expect("error");
        assert_eq!(
            err.get("code").and_then(Json::as_i64),
            Some(METHOD_NOT_FOUND)
        );
    }
}
