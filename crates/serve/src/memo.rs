//! The hot in-memory memo layer of the query graph.
//!
//! Every memoized query result is keyed by a 64-bit content
//! fingerprint (the same [`rowpoly_batch::cache::Cache::key`]
//! derivation the persistent cache uses), so the store needs no
//! explicit invalidation: an edit re-keys exactly the queries whose
//! *meaning-relevant* inputs changed, and a stale entry is simply a
//! key nobody asks for any more. What the store does need is
//! *eviction* — a long-lived daemon would otherwise accumulate one
//! entry per historical revision of every definition — so entries
//! carry the revision that last touched them and [`Memo::prune`]
//! drops the least-recently-used half once a cap is exceeded.
//!
//! The memo is bounded two ways: an entry-count cap and an optional
//! *byte* bound. Each entry carries a deterministic size estimate
//! (struct sizes plus the canonical-JSON length of its schemes — the
//! same rendering the cache keys already use), accumulated into
//! [`Memo::live_bytes`], so the bound holds identically whether or not
//! the counting allocator is enabled. Real allocator attribution runs
//! alongside: memo mutations execute under the `serve.memo`
//! [`MemSite`], so `rowpoly serve` memory reports show the memo's
//! measured net bytes next to this estimate.

use std::collections::HashMap;

use rowpoly_batch::cache::CachedDef;
use rowpoly_batch::codec;
use rowpoly_obs::MemSite;

/// Attribution site for the memo table's allocations (see
/// `rowpoly-obs::mem`). Lookup and insert both run under it.
static MEMO_MEM: MemSite = MemSite::new("serve.memo");

/// One memoized verdict-query result: the closed per-definition
/// outcomes of a fully-successful group (the serve layer, like the
/// persistent cache, never memoizes failures — they are cheap to
/// reproduce and their diagnostics carry spans that go stale with the
/// next keystroke).
#[derive(Debug)]
struct Entry {
    defs: Vec<CachedDef>,
    last_used: u64,
    /// Deterministic size estimate of this entry (see [`entry_bytes`]).
    bytes: u64,
}

/// A bounded, revision-stamped memo table.
#[derive(Debug)]
pub struct Memo {
    entries: HashMap<u64, Entry>,
    /// Entry cap; pruning kicks in above it.
    cap: usize,
    /// Optional byte bound over the summed entry estimates; pruning
    /// also kicks in above it.
    max_bytes: Option<u64>,
    /// Sum of the live entries' size estimates.
    live_bytes: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by pruning.
    pub evicted: u64,
}

/// Deterministic size estimate of one memo entry: fixed struct sizes
/// plus the canonical-JSON length of each scheme — the same rendering
/// [`rowpoly_batch::cache::Cache::key`] hashes, so the estimate tracks
/// the scheme's real complexity without depending on allocator state.
fn entry_bytes(defs: &[CachedDef]) -> u64 {
    let fixed = std::mem::size_of::<Entry>() + std::mem::size_of_val(defs);
    let schemes: usize = defs
        .iter()
        .map(|d| codec::scheme_to_json(&d.scheme).render().len())
        .sum();
    (fixed + schemes) as u64
}

impl Memo {
    /// A memo bounded to `cap` entries (no byte bound).
    pub fn new(cap: usize) -> Memo {
        Memo::with_bounds(cap, None)
    }

    /// A memo bounded to `cap` entries and, when given, `max_bytes` of
    /// estimated entry weight.
    pub fn with_bounds(cap: usize, max_bytes: Option<u64>) -> Memo {
        Memo {
            entries: HashMap::new(),
            cap: cap.max(2),
            max_bytes,
            live_bytes: 0,
            hits: 0,
            misses: 0,
            evicted: 0,
        }
    }

    /// Looks up `key`, stamping the entry with `revision` and counting
    /// the hit or miss.
    pub fn lookup(&mut self, key: u64, revision: u64) -> Option<&[CachedDef]> {
        let _mem = MEMO_MEM.scope();
        match self.entries.get_mut(&key) {
            Some(entry) => {
                self.hits += 1;
                entry.last_used = revision;
                Some(&entry.defs)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a group outcome under `key`.
    pub fn insert(&mut self, key: u64, defs: Vec<CachedDef>, revision: u64) {
        let _mem = MEMO_MEM.scope();
        let bytes = entry_bytes(&defs);
        let old = self.entries.insert(
            key,
            Entry {
                defs,
                last_used: revision,
                bytes,
            },
        );
        self.live_bytes += bytes;
        if let Some(old) = old {
            self.live_bytes -= old.bytes;
        }
        self.prune();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Summed size estimate of the live entries.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// The configured byte bound, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Drops least-recently-used halves of the entries while either
    /// bound (entry cap or byte bound) is exceeded. Amortized O(1) per
    /// insert for the cap: pruning halves the table, so it runs at most
    /// once per cap/2 inserts. The byte bound iterates because one
    /// halving may not shed enough weight; every pass removes at least
    /// one entry, so it terminates (an over-bound *single* entry is
    /// kept — the memo never evicts below one entry).
    fn prune(&mut self) {
        loop {
            let over_cap = self.entries.len() > self.cap;
            let over_bytes = self.max_bytes.is_some_and(|mb| self.live_bytes > mb);
            if !(over_cap || over_bytes) || self.entries.len() <= 1 {
                return;
            }
            let mut stamps: Vec<u64> = self.entries.values().map(|e| e.last_used).collect();
            stamps.sort_unstable();
            let cutoff = stamps[stamps.len() / 2];
            let before = self.entries.len();
            // Keep entries used strictly after the median stamp, plus
            // enough at the median to stay near half occupancy.
            let mut freed = 0u64;
            self.entries.retain(|_, e| {
                let keep = e.last_used > cutoff;
                if !keep {
                    freed += e.bytes;
                }
                keep
            });
            self.live_bytes -= freed;
            let dropped = before - self.entries.len();
            self.evicted += dropped as u64;
            if dropped == 0 {
                // Every entry shares the newest stamp; nothing more to
                // distinguish by recency.
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_boolfun::SatClass;
    use rowpoly_lang::Symbol;
    use rowpoly_types::{Scheme, Ty};

    fn defs(tag: &str) -> Vec<CachedDef> {
        vec![CachedDef {
            name: Symbol::intern(tag),
            scheme: Scheme::new(vec![], Ty::Int),
            sat_class: SatClass::Trivial,
        }]
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut m = Memo::new(16);
        assert!(m.lookup(1, 0).is_none());
        m.insert(1, defs("a"), 0);
        assert!(m.lookup(1, 1).is_some());
        assert_eq!((m.hits, m.misses), (1, 1));
    }

    #[test]
    fn pruning_keeps_recently_used_entries() {
        let mut m = Memo::new(8);
        for key in 0..8u64 {
            m.insert(key, defs("old"), key);
        }
        // Refresh key 7 at a late revision, then overflow the cap.
        assert!(m.lookup(7, 100).is_some());
        m.insert(99, defs("new"), 101);
        assert!(m.len() <= 8, "pruned below cap, got {}", m.len());
        assert!(m.evicted > 0);
        assert!(m.lookup(7, 102).is_some(), "recently-used entry survived");
        assert!(m.lookup(99, 102).is_some(), "new entry survived");
    }
}
