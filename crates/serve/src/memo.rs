//! The hot in-memory memo layer of the query graph.
//!
//! Every memoized query result is keyed by a 64-bit content
//! fingerprint (the same [`rowpoly_batch::cache::Cache::key`]
//! derivation the persistent cache uses), so the store needs no
//! explicit invalidation: an edit re-keys exactly the queries whose
//! *meaning-relevant* inputs changed, and a stale entry is simply a
//! key nobody asks for any more. What the store does need is
//! *eviction* — a long-lived daemon would otherwise accumulate one
//! entry per historical revision of every definition — so entries
//! carry the revision that last touched them and [`Memo::prune`]
//! drops the least-recently-used half once a cap is exceeded.

use std::collections::HashMap;

use rowpoly_batch::cache::CachedDef;

/// One memoized verdict-query result: the closed per-definition
/// outcomes of a fully-successful group (the serve layer, like the
/// persistent cache, never memoizes failures — they are cheap to
/// reproduce and their diagnostics carry spans that go stale with the
/// next keystroke).
#[derive(Debug)]
struct Entry {
    defs: Vec<CachedDef>,
    last_used: u64,
}

/// A bounded, revision-stamped memo table.
#[derive(Debug)]
pub struct Memo {
    entries: HashMap<u64, Entry>,
    /// Entry cap; pruning kicks in above it.
    cap: usize,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by pruning.
    pub evicted: u64,
}

impl Memo {
    /// A memo bounded to `cap` entries.
    pub fn new(cap: usize) -> Memo {
        Memo {
            entries: HashMap::new(),
            cap: cap.max(2),
            hits: 0,
            misses: 0,
            evicted: 0,
        }
    }

    /// Looks up `key`, stamping the entry with `revision` and counting
    /// the hit or miss.
    pub fn lookup(&mut self, key: u64, revision: u64) -> Option<&[CachedDef]> {
        match self.entries.get_mut(&key) {
            Some(entry) => {
                self.hits += 1;
                entry.last_used = revision;
                Some(&entry.defs)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a group outcome under `key`.
    pub fn insert(&mut self, key: u64, defs: Vec<CachedDef>, revision: u64) {
        self.entries.insert(
            key,
            Entry {
                defs,
                last_used: revision,
            },
        );
        self.prune();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops the least-recently-used half of the entries once the cap
    /// is exceeded. Amortized O(1) per insert: pruning halves the
    /// table, so it runs at most once per cap/2 inserts.
    fn prune(&mut self) {
        if self.entries.len() <= self.cap {
            return;
        }
        let mut stamps: Vec<u64> = self.entries.values().map(|e| e.last_used).collect();
        stamps.sort_unstable();
        let cutoff = stamps[stamps.len() / 2];
        let before = self.entries.len();
        // Keep entries used strictly after the median stamp, plus
        // enough at the median to stay near half occupancy.
        self.entries.retain(|_, e| e.last_used > cutoff);
        self.evicted += (before - self.entries.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpoly_boolfun::SatClass;
    use rowpoly_lang::Symbol;
    use rowpoly_types::{Scheme, Ty};

    fn defs(tag: &str) -> Vec<CachedDef> {
        vec![CachedDef {
            name: Symbol::intern(tag),
            scheme: Scheme::new(vec![], Ty::Int),
            sat_class: SatClass::Trivial,
        }]
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut m = Memo::new(16);
        assert!(m.lookup(1, 0).is_none());
        m.insert(1, defs("a"), 0);
        assert!(m.lookup(1, 1).is_some());
        assert_eq!((m.hits, m.misses), (1, 1));
    }

    #[test]
    fn pruning_keeps_recently_used_entries() {
        let mut m = Memo::new(8);
        for key in 0..8u64 {
            m.insert(key, defs("old"), key);
        }
        // Refresh key 7 at a late revision, then overflow the cap.
        assert!(m.lookup(7, 100).is_some());
        m.insert(99, defs("new"), 101);
        assert!(m.len() <= 8, "pruned below cap, got {}", m.len());
        assert!(m.evicted > 0);
        assert!(m.lookup(7, 102).is_some(), "recently-used entry survived");
        assert!(m.lookup(99, 102).is_some(), "new entry survived");
    }
}
