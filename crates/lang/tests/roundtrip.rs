//! Pretty-printer/parser round-trip on random ASTs: `parse(pretty(e))`
//! reproduces `e` up to spans.

use proptest::prelude::*;
use rowpoly_lang::{
    parse_expr, pretty_expr, BinOp, Expr, ExprKind, Span, Symbol,
};

const NAMES: [&str; 5] = ["x", "y", "zed", "foo", "bar2"];

fn name() -> impl Strategy<Value = Symbol> {
    (0..NAMES.len()).prop_map(|i| Symbol::intern(NAMES[i]))
}

fn expr() -> impl Strategy<Value = Expr> {
    let mk = |kind| Expr::new(kind, Span::dummy());
    let leaf = prop_oneof![
        name().prop_map(move |s| Expr::new(ExprKind::Var(s), Span::dummy())),
        (-1000i64..1000).prop_map(move |n| Expr::new(ExprKind::Int(n), Span::dummy())),
        // Printable string literals only (the lexer accepts ASCII).
        "[a-z ]{0,6}".prop_map(move |s| Expr::new(ExprKind::Str(s), Span::dummy())),
        Just(mk(ExprKind::Empty)),
        name().prop_map(|n| Expr::new(ExprKind::Select(n), Span::dummy())),
        name().prop_map(|n| Expr::new(ExprKind::Remove(n), Span::dummy())),
        (name(), name())
            .prop_map(|(a, b)| Expr::new(ExprKind::Rename(a, b), Span::dummy())),
    ];
    leaf.prop_recursive(4, 40, 3, |inner| {
        let e = inner.clone();
        prop_oneof![
            (name(), e.clone()).prop_map(|(x, b)| Expr::new(
                ExprKind::Lam(x, Box::new(b)),
                Span::dummy()
            )),
            (e.clone(), e.clone()).prop_map(|(f, a)| Expr::new(
                ExprKind::App(Box::new(f), Box::new(a)),
                Span::dummy()
            )),
            (name(), e.clone(), e.clone()).prop_map(|(n, b, k)| Expr::new(
                ExprKind::Let { name: n, bound: Box::new(b), body: Box::new(k) },
                Span::dummy()
            )),
            (e.clone(), e.clone(), e.clone()).prop_map(|(c, t, f)| Expr::new(
                ExprKind::If(Box::new(c), Box::new(t), Box::new(f)),
                Span::dummy()
            )),
            (name(), e.clone()).prop_map(|(n, v)| Expr::new(
                ExprKind::Update(n, Box::new(v)),
                Span::dummy()
            )),
            (e.clone(), e.clone()).prop_map(|(a, b)| Expr::new(
                ExprKind::Concat(Box::new(a), Box::new(b)),
                Span::dummy()
            )),
            (e.clone(), e.clone()).prop_map(|(a, b)| Expr::new(
                ExprKind::SymConcat(Box::new(a), Box::new(b)),
                Span::dummy()
            )),
            (name(), name(), e.clone(), e.clone()).prop_map(|(f, s, t, el)| Expr::new(
                ExprKind::When {
                    field: f,
                    subject: s,
                    then_branch: Box::new(t),
                    else_branch: Box::new(el),
                },
                Span::dummy()
            )),
            prop::collection::vec(e.clone(), 0..3)
                .prop_map(|items| Expr::new(ExprKind::List(items), Span::dummy())),
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Eq),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                e.clone(),
                e
            )
                .prop_map(|(op, a, b)| Expr::new(
                    ExprKind::BinOp(op, Box::new(a), Box::new(b)),
                    Span::dummy()
                )),
        ]
    })
}

/// Structural equality modulo spans.
fn normalize(e: &Expr) -> Expr {
    let mut c = e.clone();
    strip(&mut c);
    c
}

fn strip(e: &mut Expr) {
    e.span = Span::dummy();
    match &mut e.kind {
        ExprKind::List(items) => items.iter_mut().for_each(strip),
        ExprKind::Lam(_, b) | ExprKind::Update(_, b) => strip(b),
        ExprKind::App(a, b)
        | ExprKind::Concat(a, b)
        | ExprKind::SymConcat(a, b)
        | ExprKind::BinOp(_, a, b) => {
            strip(a);
            strip(b);
        }
        ExprKind::Let { bound, body, .. } => {
            strip(bound);
            strip(body);
        }
        ExprKind::If(a, b, c) => {
            strip(a);
            strip(b);
            strip(c);
        }
        ExprKind::When { then_branch, else_branch, .. } => {
            strip(then_branch);
            strip(else_branch);
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pretty_then_parse_is_identity(e in expr()) {
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|d| panic!("unparseable output: {d}\n---\n{printed}"));
        prop_assert_eq!(
            normalize(&reparsed),
            normalize(&e),
            "round trip changed the tree:\n{}",
            printed
        );
    }

    /// Printing is deterministic.
    #[test]
    fn printing_is_deterministic(e in expr()) {
        prop_assert_eq!(pretty_expr(&e), pretty_expr(&e));
    }

    /// Free variables are preserved by the round trip.
    #[test]
    fn free_vars_preserved(e in expr()) {
        let printed = pretty_expr(&e);
        if let Ok(reparsed) = parse_expr(&printed) {
            prop_assert_eq!(reparsed.free_vars(), e.free_vars());
        }
    }
}
