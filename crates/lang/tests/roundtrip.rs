//! Pretty-printer/parser round-trip on random ASTs: `parse(pretty(e))`
//! reproduces `e` up to spans.
//!
//! Random trees come from the in-tree seeded PRNG (`rowpoly_obs::rng`);
//! case counts scale with the `exhaustive` feature.

use rowpoly_lang::{parse_expr, pretty_expr, BinOp, Expr, ExprKind, Span, Symbol};
use rowpoly_obs::cases;
use rowpoly_obs::rng::SplitMix64;

const NAMES: [&str; 5] = ["x", "y", "zed", "foo", "bar2"];

fn name(rng: &mut SplitMix64) -> Symbol {
    Symbol::intern(NAMES[rng.gen_range(0..NAMES.len())])
}

fn mk(kind: ExprKind) -> Expr {
    Expr::new(kind, Span::dummy())
}

fn leaf(rng: &mut SplitMix64) -> Expr {
    match rng.gen_range(0..7u8) {
        0 => mk(ExprKind::Var(name(rng))),
        1 => mk(ExprKind::Int(rng.gen_range(-1000i64..1000))),
        2 => {
            // Printable string literals only (the lexer accepts ASCII).
            let len = rng.gen_range(0..7usize);
            let s: String = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        ' '
                    } else {
                        (b'a' + rng.gen_range(0..26u8)) as char
                    }
                })
                .collect();
            mk(ExprKind::Str(s))
        }
        3 => mk(ExprKind::Empty),
        4 => mk(ExprKind::Select(name(rng))),
        5 => mk(ExprKind::Remove(name(rng))),
        _ => mk(ExprKind::Rename(name(rng), name(rng))),
    }
}

fn expr(rng: &mut SplitMix64, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        return leaf(rng);
    }
    let d = depth - 1;
    match rng.gen_range(0..10u8) {
        0 => mk(ExprKind::Lam(name(rng), Box::new(expr(rng, d)))),
        1 => mk(ExprKind::App(
            Box::new(expr(rng, d)),
            Box::new(expr(rng, d)),
        )),
        2 => mk(ExprKind::Let {
            name: name(rng),
            bound: Box::new(expr(rng, d)),
            body: Box::new(expr(rng, d)),
        }),
        3 => mk(ExprKind::If(
            Box::new(expr(rng, d)),
            Box::new(expr(rng, d)),
            Box::new(expr(rng, d)),
        )),
        4 => mk(ExprKind::Update(name(rng), Box::new(expr(rng, d)))),
        5 => mk(ExprKind::Concat(
            Box::new(expr(rng, d)),
            Box::new(expr(rng, d)),
        )),
        6 => mk(ExprKind::SymConcat(
            Box::new(expr(rng, d)),
            Box::new(expr(rng, d)),
        )),
        7 => mk(ExprKind::When {
            field: name(rng),
            subject: name(rng),
            then_branch: Box::new(expr(rng, d)),
            else_branch: Box::new(expr(rng, d)),
        }),
        8 => {
            let n = rng.gen_range(0..3usize);
            mk(ExprKind::List((0..n).map(|_| expr(rng, d)).collect()))
        }
        _ => {
            let op = match rng.gen_range(0..8u8) {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Eq,
                4 => BinOp::Lt,
                5 => BinOp::Le,
                6 => BinOp::And,
                _ => BinOp::Or,
            };
            mk(ExprKind::BinOp(
                op,
                Box::new(expr(rng, d)),
                Box::new(expr(rng, d)),
            ))
        }
    }
}

/// Structural equality modulo spans.
fn normalize(e: &Expr) -> Expr {
    let mut c = e.clone();
    strip(&mut c);
    c
}

fn strip(e: &mut Expr) {
    e.span = Span::dummy();
    match &mut e.kind {
        ExprKind::List(items) => items.iter_mut().for_each(strip),
        ExprKind::Lam(_, b) | ExprKind::Update(_, b) => strip(b),
        ExprKind::App(a, b)
        | ExprKind::Concat(a, b)
        | ExprKind::SymConcat(a, b)
        | ExprKind::BinOp(_, a, b) => {
            strip(a);
            strip(b);
        }
        ExprKind::Let { bound, body, .. } => {
            strip(bound);
            strip(body);
        }
        ExprKind::If(a, b, c) => {
            strip(a);
            strip(b);
            strip(c);
        }
        ExprKind::When {
            then_branch,
            else_branch,
            ..
        } => {
            strip(then_branch);
            strip(else_branch);
        }
        _ => {}
    }
}

#[test]
fn pretty_then_parse_is_identity() {
    let mut rng = SplitMix64::seed_from_u64(0x1A51);
    for _ in 0..cases(512) {
        let e = expr(&mut rng, 4);
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|d| panic!("unparseable output: {d}\n---\n{printed}"));
        assert_eq!(
            normalize(&reparsed),
            normalize(&e),
            "round trip changed the tree:\n{printed}"
        );
    }
}

/// Printing is deterministic.
#[test]
fn printing_is_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0x1A52);
    for _ in 0..cases(512) {
        let e = expr(&mut rng, 4);
        assert_eq!(pretty_expr(&e), pretty_expr(&e));
    }
}

/// Free variables are preserved by the round trip.
#[test]
fn free_vars_preserved() {
    let mut rng = SplitMix64::seed_from_u64(0x1A53);
    for _ in 0..cases(512) {
        let e = expr(&mut rng, 4);
        let printed = pretty_expr(&e);
        if let Ok(reparsed) = parse_expr(&printed) {
            assert_eq!(reparsed.free_vars(), e.free_vars());
        }
    }
}
