//! Lexer/parser edge cases beyond the in-module unit tests.

use rowpoly_lang::{lex, parse_expr, parse_program, ExprKind, Symbol, TokenKind};

#[test]
fn keyword_prefixed_identifiers_lex_as_identifiers() {
    for word in [
        "lets",
        "iff",
        "thenx",
        "elsewhere",
        "whenever",
        "inner",
        "defs",
    ] {
        let toks = lex(word).unwrap();
        assert!(
            matches!(toks[0].kind, TokenKind::Ident(_)),
            "{word} must be an identifier, got {:?}",
            toks[0].kind
        );
    }
}

#[test]
fn primed_identifiers_are_allowed() {
    let e = parse_expr("let s' = 1 in s'").unwrap();
    assert!(matches!(e.kind, ExprKind::Let { name, .. } if name == Symbol::intern("s'")));
}

#[test]
fn comment_at_eof_without_newline() {
    let toks = lex("42 -- trailing").unwrap();
    assert_eq!(toks[0].kind, TokenKind::Int(42));
    assert_eq!(toks[1].kind, TokenKind::Eof);
}

#[test]
fn deeply_nested_parens() {
    // Parser recursion costs ~8 frames per paren (one per precedence
    // level); keep the depth within default test stacks.
    let mut src = String::new();
    src.push_str(&"(".repeat(48));
    src.push('1');
    src.push_str(&")".repeat(48));
    assert!(parse_expr(&src).is_ok());
}

#[test]
fn shadowing_parses_into_nested_binders() {
    let e = parse_expr(r"\x . let x = x + 1 in x").unwrap();
    match &e.kind {
        ExprKind::Lam(x, body) => {
            assert_eq!(*x, Symbol::intern("x"));
            assert!(matches!(body.kind, ExprKind::Let { .. }));
        }
        other => panic!("expected lambda, got {other:?}"),
    }
}

#[test]
fn empty_program_is_fine_empty_expr_is_not() {
    assert!(parse_program("").unwrap().defs.is_empty());
    assert!(parse_expr("").is_err());
}

#[test]
fn update_requires_a_field() {
    assert!(parse_expr("@{} r").is_err());
}

#[test]
fn negative_literals_in_all_positions() {
    assert!(parse_expr("-5").is_ok());
    assert!(parse_expr("f (-5)").is_ok());
    assert!(parse_expr("[-1, 2, -3]").is_ok());
    assert!(parse_expr("{a = -1}").is_ok());
    // `f -5` is subtraction, not application.
    let e = parse_expr("f - 5").unwrap();
    assert!(matches!(e.kind, ExprKind::BinOp(..)));
}

#[test]
fn when_subject_must_be_a_variable() {
    assert!(parse_expr("when a in {a = 1} then 1 else 2").is_err());
    assert!(parse_expr("when a in r then 1 else 2").is_ok());
}

#[test]
fn error_spans_point_into_source() {
    let err = parse_expr("let x = in x").unwrap_err();
    let rendered = err.render("let x = in x");
    assert!(rendered.contains("-->"));
    assert!(rendered.contains('^'));
}

#[test]
fn selector_of_keywordish_field() {
    // Field names share the identifier namespace; keyword-prefixed ones
    // are fine.
    assert!(parse_expr("#inner r").is_ok());
    // But actual keywords are not identifiers.
    assert!(parse_expr("#in r").is_err());
}

#[test]
fn concat_chain_associates_left() {
    let e = parse_expr("a @ b @@ c @ d").unwrap();
    // (((a @ b) @@ c) @ d)
    match &e.kind {
        ExprKind::Concat(lhs, _) => match &lhs.kind {
            ExprKind::SymConcat(inner, _) => {
                assert!(matches!(inner.kind, ExprKind::Concat(..)));
            }
            other => panic!("expected @@, got {other:?}"),
        },
        other => panic!("expected @, got {other:?}"),
    }
}
