//! Recursive-descent parser with precedence climbing.
//!
//! Grammar sketch (binders extend as far right as possible):
//!
//! ```text
//! program  ::= def*
//! def      ::= "def" ident ident* "=" expr
//! expr     ::= "\" ident+ "." expr
//!            | "let" binding (";" binding)* "in" expr
//!            | "if" expr "then" expr "else" expr
//!            | "when" ident "in" ident "then" expr "else" expr
//!            | or
//! binding  ::= ident ident* "=" expr
//! or       ::= and ("||" and)*
//! and      ::= cmp ("&&" cmp)*
//! cmp      ::= concat (("==" | "<" | "<=") concat)?
//! concat   ::= add (("@" | "@@") add)*
//! add      ::= mul (("+" | "-") mul)*
//! mul      ::= app ("*" app)*
//! app      ::= atom atom*
//! atom     ::= ident | int | string | "{}" | "{" fields "}" | "[" exprs "]"
//!            | "#" ident | "@{" fields "}" | "%" ident
//!            | "^{" ident "->" ident "}" | "(" expr ")"
//! ```
//!
//! Sugar performed during parsing:
//! * `{a = 1, b = 2}` becomes `@{b = 2} (@{a = 1} {})`;
//! * a multi-field update `@{a = 1, b = 2}` becomes
//!   `\r . @{b = 2} (@{a = 1} r)` with a fresh `r`;
//! * `let f x y = e in …` becomes `let f = \x . \y . e in …` (same for
//!   `def`).

use crate::ast::{BinOp, Def, Expr, ExprKind, Program};
use crate::diag::Diag;
use crate::lexer::lex;
use crate::span::Span;
use crate::symbol::Symbol;
use crate::token::{Token, TokenKind};

/// Parses a whole program (a sequence of `def` items).
pub fn parse_program(source: &str) -> Result<Program, Diag> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut defs = Vec::new();
    while p.peek() != &TokenKind::Eof {
        defs.push(p.def()?);
    }
    Ok(Program { defs })
}

/// Parses a single expression (the whole input must be consumed).
pub fn parse_expr(source: &str) -> Result<Expr, Diag> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diag> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(Diag::error(
                self.peek_span(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn ident(&mut self) -> Result<(Symbol, Span), Diag> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                let span = self.peek_span();
                self.bump();
                Ok((s, span))
            }
            other => Err(Diag::error(
                self.peek_span(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn def(&mut self) -> Result<Def, Diag> {
        let start = self.expect(TokenKind::Def)?.span;
        let (name, _) = self.ident()?;
        let mut params = Vec::new();
        while let TokenKind::Ident(p) = self.peek() {
            params.push(*p);
            self.bump();
        }
        self.expect(TokenKind::Eq)?;
        let mut body = self.expr()?;
        let span = start.to(body.span);
        for &p in params.iter().rev() {
            let bspan = body.span;
            body = Expr::new(ExprKind::Lam(p, Box::new(body)), bspan);
        }
        Ok(Def { name, span, body })
    }

    fn expr(&mut self) -> Result<Expr, Diag> {
        match self.peek() {
            TokenKind::Lambda => self.lambda(),
            TokenKind::Let => self.let_expr(),
            TokenKind::If => self.if_expr(),
            TokenKind::When => self.when_expr(),
            _ => self.binary(1),
        }
    }

    fn lambda(&mut self) -> Result<Expr, Diag> {
        let start = self.bump().span; // `\`
        let mut params = vec![self.ident()?.0];
        while let TokenKind::Ident(_) = self.peek() {
            params.push(self.ident()?.0);
        }
        // Accept both `\x . e` and `\x -> e`.
        if !self.eat(&TokenKind::Dot) {
            self.expect(TokenKind::Arrow)?;
        }
        let mut body = self.expr()?;
        let span = start.to(body.span);
        for &p in params.iter().rev() {
            body = Expr::new(ExprKind::Lam(p, Box::new(body)), span);
        }
        Ok(body)
    }

    fn let_expr(&mut self) -> Result<Expr, Diag> {
        let start = self.bump().span; // `let`
        let mut bindings = vec![self.binding()?];
        while self.eat(&TokenKind::Semi) {
            bindings.push(self.binding()?);
        }
        self.expect(TokenKind::In)?;
        let mut body = self.expr()?;
        let span = start.to(body.span);
        for (name, bound) in bindings.into_iter().rev() {
            body = Expr::new(
                ExprKind::Let {
                    name,
                    bound: Box::new(bound),
                    body: Box::new(body),
                },
                span,
            );
        }
        Ok(body)
    }

    fn binding(&mut self) -> Result<(Symbol, Expr), Diag> {
        let (name, _) = self.ident()?;
        let mut params = Vec::new();
        while let TokenKind::Ident(p) = self.peek() {
            params.push(*p);
            self.bump();
        }
        self.expect(TokenKind::Eq)?;
        let mut bound = self.expr()?;
        for &p in params.iter().rev() {
            let span = bound.span;
            bound = Expr::new(ExprKind::Lam(p, Box::new(bound)), span);
        }
        Ok((name, bound))
    }

    fn if_expr(&mut self) -> Result<Expr, Diag> {
        let start = self.bump().span; // `if`
        let cond = self.expr()?;
        self.expect(TokenKind::Then)?;
        let then_branch = self.expr()?;
        self.expect(TokenKind::Else)?;
        let else_branch = self.expr()?;
        let span = start.to(else_branch.span);
        Ok(Expr::new(
            ExprKind::If(Box::new(cond), Box::new(then_branch), Box::new(else_branch)),
            span,
        ))
    }

    fn when_expr(&mut self) -> Result<Expr, Diag> {
        let start = self.bump().span; // `when`
        let (field, _) = self.ident()?;
        self.expect(TokenKind::In)?;
        let (subject, _) = self.ident()?;
        self.expect(TokenKind::Then)?;
        let then_branch = self.expr()?;
        self.expect(TokenKind::Else)?;
        let else_branch = self.expr()?;
        let span = start.to(else_branch.span);
        Ok(Expr::new(
            ExprKind::When {
                field,
                subject,
                then_branch: Box::new(then_branch),
                else_branch: Box::new(else_branch),
            },
            span,
        ))
    }

    /// Precedence climbing over binary operators. Levels:
    /// 1 `||`, 2 `&&`, 3 comparisons (non-associative), 4 `@`/`@@`,
    /// 5 `+`/`-`, 6 `*`; application binds tighter than all of them.
    fn binary(&mut self, level: u8) -> Result<Expr, Diag> {
        if level > 6 {
            return self.application();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            let op = match (level, self.peek()) {
                (1, TokenKind::OrOr) => Some(BinaryTok::Op(BinOp::Or)),
                (2, TokenKind::AndAnd) => Some(BinaryTok::Op(BinOp::And)),
                (3, TokenKind::EqEq) => Some(BinaryTok::Op(BinOp::Eq)),
                (3, TokenKind::Lt) => Some(BinaryTok::Op(BinOp::Lt)),
                (3, TokenKind::Le) => Some(BinaryTok::Op(BinOp::Le)),
                (4, TokenKind::At) => Some(BinaryTok::Concat),
                (4, TokenKind::AtAt) => Some(BinaryTok::SymConcat),
                (5, TokenKind::Plus) => Some(BinaryTok::Op(BinOp::Add)),
                (5, TokenKind::Minus) => Some(BinaryTok::Op(BinOp::Sub)),
                (6, TokenKind::Star) => Some(BinaryTok::Op(BinOp::Mul)),
                _ => None,
            };
            let Some(op) = op else { return Ok(lhs) };
            self.bump();
            let rhs = self.binary(level + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                match op {
                    BinaryTok::Op(o) => ExprKind::BinOp(o, Box::new(lhs), Box::new(rhs)),
                    BinaryTok::Concat => ExprKind::Concat(Box::new(lhs), Box::new(rhs)),
                    BinaryTok::SymConcat => ExprKind::SymConcat(Box::new(lhs), Box::new(rhs)),
                },
                span,
            );
            // Comparisons are non-associative.
            if level == 3 {
                return Ok(lhs);
            }
        }
    }

    fn application(&mut self) -> Result<Expr, Diag> {
        let mut head = self.atom()?;
        while self.starts_atom() {
            let arg = self.atom()?;
            let span = head.span.to(arg.span);
            head = Expr::new(ExprKind::App(Box::new(head), Box::new(arg)), span);
        }
        Ok(head)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Ident(_)
                | TokenKind::Int(_)
                | TokenKind::Str(_)
                | TokenKind::LParen
                | TokenKind::LBrace
                | TokenKind::LBracket
                | TokenKind::Hash
                | TokenKind::AtBrace
                | TokenKind::Percent
                | TokenKind::CaretBrace
        )
    }

    fn atom(&mut self) -> Result<Expr, Diag> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Var(s), span))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(n), span))
            }
            TokenKind::Minus => {
                // Negative integer literal: `-` directly before a number
                // in atom position (binary subtraction is consumed at the
                // additive level before atoms are reached).
                self.bump();
                match self.peek().clone() {
                    TokenKind::Int(n) => {
                        let end = self.bump().span;
                        Ok(Expr::new(ExprKind::Int(-n), span.to(end)))
                    }
                    other => Err(Diag::error(
                        self.peek_span(),
                        format!("expected a number after `-`, found {}", other.describe()),
                    )),
                }
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                let end = self.expect(TokenKind::RParen)?.span;
                Ok(Expr::new(e.kind, span.to(end)))
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &TokenKind::RBracket {
                    items.push(self.expr()?);
                    while self.eat(&TokenKind::Comma) {
                        items.push(self.expr()?);
                    }
                }
                let end = self.expect(TokenKind::RBracket)?.span;
                Ok(Expr::new(ExprKind::List(items), span.to(end)))
            }
            TokenKind::LBrace => {
                self.bump();
                if self.peek() == &TokenKind::RBrace {
                    let end = self.bump().span;
                    return Ok(Expr::new(ExprKind::Empty, span.to(end)));
                }
                // Record literal sugar: {a = e1, b = e2} desugars to
                // updates applied to {}.
                let fields = self.field_list()?;
                let end = self.expect(TokenKind::RBrace)?.span;
                let full = span.to(end);
                let mut record = Expr::new(ExprKind::Empty, full);
                for (name, value) in fields {
                    let update = Expr::new(ExprKind::Update(name, Box::new(value)), full);
                    record = Expr::new(ExprKind::App(Box::new(update), Box::new(record)), full);
                }
                Ok(record)
            }
            TokenKind::Hash => {
                self.bump();
                let (name, end) = self.ident()?;
                Ok(Expr::new(ExprKind::Select(name), span.to(end)))
            }
            TokenKind::Percent => {
                self.bump();
                let (name, end) = self.ident()?;
                Ok(Expr::new(ExprKind::Remove(name), span.to(end)))
            }
            TokenKind::CaretBrace => {
                self.bump();
                let (from, _) = self.ident()?;
                self.expect(TokenKind::Arrow)?;
                let (to, _) = self.ident()?;
                let end = self.expect(TokenKind::RBrace)?.span;
                Ok(Expr::new(ExprKind::Rename(from, to), span.to(end)))
            }
            TokenKind::AtBrace => {
                self.bump();
                let fields = self.field_list()?;
                let end = self.expect(TokenKind::RBrace)?.span;
                let full = span.to(end);
                match fields.len() {
                    0 => Err(Diag::error(full, "update `@{…}` needs at least one field")),
                    1 => {
                        let (name, value) = fields.into_iter().next().expect("one field");
                        Ok(Expr::new(ExprKind::Update(name, Box::new(value)), full))
                    }
                    _ => {
                        // Multi-field update sugar: a function composing
                        // the single-field updates left to right.
                        let r = Symbol::fresh("r");
                        let mut body = Expr::new(ExprKind::Var(r), full);
                        for (name, value) in fields {
                            let update = Expr::new(ExprKind::Update(name, Box::new(value)), full);
                            body = Expr::new(ExprKind::App(Box::new(update), Box::new(body)), full);
                        }
                        Ok(Expr::new(ExprKind::Lam(r, Box::new(body)), full))
                    }
                }
            }
            other => Err(Diag::error(
                span,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }

    fn field_list(&mut self) -> Result<Vec<(Symbol, Expr)>, Diag> {
        let mut fields = Vec::new();
        loop {
            let (name, _) = self.ident()?;
            self.expect(TokenKind::Eq)?;
            let value = self.expr()?;
            fields.push((name, value));
            if !self.eat(&TokenKind::Comma) {
                return Ok(fields);
            }
        }
    }
}

enum BinaryTok {
    Op(BinOp),
    Concat,
    SymConcat,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn application_is_left_associative() {
        let e = parse_expr("f x y").unwrap();
        match &e.kind {
            ExprKind::App(fx, y) => {
                assert_eq!(y.kind, ExprKind::Var(sym("y")));
                match &fx.kind {
                    ExprKind::App(f, x) => {
                        assert_eq!(f.kind, ExprKind::Var(sym("f")));
                        assert_eq!(x.kind, ExprKind::Var(sym("x")));
                    }
                    other => panic!("expected app, got {other:?}"),
                }
            }
            other => panic!("expected app, got {other:?}"),
        }
    }

    #[test]
    fn lambda_with_multiple_binders() {
        let e = parse_expr(r"\x y . x").unwrap();
        match &e.kind {
            ExprKind::Lam(x, body) => {
                assert_eq!(*x, sym("x"));
                assert!(matches!(body.kind, ExprKind::Lam(..)));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match &e.kind {
            ExprKind::BinOp(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::BinOp(BinOp::Mul, _, _)));
            }
            other => panic!("expected +, got {other:?}"),
        }
    }

    #[test]
    fn select_binds_as_atom() {
        // #foo s is the selector applied to s.
        let e = parse_expr("#foo s").unwrap();
        match &e.kind {
            ExprKind::App(f, s) => {
                assert_eq!(f.kind, ExprKind::Select(sym("foo")));
                assert_eq!(s.kind, ExprKind::Var(sym("s")));
            }
            other => panic!("expected app, got {other:?}"),
        }
    }

    #[test]
    fn update_atbrace_versus_concat() {
        // `r @{a = 1}` is application of the update to... no: it is
        // `r` applied? No — `r @{a=1}` lexes as Ident AtBrace, so it is the
        // application `r (@{a=1})`? It is: App(r, update-fn). Whereas
        // `r @ {a = 1}` is concatenation with a record literal.
        let app = parse_expr("f @{a = 1} r").unwrap();
        match &app.kind {
            ExprKind::App(fu, r) => {
                assert_eq!(r.kind, ExprKind::Var(sym("r")));
                match &fu.kind {
                    ExprKind::App(f, u) => {
                        assert_eq!(f.kind, ExprKind::Var(sym("f")));
                        assert!(matches!(u.kind, ExprKind::Update(..)));
                    }
                    other => panic!("expected app, got {other:?}"),
                }
            }
            other => panic!("expected app, got {other:?}"),
        }

        let concat = parse_expr("r @ {a = 1}").unwrap();
        assert!(matches!(concat.kind, ExprKind::Concat(..)));
        let sym_concat = parse_expr("r @@ s").unwrap();
        assert!(matches!(sym_concat.kind, ExprKind::SymConcat(..)));
    }

    #[test]
    fn record_literal_desugars_to_updates() {
        let e = parse_expr("{a = 1, b = 2}").unwrap();
        // @{b=2} (@{a=1} {})
        match &e.kind {
            ExprKind::App(ub, inner) => {
                assert!(matches!(ub.kind, ExprKind::Update(n, _) if n == sym("b")));
                match &inner.kind {
                    ExprKind::App(ua, empty) => {
                        assert!(matches!(ua.kind, ExprKind::Update(n, _) if n == sym("a")));
                        assert_eq!(empty.kind, ExprKind::Empty);
                    }
                    other => panic!("expected app, got {other:?}"),
                }
            }
            other => panic!("expected app, got {other:?}"),
        }
    }

    #[test]
    fn multi_field_update_desugars_to_lambda() {
        let e = parse_expr("@{a = 1, b = 2}").unwrap();
        assert!(matches!(e.kind, ExprKind::Lam(..)));
    }

    #[test]
    fn let_with_params_and_multiple_bindings() {
        let e = parse_expr("let f x = x; y = f 1 in y").unwrap();
        match &e.kind {
            ExprKind::Let { name, bound, body } => {
                assert_eq!(*name, sym("f"));
                assert!(matches!(bound.kind, ExprKind::Lam(..)));
                assert!(matches!(&body.kind, ExprKind::Let { name, .. } if *name == sym("y")));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn when_expression() {
        let e = parse_expr("when foo in s then 1 else 2").unwrap();
        match &e.kind {
            ExprKind::When { field, subject, .. } => {
                assert_eq!(*field, sym("foo"));
                assert_eq!(*subject, sym("s"));
            }
            other => panic!("expected when, got {other:?}"),
        }
    }

    #[test]
    fn program_with_defs() {
        let p = parse_program("def id x = x\ndef main = id {}").unwrap();
        assert_eq!(p.defs.len(), 2);
        assert_eq!(p.defs[0].name, sym("id"));
        assert!(matches!(p.defs[0].body.kind, ExprKind::Lam(..)));
    }

    #[test]
    fn paper_intro_example_parses() {
        let src = r"
def f s = if some_condition then
            let s' = @{foo = 42} s;
                v  = #foo s'
            in s'
          else s
def main = f {}
";
        // `some_condition` is a free variable; parsing succeeds regardless.
        let p = parse_program(src).unwrap();
        assert_eq!(p.defs.len(), 2);
    }

    #[test]
    fn error_on_unbalanced_paren() {
        assert!(parse_expr("(1 + 2").is_err());
    }

    #[test]
    fn error_on_trailing_tokens() {
        assert!(parse_expr("1 2 3 )").is_err());
    }

    #[test]
    fn comparisons_are_non_associative() {
        // `a == b == c` must not parse as a chain; second `==` is trailing
        // garbage at the expression level.
        assert!(parse_expr("a == b == c").is_err());
    }

    #[test]
    fn empty_record_and_lists() {
        assert_eq!(parse_expr("{}").unwrap().kind, ExprKind::Empty);
        let e = parse_expr("[1, 2, 3]").unwrap();
        assert!(matches!(e.kind, ExprKind::List(ref v) if v.len() == 3));
        let e = parse_expr("[]").unwrap();
        assert!(matches!(e.kind, ExprKind::List(ref v) if v.is_empty()));
    }

    #[test]
    fn rename_and_remove() {
        assert!(matches!(
            parse_expr("%foo").unwrap().kind,
            ExprKind::Remove(_)
        ));
        assert!(
            matches!(parse_expr("^{a -> b}").unwrap().kind, ExprKind::Rename(a, b)
                if a == sym("a") && b == sym("b"))
        );
    }
}
