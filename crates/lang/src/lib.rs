//! Surface language for the row-polymorphic record calculus.
//!
//! This crate implements the extended λ-calculus `E` of Simon, *Optimal
//! Inference of Fields in Row-Polymorphic Records* (PLDI 2014, Fig. 1),
//! together with the record operations discussed in its Section 5:
//!
//! * core: variables, lambdas, application, recursive `let`, integers,
//!   conditionals;
//! * records: the empty record `{}`, field selection `#N`, field update
//!   `@{N = e}`;
//! * extensions: field removal `%N`, field renaming `^{M -> N}`,
//!   asymmetric concatenation `e1 @ e2`, symmetric concatenation
//!   `e1 @@ e2`, and the field-conditional `when N in x then e1 else e2`.
//!
//! The crate provides the lexer, parser, AST, pretty-printer, and
//! span-based diagnostics. Type inference lives in `rowpoly-core`.
//!
//! # Example
//!
//! ```
//! use rowpoly_lang::{parse_expr, pretty_expr};
//!
//! let e = parse_expr("#foo (@{foo = 42} {})")?;
//! assert_eq!(pretty_expr(&e), "#foo (@{foo = 42} {})");
//! # Ok::<(), rowpoly_lang::Diag>(())
//! ```

mod ast;
mod diag;
mod lexer;
mod parser;
mod pretty;
mod span;
mod symbol;
mod token;

pub use ast::{BinOp, Def, Expr, ExprKind, FieldName, Program};
pub use diag::{Diag, Severity};
pub use lexer::lex;
pub use parser::{parse_expr, parse_program};
pub use pretty::{pretty_def, pretty_expr, pretty_program};
pub use span::{LineMap, Span};
pub use symbol::Symbol;
pub use token::{Token, TokenKind};
