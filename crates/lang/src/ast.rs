//! Abstract syntax of the record calculus `E` (Fig. 1 of the paper, plus
//! the Section 5 extensions).

use std::collections::BTreeSet;

use crate::span::Span;
use crate::symbol::Symbol;

/// Record field names are interned symbols.
pub type FieldName = Symbol;

/// Built-in binary operators over integers.
///
/// The paper's conditional requires an `Int` condition, so comparisons and
/// connectives also yield `Int` (0 = false, non-zero = true); there is no
/// separate Boolean base type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `==` (yields `Int`)
    Eq,
    /// `<` (yields `Int`)
    Lt,
    /// `<=` (yields `Int`)
    Le,
    /// `&&` (yields `Int`)
    And,
    /// `||` (yields `Int`)
    Or,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Eq => "==",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// An expression with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression forms.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Variable reference `x`.
    Var(Symbol),
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(String),
    /// List literal `[e1, …, en]`.
    List(Vec<Expr>),
    /// Lambda abstraction `\x . e`.
    Lam(Symbol, Box<Expr>),
    /// Application `e1 e2`.
    App(Box<Expr>, Box<Expr>),
    /// (Possibly recursive) binding `let x = e in e'`.
    Let {
        /// Bound variable; in scope in both `bound` (recursion) and `body`.
        name: Symbol,
        /// The bound expression.
        bound: Box<Expr>,
        /// The continuation.
        body: Box<Expr>,
    },
    /// Conditional `if e1 then e2 else e3`; the condition has type `Int`
    /// and non-zero means true.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// The empty record `{}`.
    Empty,
    /// Field selector function `#N : {N.Pre : a, r} → a`.
    Select(FieldName),
    /// Field update function `@{N = e}` adding or replacing field `N`.
    Update(FieldName, Box<Expr>),
    /// Field removal function `%N`.
    Remove(FieldName),
    /// Field renaming function `^{M -> N}`.
    Rename(FieldName, FieldName),
    /// Asymmetric record concatenation `e1 @ e2` (right-biased: a field
    /// present in both records takes its value from `e2`).
    Concat(Box<Expr>, Box<Expr>),
    /// Symmetric record concatenation `e1 @@ e2` (a field present in both
    /// records is a type error).
    SymConcat(Box<Expr>, Box<Expr>),
    /// `when N in x then e1 else e2` — branches on whether record variable
    /// `x` currently has field `N` (Fig. 8).
    When {
        /// The tested field.
        field: FieldName,
        /// The scrutinised record variable.
        subject: Symbol,
        /// Branch taken when the field is present.
        then_branch: Box<Expr>,
        /// Branch taken when the field is absent.
        else_branch: Box<Expr>,
    },
    /// Built-in integer operator.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Wraps a node with a span.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut BTreeSet::new(), &mut out);
        out
    }

    fn free_vars_into(&self, bound: &mut BTreeSet<Symbol>, out: &mut BTreeSet<Symbol>) {
        match &self.kind {
            ExprKind::Var(x) => {
                if !bound.contains(x) {
                    out.insert(*x);
                }
            }
            ExprKind::Int(_) | ExprKind::Str(_) | ExprKind::Empty => {}
            ExprKind::Select(_) | ExprKind::Remove(_) | ExprKind::Rename(_, _) => {}
            ExprKind::List(es) => {
                for e in es {
                    e.free_vars_into(bound, out);
                }
            }
            ExprKind::Lam(x, body) => {
                let fresh = bound.insert(*x);
                body.free_vars_into(bound, out);
                if fresh {
                    bound.remove(x);
                }
            }
            ExprKind::App(f, a) => {
                f.free_vars_into(bound, out);
                a.free_vars_into(bound, out);
            }
            ExprKind::Let {
                name,
                bound: b,
                body,
            } => {
                let fresh = bound.insert(*name);
                b.free_vars_into(bound, out);
                body.free_vars_into(bound, out);
                if fresh {
                    bound.remove(name);
                }
            }
            ExprKind::If(c, t, e) => {
                c.free_vars_into(bound, out);
                t.free_vars_into(bound, out);
                e.free_vars_into(bound, out);
            }
            ExprKind::Update(_, e) => e.free_vars_into(bound, out),
            ExprKind::Concat(a, b) | ExprKind::SymConcat(a, b) => {
                a.free_vars_into(bound, out);
                b.free_vars_into(bound, out);
            }
            ExprKind::When {
                subject,
                then_branch,
                else_branch,
                ..
            } => {
                if !bound.contains(subject) {
                    out.insert(*subject);
                }
                then_branch.free_vars_into(bound, out);
                else_branch.free_vars_into(bound, out);
            }
            ExprKind::BinOp(_, a, b) => {
                a.free_vars_into(bound, out);
                b.free_vars_into(bound, out);
            }
        }
    }

    /// Number of AST nodes (a size metric for benchmarks).
    pub fn size(&self) -> usize {
        let mut n = 1;
        self.for_each_child(|c| n += c.size());
        n
    }

    /// Calls `f` on each direct child expression.
    pub fn for_each_child(&self, mut f: impl FnMut(&Expr)) {
        match &self.kind {
            ExprKind::Var(_)
            | ExprKind::Int(_)
            | ExprKind::Str(_)
            | ExprKind::Empty
            | ExprKind::Select(_)
            | ExprKind::Remove(_)
            | ExprKind::Rename(_, _) => {}
            ExprKind::List(es) => es.iter().for_each(&mut f),
            ExprKind::Lam(_, b) => f(b),
            ExprKind::App(a, b)
            | ExprKind::Concat(a, b)
            | ExprKind::SymConcat(a, b)
            | ExprKind::BinOp(_, a, b) => {
                f(a);
                f(b);
            }
            ExprKind::Let { bound, body, .. } => {
                f(bound);
                f(body);
            }
            ExprKind::If(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
            ExprKind::Update(_, e) => f(e),
            ExprKind::When {
                then_branch,
                else_branch,
                ..
            } => {
                f(then_branch);
                f(else_branch);
            }
        }
    }
}

/// A top-level definition `def f x1 … xn = e`.
///
/// Parameters are desugared into lambdas at parse time, so `body` is the
/// full right-hand side including binders. Each definition may refer to
/// itself (recursion) and to all earlier definitions.
#[derive(Clone, Debug, PartialEq)]
pub struct Def {
    /// Defined name.
    pub name: Symbol,
    /// Span of the whole definition.
    pub span: Span,
    /// Right-hand side (with parameter lambdas already applied).
    pub body: Expr,
}

/// A program: a sequence of top-level definitions.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Definitions, in source order.
    pub defs: Vec<Def>,
}

impl Program {
    /// Folds the program into a single expression: nested `let`s ending in
    /// a reference to the last definition.
    ///
    /// # Panics
    ///
    /// Panics if the program has no definitions.
    pub fn to_expr(&self) -> Expr {
        let last = self
            .defs
            .last()
            .expect("program has at least one definition");
        let mut expr = Expr::new(ExprKind::Var(last.name), last.span);
        for def in self.defs.iter().rev() {
            expr = Expr::new(
                ExprKind::Let {
                    name: def.name,
                    bound: Box::new(def.body.clone()),
                    body: Box::new(expr),
                },
                def.span,
            );
        }
        expr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr::new(ExprKind::Var(Symbol::intern(name)), Span::dummy())
    }

    #[test]
    fn free_vars_respect_binders() {
        // \x . x y
        let e = Expr::new(
            ExprKind::Lam(
                Symbol::intern("x"),
                Box::new(Expr::new(
                    ExprKind::App(Box::new(var("x")), Box::new(var("y"))),
                    Span::dummy(),
                )),
            ),
            Span::dummy(),
        );
        let fv = e.free_vars();
        assert!(fv.contains(&Symbol::intern("y")));
        assert!(!fv.contains(&Symbol::intern("x")));
    }

    #[test]
    fn let_binds_recursively() {
        // let f = f in f — f is not free.
        let f = Symbol::intern("f");
        let e = Expr::new(
            ExprKind::Let {
                name: f,
                bound: Box::new(var("f")),
                body: Box::new(var("f")),
            },
            Span::dummy(),
        );
        assert!(e.free_vars().is_empty());
    }

    #[test]
    fn when_subject_is_free() {
        let e = Expr::new(
            ExprKind::When {
                field: Symbol::intern("n"),
                subject: Symbol::intern("s"),
                then_branch: Box::new(var("a")),
                else_branch: Box::new(var("b")),
            },
            Span::dummy(),
        );
        let fv = e.free_vars();
        assert!(fv.contains(&Symbol::intern("s")));
        assert!(fv.contains(&Symbol::intern("a")));
        assert!(fv.contains(&Symbol::intern("b")));
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::new(
            ExprKind::App(Box::new(var("f")), Box::new(var("x"))),
            Span::dummy(),
        );
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn program_to_expr_nests_lets() {
        let p = Program {
            defs: vec![
                Def {
                    name: Symbol::intern("a"),
                    span: Span::dummy(),
                    body: var("x"),
                },
                Def {
                    name: Symbol::intern("b"),
                    span: Span::dummy(),
                    body: var("a"),
                },
            ],
        };
        let e = p.to_expr();
        match &e.kind {
            ExprKind::Let { name, body, .. } => {
                assert_eq!(*name, Symbol::intern("a"));
                match &body.kind {
                    ExprKind::Let { name, body, .. } => {
                        assert_eq!(*name, Symbol::intern("b"));
                        assert_eq!(body.kind, ExprKind::Var(Symbol::intern("b")));
                    }
                    other => panic!("expected inner let, got {other:?}"),
                }
            }
            other => panic!("expected let, got {other:?}"),
        }
    }
}
