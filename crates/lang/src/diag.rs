//! Diagnostics with source rendering.

use std::fmt;

use crate::span::{LineMap, Span};

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A hard error; the program is rejected.
    Error,
    /// Informative note attached to an error.
    Note,
}

/// A diagnostic message anchored to a source span.
#[derive(Clone, Debug)]
pub struct Diag {
    /// Severity of the primary message.
    pub severity: Severity,
    /// Primary location.
    pub span: Span,
    /// Primary message.
    pub message: String,
    /// Secondary notes (e.g. the steps of a missing-field path).
    pub notes: Vec<(Span, String)>,
}

impl Diag {
    /// Builds an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Diag {
        Diag {
            severity: Severity::Error,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a note at a location (builder style).
    pub fn with_note(mut self, span: Span, message: impl Into<String>) -> Diag {
        self.notes.push((span, message.into()));
        self
    }

    /// Renders the diagnostic against its source text, with line/column
    /// positions and a caret line, e.g.
    ///
    /// ```text
    /// error: field `foo` may not exist
    ///  --> 3:12
    ///   |     v = #foo s
    ///   |         ^^^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let lm = LineMap::new(source);
        let mut out = String::new();
        render_one(
            &mut out,
            source,
            &lm,
            self.severity,
            self.span,
            &self.message,
        );
        for (span, note) in &self.notes {
            // Synthesised nodes (generated ASTs, builder helpers) carry
            // zero-width dummy spans; a caret pointing at offset 0 of an
            // unrelated line explains nothing, so such notes are dropped
            // from the human rendering. They stay in `notes` for
            // structured consumers.
            if span.is_empty() {
                continue;
            }
            render_one(&mut out, source, &lm, Severity::Note, *span, note);
        }
        out
    }
}

fn render_one(
    out: &mut String,
    source: &str,
    lm: &LineMap,
    severity: Severity,
    span: Span,
    message: &str,
) {
    use fmt::Write;
    let tag = match severity {
        Severity::Error => "error",
        Severity::Note => "note",
    };
    let (line, col) = lm.position(span.start);
    writeln!(out, "{tag}: {message}").expect("write to string");
    writeln!(out, " --> {line}:{col}").expect("write to string");
    let text = lm.line_text(source, span.start);
    writeln!(out, "  | {text}").expect("write to string");
    let width = span
        .len()
        .clamp(1, text.len().saturating_sub(col - 1).max(1));
    writeln!(out, "  | {}{}", " ".repeat(col - 1), "^".repeat(width)).expect("write to string");
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Diag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_span() {
        let src = "let x = 1 in\n#foo x";
        let d = Diag::error(Span::new(13, 17), "field `foo` may not exist");
        let rendered = d.render(src);
        assert!(rendered.contains("error: field `foo` may not exist"));
        assert!(rendered.contains("--> 2:1"));
        assert!(rendered.contains("#foo x"));
        assert!(rendered.contains("^^^^"));
    }

    #[test]
    fn notes_are_rendered_after_error() {
        let src = "abc";
        let d = Diag::error(Span::new(0, 1), "boom").with_note(Span::new(2, 3), "because");
        let rendered = d.render(src);
        let epos = rendered.find("error:").unwrap();
        let npos = rendered.find("note:").unwrap();
        assert!(epos < npos);
    }

    #[test]
    fn dummy_span_notes_are_skipped() {
        let src = "abc";
        let d = Diag::error(Span::new(0, 1), "boom")
            .with_note(Span::dummy(), "synthesised, no anchor")
            .with_note(Span::new(2, 3), "because");
        let rendered = d.render(src);
        assert!(!rendered.contains("synthesised"));
        assert!(rendered.contains("note: because"));
        assert_eq!(d.notes.len(), 2, "structured notes keep the dummy entry");
    }
}
