//! Pretty-printer producing parseable source text.
//!
//! The printer is the inverse of the parser up to sugar: record literals
//! and multi-field updates are printed in their desugared form, and
//! definition parameters are re-sugared from leading lambdas. The
//! round-trip property `parse(pretty(e)) == e` (modulo spans and fresh
//! names) is checked by the crate's tests.

use std::fmt::Write;

use crate::ast::{Def, Expr, ExprKind, Program};

/// Renders a program, one `def` per block.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for def in &p.defs {
        out.push_str(&pretty_def(def));
        out.push('\n');
    }
    out
}

/// Renders a single definition, re-sugaring leading lambdas as parameters.
pub fn pretty_def(def: &Def) -> String {
    let mut params = Vec::new();
    let mut body = &def.body;
    while let ExprKind::Lam(x, inner) = &body.kind {
        params.push(*x);
        body = inner;
    }
    let mut out = String::new();
    write!(out, "def {}", def.name).expect("write to string");
    for p in &params {
        write!(out, " {p}").expect("write to string");
    }
    out.push_str(" =");
    let rendered = pretty_expr_indent(body, 1);
    if rendered.contains('\n') || rendered.len() > 60 {
        out.push('\n');
        out.push_str(&indent(&rendered, 1));
    } else {
        out.push(' ');
        out.push_str(&rendered);
    }
    out.push('\n');
    out
}

/// Renders an expression.
pub fn pretty_expr(e: &Expr) -> String {
    pretty_expr_indent(e, 0)
}

fn pretty_expr_indent(e: &Expr, depth: usize) -> String {
    print_prec(e, 0, depth)
}

const INDENT: &str = "  ";

fn indent(text: &str, by: usize) -> String {
    let pad = INDENT.repeat(by);
    text.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Precedence levels, mirroring the parser: 0 binders, 1 `||`, 2 `&&`,
/// 3 comparisons, 4 concatenation, 5 additive, 6 multiplicative,
/// 7 application, 8 atoms.
fn level(e: &Expr) -> u8 {
    use crate::ast::BinOp::*;
    match &e.kind {
        ExprKind::Lam(..) | ExprKind::Let { .. } | ExprKind::If(..) | ExprKind::When { .. } => 0,
        ExprKind::BinOp(Or, ..) => 1,
        ExprKind::BinOp(And, ..) => 2,
        ExprKind::BinOp(Eq | Lt | Le, ..) => 3,
        ExprKind::Concat(..) | ExprKind::SymConcat(..) => 4,
        ExprKind::BinOp(Add | Sub, ..) => 5,
        // Negative literals print with a leading `-`, which would read as
        // binary subtraction in application position; give them additive
        // precedence so they are parenthesised there.
        ExprKind::Int(n) if *n < 0 => 5,
        ExprKind::BinOp(Mul, ..) => 6,
        ExprKind::App(..) => 7,
        _ => 8,
    }
}

fn print_prec(e: &Expr, min: u8, depth: usize) -> String {
    let own = level(e);
    let body = print_node(e, depth);
    if own < min {
        format!("({body})")
    } else {
        body
    }
}

fn print_node(e: &Expr, depth: usize) -> String {
    match &e.kind {
        ExprKind::Var(x) => x.to_string(),
        ExprKind::Int(n) => n.to_string(),
        ExprKind::Str(s) => format!("{:?}", s),
        ExprKind::List(items) => {
            let inner: Vec<String> = items.iter().map(|i| print_prec(i, 0, depth)).collect();
            format!("[{}]", inner.join(", "))
        }
        ExprKind::Lam(x, body) => {
            // Collapse nested lambdas into one binder list.
            let mut params = vec![*x];
            let mut inner = body.as_ref();
            while let ExprKind::Lam(y, next) = &inner.kind {
                params.push(*y);
                inner = next;
            }
            let names: Vec<String> = params.iter().map(|p| p.to_string()).collect();
            format!("\\{} . {}", names.join(" "), print_prec(inner, 0, depth))
        }
        ExprKind::App(f, a) => {
            format!("{} {}", print_prec(f, 7, depth), print_prec(a, 8, depth))
        }
        ExprKind::Let { name, bound, body } => {
            let b = print_prec(bound, 0, depth + 1);
            let k = print_prec(body, 0, depth);
            if b.contains('\n') || b.len() > 50 {
                format!("let {name} =\n{}\nin {k}", indent(&b, 1))
            } else {
                format!("let {name} = {b}\nin {k}")
            }
        }
        ExprKind::If(c, t, f) => {
            format!(
                "if {}\nthen {}\nelse {}",
                print_prec(c, 1, depth),
                print_prec(t, 0, depth),
                print_prec(f, 0, depth)
            )
        }
        ExprKind::Empty => "{}".to_owned(),
        ExprKind::Select(n) => format!("#{n}"),
        ExprKind::Update(n, v) => format!("@{{{n} = {}}}", print_prec(v, 0, depth)),
        ExprKind::Remove(n) => format!("%{n}"),
        ExprKind::Rename(from, to) => format!("^{{{from} -> {to}}}"),
        ExprKind::Concat(a, b) => {
            format!("{} @ {}", print_prec(a, 4, depth), print_prec(b, 5, depth))
        }
        ExprKind::SymConcat(a, b) => {
            format!("{} @@ {}", print_prec(a, 4, depth), print_prec(b, 5, depth))
        }
        ExprKind::When {
            field,
            subject,
            then_branch,
            else_branch,
        } => {
            format!(
                "when {field} in {subject}\nthen {}\nelse {}",
                print_prec(then_branch, 0, depth),
                print_prec(else_branch, 0, depth)
            )
        }
        ExprKind::BinOp(op, a, b) => {
            let own = level(e);
            // Left-associative: right operand needs one level more; the
            // non-associative comparisons need more on both sides.
            let (lmin, rmin) = if own == 3 { (4, 4) } else { (own, own + 1) };
            format!(
                "{} {} {}",
                print_prec(a, lmin, depth),
                op.symbol(),
                print_prec(b, rmin, depth)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    /// Strips spans so parse→pretty→parse comparisons ignore layout.
    fn normalize(e: &Expr) -> Expr {
        let mut c = e.clone();
        strip(&mut c);
        c
    }

    fn strip(e: &mut Expr) {
        e.span = crate::span::Span::dummy();
        match &mut e.kind {
            ExprKind::List(items) => items.iter_mut().for_each(strip),
            ExprKind::Lam(_, b) | ExprKind::Update(_, b) => strip(b),
            ExprKind::App(a, b)
            | ExprKind::Concat(a, b)
            | ExprKind::SymConcat(a, b)
            | ExprKind::BinOp(_, a, b) => {
                strip(a);
                strip(b);
            }
            ExprKind::Let { bound, body, .. } => {
                strip(bound);
                strip(body);
            }
            ExprKind::If(a, b, c) => {
                strip(a);
                strip(b);
                strip(c);
            }
            ExprKind::When {
                then_branch,
                else_branch,
                ..
            } => {
                strip(then_branch);
                strip(else_branch);
            }
            _ => {}
        }
    }

    fn roundtrip(src: &str) {
        let e1 = parse_expr(src).expect("parse original");
        let printed = pretty_expr(&e1);
        let e2 =
            parse_expr(&printed).unwrap_or_else(|d| panic!("re-parse failed for {printed:?}: {d}"));
        assert_eq!(
            normalize(&e1),
            normalize(&e2),
            "round trip changed:\n{printed}"
        );
    }

    #[test]
    fn roundtrip_core_forms() {
        roundtrip("f x y");
        roundtrip(r"\x y . x + y * 2");
        roundtrip("let f x = x in f 1");
        roundtrip("if a < b then 1 else 2");
        roundtrip("#foo (@{foo = 42} {})");
        roundtrip("r @ s @@ t");
        roundtrip("when foo in s then #foo s else 0");
        roundtrip("%foo (^{a -> b} r)");
        roundtrip("[1, 2, f 3]");
        roundtrip("(1 + 2) * 3");
        roundtrip("a == b + 1");
        roundtrip("x && y || z");
    }

    #[test]
    fn roundtrip_nested_binders() {
        roundtrip(r"\f . (\x . f (x x)) (\x . f (x x))");
        roundtrip("let a = let b = 1 in b in a");
        roundtrip("let s' = @{foo = 42} s; v = #foo s' in s'");
    }

    #[test]
    fn concat_requires_parens_when_nested_right() {
        // @ is left-associative: a @ (b @ c) must keep its parens.
        let e = parse_expr("a @ (b @ c)").unwrap();
        let printed = pretty_expr(&e);
        assert!(printed.contains('('), "got {printed}");
        roundtrip("a @ (b @ c)");
    }

    #[test]
    fn program_roundtrip() {
        let src = "def id x = x\ndef use = id {}\n";
        let p1 = parse_program(src).unwrap();
        let printed = pretty_program(&p1);
        let p2 = parse_program(&printed).expect("re-parse program");
        assert_eq!(p1.defs.len(), p2.defs.len());
        for (d1, d2) in p1.defs.iter().zip(&p2.defs) {
            assert_eq!(d1.name, d2.name);
            assert_eq!(normalize(&d1.body), normalize(&d2.body));
        }
    }

    #[test]
    fn multiline_if_renders_indented() {
        let e = parse_expr("if c then 1 else 2").unwrap();
        let printed = pretty_expr(&e);
        assert!(printed.contains("\nthen"));
        assert!(printed.contains("\nelse"));
    }

    #[test]
    fn string_literals_are_escaped() {
        let e = parse_expr(r#""a\"b""#).unwrap();
        roundtrip(&pretty_expr(&e));
    }
}
