//! Source locations.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Builds a span from byte offsets.
    pub fn new(start: u32, end: u32) -> Span {
        debug_assert!(start <= end);
        Span { start, end }
    }

    /// A zero-width span used for synthesised nodes.
    pub fn dummy() -> Span {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span is zero-width.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Maps byte offsets to 1-based line/column pairs for diagnostics.
#[derive(Clone, Debug)]
pub struct LineMap {
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Indexes the line structure of `source`.
    pub fn new(source: &str) -> LineMap {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// 1-based `(line, column)` of a byte offset.
    pub fn position(&self, offset: u32) -> (usize, usize) {
        let line = self
            .line_starts
            .partition_point(|&s| s <= offset)
            .saturating_sub(1);
        (line + 1, (offset - self.line_starts[line]) as usize + 1)
    }

    /// Number of lines indexed (at least 1; the empty source has one
    /// empty line).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Byte offset of a 1-based `(line, column)` pair, clamped to the
    /// end of the line (its newline, or end of file on the last line).
    /// The inverse of [`LineMap::position`] for in-range pairs; the
    /// serve daemon uses it to turn editor cursor positions and
    /// incremental-edit ranges into byte offsets. `source_len` bounds
    /// positions past the last line.
    pub fn offset_of(&self, line: usize, col: usize, source_len: usize) -> u32 {
        let Some(&start) = self.line_starts.get(line.saturating_sub(1)) else {
            return source_len as u32;
        };
        let line_end = self
            .line_starts
            .get(line)
            .map(|&next| next.saturating_sub(1))
            .unwrap_or(source_len as u32);
        (start + col.saturating_sub(1) as u32).min(line_end)
    }

    /// The source text of the line containing `offset` (without newline),
    /// given the original source.
    pub fn line_text<'s>(&self, source: &'s str, offset: u32) -> &'s str {
        let (line, _) = self.position(offset);
        let start = self.line_starts[line - 1] as usize;
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e as usize - 1)
            .unwrap_or(source.len());
        &source[start..end.min(source.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_union() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn line_map_positions() {
        let src = "ab\ncde\n\nf";
        let lm = LineMap::new(src);
        assert_eq!(lm.position(0), (1, 1));
        assert_eq!(lm.position(1), (1, 2));
        assert_eq!(lm.position(3), (2, 1));
        assert_eq!(lm.position(5), (2, 3));
        assert_eq!(lm.position(7), (3, 1));
        assert_eq!(lm.position(8), (4, 1));
    }

    #[test]
    fn offset_of_inverts_position_and_clamps() {
        let src = "ab\ncde\n\nf";
        let lm = LineMap::new(src);
        for off in 0..src.len() as u32 {
            let (line, col) = lm.position(off);
            assert_eq!(lm.offset_of(line, col, src.len()), off);
        }
        // Past end of line: clamp to the newline.
        assert_eq!(lm.offset_of(1, 99, src.len()), 2);
        // Past end of file: clamp to the length.
        assert_eq!(lm.offset_of(4, 99, src.len()), 9);
        assert_eq!(lm.offset_of(99, 1, src.len()), 9);
    }

    #[test]
    fn line_text_extraction() {
        let src = "first\nsecond\nthird";
        let lm = LineMap::new(src);
        assert_eq!(lm.line_text(src, 0), "first");
        assert_eq!(lm.line_text(src, 8), "second");
        assert_eq!(lm.line_text(src, 14), "third");
    }
}
